"""vGPRS — a complete reproduction of "vGPRS: A Mechanism for Voice over
GPRS" (Chang, Lin, Pang; ICDCS 2001 / Wireless Networks 9, 2003).

Public API entry points:

* :func:`repro.core.network.build_vgprs_network` — the Figure 2(b)
  network (VMSC + GSM/GPRS/H.323 substrates);
* :mod:`repro.core.scenarios` — registration/call/release drivers;
* :func:`repro.core.baseline_gsm.build_classic_roaming_network` and
  :func:`repro.core.tromboning.build_vgprs_roaming_network` — the
  Figure 7/8 roaming worlds;
* :func:`repro.core.baseline_3gtr.build_3gtr_network` — the 3G TR 23.923
  comparison system;
* :func:`repro.core.handoff.build_handoff_network` — the Figure 9
  inter-system handoff world;
* :mod:`repro.core.flows` — the golden message flows of Figures 4-6.

Run ``python -m repro`` for a self-contained demonstration.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
