"""Soak heartbeat: periodic one-line progress for long runs.

A :class:`Heartbeat` schedules itself every *period* simulated seconds
and prints one line with the simulated clock, events executed since the
last beat (and the wall-clock event rate), and the live event count::

    [hb soak] t=300.0s events=1204233 (+24084, 80561/s wall) live=412

Enabling a heartbeat flips the simulator to its instrumented run loop
(the fast loop does not maintain ``events_executed`` per event), so it
is opt-in — soak benchmarks with the heartbeat off keep the untouched
hot path.  Beat events ride the normal event queue at fractional-second
offsets chosen by the caller; they read wall time but never feed it
back into simulation state, so the trace stays deterministic.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Optional


class Heartbeat:
    """Periodic progress reporter bound to one simulator."""

    def __init__(
        self,
        sim: Any,
        period: float = 5.0,
        sink: Optional[Callable[[str], None]] = None,
        label: str = "run",
        extra: Optional[Callable[[], str]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"heartbeat period must be > 0, got {period!r}")
        self.sim = sim
        self.period = period
        self.label = label
        self.extra = extra
        self._sink = sink if sink is not None else self._print
        self._event = None
        self._last_events = 0
        self._last_wall = 0.0
        self.beats = 0

    @staticmethod
    def _print(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def start(self) -> "Heartbeat":
        """Arm the heartbeat; the first line appears one period from now."""
        if self._event is not None:
            return self
        self.sim.count_events = True
        self._last_events = self.sim.events_executed
        self._last_wall = time.perf_counter()
        self._event = self.sim.schedule(self.period, self._beat)
        return self

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.sim.count_events = False

    def _beat(self) -> None:
        self.beats += 1
        now_wall = time.perf_counter()
        executed = self.sim.events_executed
        delta = executed - self._last_events
        wall = now_wall - self._last_wall
        rate = delta / wall if wall > 0 else 0.0
        line = (
            f"[hb {self.label}] t={self.sim.now:.1f}s events={executed}"
            f" (+{delta}, {rate:.0f}/s wall) live={self.sim.pending_events}"
        )
        if self.extra is not None:
            line += " " + self.extra()
        self._sink(line)
        self._last_events = executed
        self._last_wall = now_wall
        self._event = self.sim.schedule(self.period, self._beat)
