"""Correlated procedure spans.

A :class:`Span` marks one protocol procedure — a registration, a call, a
call-setup phase, a talk phase, a release, a handoff — between its
opening and closing simulated instants.  While a span is open it is
registered under its correlation keys (``imsi``, ``call_ref``, ``ti``,
``alias``); every trace entry the recorder sees is matched against the
open keys and attached to the innermost (most recently opened) matching
span.  A run can then be rendered as a per-call tree whose leaves are
exactly the Figures 4-6 flow steps.

Correlation is two-tier:

* **declared keys** — the procedure's own identifiers, registered at
  :meth:`SpanTracker.open` or bound later with :meth:`Span.bind` (a call
  span opens keyed by IMSI at the handset before the VMSC has allocated
  the H.225 call reference; the VMSC binds ``call_ref`` when it does);
* **learned keys** — transaction ids that only the *request* shares with
  the procedure (MAP ``invoke_id``): when a request entry matches a span
  and carries one, the tracker remembers ``(node-pair, invoke_id) ->
  span`` so the response — which carries nothing but the invoke id —
  still lands on the same span.

Spans never mutate trace entries and never schedule events, so enabling
them cannot perturb a seeded run: traces stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

#: Correlation fields recognised in trace-entry info dicts, and the
#: order per-field candidates are gathered in (ties resolve to the
#: innermost span by open order, so this order is not a priority).
CORRELATION_FIELDS = ("call_ref", "ti", "imsi", "alias")

#: Transaction-id fields learned from matched requests (scoped to the
#: unordered node pair, because each node draws from its own sequencer).
LEARNED_FIELDS = ("invoke_id",)


class Span:
    """One open-to-close procedure instance."""

    __slots__ = (
        "span_id",
        "name",
        "parent_id",
        "start",
        "end",
        "status",
        "keys",
        "attrs",
        "entries",
        "_tracker",
    )

    def __init__(
        self,
        tracker: "SpanTracker",
        span_id: int,
        name: str,
        parent_id: Optional[int],
        start: float,
        keys: Dict[str, str],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracker = tracker
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.keys = keys
        self.attrs = attrs
        self.entries: List[Any] = []

    @property
    def open(self) -> bool:
        return self.end is None

    def bind(self, field: str, value: Any) -> "Span":
        """Add a correlation key after opening (e.g. the VMSC binding the
        allocated ``call_ref`` onto the handset's call span)."""
        if self.open:
            self._tracker._bind(self, field, value)
        return self

    def close(self, status: str = "ok") -> "Span":
        """Close the span; idempotent (later closes keep the first
        status, so error paths may close defensively)."""
        if self.open:
            self._tracker._close(self, status)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "keys": dict(self.keys),
            "attrs": dict(self.attrs),
            "n_entries": len(self.entries),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"closed:{self.status}"
        keys = " ".join(f"{k}={v}" for k, v in self.keys.items())
        return f"<Span #{self.span_id} {self.name} [{keys}] {state}>"


class _NullSpan:
    """Returned by a disabled tracker; absorbs bind/close/attrs calls."""

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: Dict[str, Any] = {}

    open = False
    span_id = -1
    parent_id: Optional[int] = None
    name = "null"
    start = 0.0
    end: Optional[float] = 0.0
    status: Optional[str] = None
    entries: List[Any] = []
    keys: Dict[str, str] = {}

    def bind(self, field: str, value: Any) -> "_NullSpan":
        return self

    def close(self, status: str = "ok") -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class SpanTracker:
    """Registry of open spans and archive of closed ones.

    One tracker hangs off every :class:`~repro.sim.kernel.Simulator` as
    ``sim.spans`` and receives each recorded trace entry through
    ``TraceRecorder.sink``.  The per-entry cost with no spans open is a
    single dict truthiness check.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.enabled = True
        #: All spans ever opened, in open order (bounded; see max_spans).
        self.spans: List[Span] = []
        #: Spans discarded to honour ``max_spans`` (soak bounding).
        self.dropped = 0
        #: Retention bound; when exceeded, the oldest *closed* half is
        #: discarded in one batch, mirroring TraceRecorder.set_limit.
        self.max_spans: Optional[int] = None
        #: Called with each span as it closes (after deregistration);
        #: the flight recorder hooks in here.  Kept as a plain attribute
        #: so the no-observer close costs one attribute load.
        self.on_close: Optional[Callable[[Span], None]] = None
        self._seq = 0
        # (field, str(value)) -> open spans registered under that key,
        # in open order; the innermost match is the last element.
        self._open_by_key: Dict[Tuple[str, str], List[Span]] = {}
        # (node_a, node_b, field, str(value)) -> span, learned from
        # matched request entries; node pair is sorted.
        self._learned: Dict[Tuple[str, str, str, str], Span] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(
        self,
        name: str,
        keys: Dict[str, Any],
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span registered under *keys* (field -> value).

        When *parent* is not given, the innermost open span already
        registered under any of the same keys becomes the parent — so a
        handset's MT call span nests under the VMSC's call leg, which
        nests under the calling terminal's span, without any node knowing
        about the others.
        """
        if not self.enabled:
            return NULL_SPAN
        norm = {field: str(value) for field, value in keys.items() if value is not None}
        if parent is None:
            parent = self._innermost(norm)
        self._seq += 1
        span = Span(
            tracker=self,
            span_id=self._seq,
            name=name,
            parent_id=parent.span_id if parent is not None else None,
            start=self._clock(),
            keys=norm,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        for field, value in norm.items():
            self._open_by_key.setdefault((field, value), []).append(span)
        if self.max_spans is not None and len(self.spans) > self.max_spans:
            self._trim()
        return span

    def _bind(self, span: Span, field: str, value: Any) -> None:
        norm = str(value)
        if span.keys.get(field) == norm:
            return
        span.keys[field] = norm
        self._open_by_key.setdefault((field, norm), []).append(span)

    def _close(self, span: Span, status: str) -> None:
        span.end = self._clock()
        span.status = status
        for field, value in span.keys.items():
            bucket = self._open_by_key.get((field, value))
            if bucket is None:
                continue
            try:
                bucket.remove(span)
            except ValueError:
                pass
            if not bucket:
                del self._open_by_key[(field, value)]
        hook = self.on_close
        if hook is not None:
            hook(span)

    def _trim(self) -> None:
        keep = self.max_spans // 2
        survivors: List[Span] = []
        trimmed = 0
        overflow = len(self.spans) - keep
        for span in self.spans:
            if trimmed < overflow and not span.open:
                trimmed += 1
                continue
            survivors.append(span)
        self.dropped += trimmed
        self.spans = survivors
        if trimmed:
            live = {id(s) for s in self.spans}
            self._learned = {
                key: s for key, s in self._learned.items() if id(s) in live
            }

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _innermost(self, keys: Dict[str, str]) -> Optional[Span]:
        best: Optional[Span] = None
        for field, value in keys.items():
            bucket = self._open_by_key.get((field, value))
            if bucket:
                candidate = bucket[-1]
                if best is None or candidate.span_id > best.span_id:
                    best = candidate
        return best

    def on_entry(self, entry: Any) -> None:
        """TraceRecorder sink: attach *entry* to the innermost open span
        sharing a correlation key, learning transaction ids on the way."""
        by_key = self._open_by_key
        if not by_key and not self._learned:
            return
        info = entry.info
        best: Optional[Span] = None
        for field in CORRELATION_FIELDS:
            value = info.get(field)
            if value is None:
                continue
            bucket = by_key.get((field, str(value)))
            if bucket:
                candidate = bucket[-1]
                if best is None or candidate.span_id > best.span_id:
                    best = candidate
        if best is None and self._learned:
            best = self._lookup_learned(entry, info)
        if best is None:
            return
        best.entries.append(entry)
        for field in LEARNED_FIELDS:
            value = info.get(field)
            if value is not None:
                self._learn(entry, field, value, best)

    def _pair_key(
        self, entry: Any, field: str, value: Any
    ) -> Tuple[str, str, str, str]:
        a, b = entry.src, entry.dst
        if b < a:
            a, b = b, a
        return (a, b, field, str(value))

    def _learn(self, entry: Any, field: str, value: Any, span: Span) -> None:
        self._learned[self._pair_key(entry, field, value)] = span

    def _lookup_learned(self, entry: Any, info: Dict[str, Any]) -> Optional[Span]:
        for field in LEARNED_FIELDS:
            value = info.get(field)
            if value is None:
                continue
            span = self._learned.get(self._pair_key(entry, field, value))
            if span is not None:
                if span.open:
                    return span
                del self._learned[self._pair_key(entry, field, value)]
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find_open(self, field: str, value: Any, name: Optional[str] = None) -> Optional[Span]:
        """Innermost open span registered under ``(field, value)``,
        optionally restricted to spans named *name*."""
        bucket = self._open_by_key.get((field, str(value)))
        if not bucket:
            return None
        for span in reversed(bucket):
            if name is None or span.name == name:
                return span
        return None

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.open]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def clear(self) -> None:
        self.spans.clear()
        self._open_by_key.clear()
        self._learned.clear()
        self.dropped = 0
