"""Exporters: JSONL traces, span trees, and mergeable metric snapshots.

The JSONL trace format is one JSON object per line:

* ``{"type": "run", ...}`` — one header per exported simulator;
* ``{"type": "span", "span": 3, "parent": 1, ...}`` — every span, in
  open order, before the events;
* ``{"type": "event", "span": 3, ...}`` — every trace entry in
  recording order, tagged with the span it was attached to (or
  ``null``).

Metric snapshots (:meth:`repro.sim.metrics.MetricsRegistry.snapshot`)
are plain dicts so sweep workers can ship them across process
boundaries; :func:`merge_snapshots` folds any number of them into one
deterministic aggregate (input order never matters for the result:
counters sum, gauge integrals sum, histogram moments pool).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

#: Keys whose presence marks a dict as a metrics snapshot when scanning
#: sweep results (:func:`find_snapshots`).
_SNAPSHOT_KEYS = frozenset({"sim_time", "counters", "gauges", "histograms"})

#: Keys whose presence marks a dict as an incident bundle
#: (:class:`repro.obs.recorder.FlightRecorder`).  Defined here (not in
#: the recorder module) so the snapshot and series walks can skip
#: bundles without an import cycle — a bundle embeds its own metrics
#: snapshot, which must not double-count into ``--metrics-out``.
_INCIDENT_KEYS = frozenset({"incident", "triggers", "window", "entries"})


# ----------------------------------------------------------------------
# JSONL trace export
# ----------------------------------------------------------------------
def _dumps(obj: Any) -> str:
    # Rich info values (IMSI, E164Number, IPv4Address) stringify.
    return json.dumps(obj, default=str, sort_keys=True)


def export_trace_jsonl(
    sim: Any,
    out: Union[str, IO[str]],
    run: str = "main",
    append: bool = False,
) -> int:
    """Write *sim*'s spans and trace entries to *out* (path or stream).

    Returns the number of lines written.  Pass ``append=True`` (with a
    path) to concatenate several runs into one file; each starts with
    its own ``run`` header line.
    """
    if isinstance(out, str):
        with open(out, "a" if append else "w", encoding="utf-8") as fh:
            return export_trace_jsonl(sim, fh, run=run)
    spans = sim.spans.spans
    trace = sim.trace
    lines = 0
    header = {
        "type": "run",
        "run": run,
        "sim_time": sim.now,
        "n_spans": len(spans),
        "n_entries": len(trace.entries),
        "entries_dropped": trace.dropped,
        "spans_dropped": sim.spans.dropped,
    }
    out.write(_dumps(header) + "\n")
    lines += 1
    entry_span: Dict[int, int] = {}
    for span in spans:
        record = span.to_dict()
        record["type"] = "span"
        record["run"] = run
        out.write(_dumps(record) + "\n")
        lines += 1
        for entry in span.entries:
            entry_span[id(entry)] = span.span_id
    for index, entry in enumerate(trace.entries):
        record = entry.to_dict()
        record["type"] = "event"
        record["run"] = run
        record["seq"] = index
        record["span"] = entry_span.get(id(entry))
        out.write(_dumps(record) + "\n")
        lines += 1
    return lines


def render_span_tree(sim: Any, max_entries_per_span: int = 40) -> str:
    """Human-readable per-call tree: spans indented by parentage, trace
    entries as leaves — the Figures 4-6 steps grouped by procedure."""
    spans = sim.spans.spans
    children: Dict[Optional[int], List[Any]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    lines: List[str] = []

    def emit(span: Any, depth: int) -> None:
        pad = "  " * depth
        keys = " ".join(f"{k}={v}" for k, v in sorted(span.keys.items()))
        end = f"{span.end:.3f}" if span.end is not None else "open"
        status = span.status or "open"
        lines.append(
            f"{pad}[{span.name} #{span.span_id}] {keys} "
            f"{span.start:.3f}s..{end} {status} ({len(span.entries)} events)"
        )
        shown = span.entries[:max_entries_per_span]
        for entry in shown:
            if entry.kind == "msg":
                lines.append(
                    f"{pad}  {entry.time:.4f} {entry.message} "
                    f"{entry.src} -> {entry.dst}"
                )
            else:
                lines.append(f"{pad}  {entry.time:.4f} ({entry.message})")
        if len(span.entries) > len(shown):
            lines.append(f"{pad}  ... {len(span.entries) - len(shown)} more")
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    orphans = [s for s in spans if s.parent_id is not None
               and all(p.span_id != s.parent_id for p in spans)]
    for root in children.get(None, []) + orphans:
        emit(root, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Metric snapshots
# ----------------------------------------------------------------------
def is_snapshot(value: Any) -> bool:
    """True when *value* looks like a ``MetricsRegistry.snapshot()``."""
    return isinstance(value, dict) and _SNAPSHOT_KEYS.issubset(value.keys())


def is_incident(value: Any) -> bool:
    """True when *value* looks like a flight-recorder incident bundle
    (:meth:`repro.obs.recorder.FlightRecorder` output)."""
    return isinstance(value, dict) and _INCIDENT_KEYS.issubset(value.keys())


def find_snapshots(value: Any) -> List[Dict[str, Any]]:
    """Recursively collect metric snapshots from an arbitrary sweep
    result value, walking dicts in sorted-key order and sequences in
    index order so the collection is deterministic.  Incident bundles
    are opaque leaves: the snapshot a bundle embeds describes that
    incident, not the run's exportable totals."""
    found: List[Dict[str, Any]] = []
    if is_incident(value):
        pass
    elif is_snapshot(value):
        found.append(value)
    elif isinstance(value, dict):
        for key in sorted(value, key=str):
            found.extend(find_snapshots(value[key]))
    elif isinstance(value, (list, tuple)):
        for item in value:
            found.extend(find_snapshots(item))
    return found


def _merge_gauges(
    summaries: List[Tuple[Dict[str, float], float]]
) -> Dict[str, float]:
    total_integral = sum(s["integral"] for s, _ in summaries)
    total_time = sum(t for _, t in summaries)
    return {
        "value": sum(s["value"] for s, _ in summaries),
        "peak": max(s["peak"] for s, _ in summaries),
        "integral": total_integral,
        # Merged time-average weights each source by its own duration.
        "time_average": total_integral / total_time if total_time > 0 else 0.0,
    }


def _merge_histograms(summaries: List[Dict[str, float]]) -> Dict[str, float]:
    total = sum(int(s["count"]) for s in summaries)
    if total == 0:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "stdev": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    populated = [s for s in summaries if s["count"]]
    mean = sum(s["mean"] * s["count"] for s in populated) / total
    # Pool the variance from per-source (n, mean, sample stdev).
    sum_sq = 0.0
    for s in populated:
        n = int(s["count"])
        var = s["stdev"] ** 2
        sum_sq += (n - 1) * var + n * s["mean"] ** 2
    stdev = math.sqrt(max(0.0, (sum_sq - total * mean**2) / (total - 1))) if total > 1 else 0.0
    merged = {
        "count": total,
        "mean": mean,
        "min": min(s["min"] for s in populated),
        "max": max(s["max"] for s in populated),
        "stdev": stdev,
    }
    # Quantiles of pooled raw samples are gone; a count-weighted average
    # of per-source quantiles is the standard deterministic estimate.
    for q in ("p50", "p95", "p99"):
        merged[q] = sum(s[q] * s["count"] for s in populated) / total
    return merged


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots into one aggregate, deterministically.

    Counters and gauge integrals sum; gauge peaks take the max; merged
    gauge time-averages re-divide total integral by total simulated
    time; histogram count/mean/min/max/stdev pool exactly, while merged
    quantiles are count-weighted averages of the per-source quantiles
    (an estimate — the raw samples are not shipped between processes).
    """
    snapshots = list(snapshots)
    merged: Dict[str, Any] = {
        "sim_time": sum(s["sim_time"] for s in snapshots),
        "sources": len(snapshots),
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    counter_names = sorted({n for s in snapshots for n in s["counters"]})
    for name in counter_names:
        merged["counters"][name] = sum(
            s["counters"].get(name, 0) for s in snapshots
        )
    gauge_names = sorted({n for s in snapshots for n in s["gauges"]})
    for name in gauge_names:
        merged["gauges"][name] = _merge_gauges(
            [(s["gauges"][name], s["sim_time"])
             for s in snapshots if name in s["gauges"]]
        )
    histogram_names = sorted({n for s in snapshots for n in s["histograms"]})
    for name in histogram_names:
        merged["histograms"][name] = _merge_histograms(
            [s["histograms"][name] for s in snapshots if name in s["histograms"]]
        )
    return merged
