"""Chrome-trace-event timeline export.

Serialises a run's correlated spans (:mod:`repro.obs.spans`) and per-hop
link segments (:mod:`repro.obs.hops`) into the Trace Event Format that
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
directly, so a registration or tromboned call can be *seen* as a
timeline instead of read as a trace listing.

Mapping:

* every procedure span becomes an async ``"b"``/``"e"`` pair (grouped by
  ``id`` = span id), nested spans draw nested;
* every hop segment becomes a complete ``"X"`` slice on a per-interface
  track, so the Figure-3 links appear as parallel swim-lanes;
* sim-time seconds map to trace-event microseconds, keeping the numbers
  integral for typical millisecond-scale link latencies.

Output is deterministic: events are emitted in span-open order followed
by hop-record order, and written with sorted keys, so a seeded run
exports a byte-stable timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.hops import FIGURE3_LINK_ORDER, HopRecorder, _link_sort_key

#: Process ids used in the exported trace: one lane group for
#: procedures, one for the Figure-3 links.
SPAN_PID = 1
LINK_PID = 2


def _us(t: float) -> float:
    """Sim-time seconds -> trace-event microseconds."""
    return round(t * 1e6, 3)


def timeline_events(
    sim: Any,
    hops: Optional[HopRecorder] = None,
    pid_base: int = 0,
    label: str = "",
) -> List[Dict[str, Any]]:
    """Trace-event dicts for *sim*'s spans plus *hops*' segments.

    ``pid_base``/``label`` namespace the lanes so several runs (e.g. the
    tromboning demo's classic-GSM and vGPRS networks) can share one
    timeline file without colliding."""
    span_pid = pid_base + SPAN_PID
    link_pid = pid_base + LINK_PID
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": span_pid, "tid": 0, "name": "process_name",
         "args": {"name": f"{label}procedures"}},
        {"ph": "M", "pid": link_pid, "tid": 0, "name": "process_name",
         "args": {"name": f"{label}links"}},
    ]
    for span in sim.spans.spans:
        end = span.end if span.end is not None else sim.now
        args: Dict[str, Any] = {"span": span.span_id}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        if span.status is not None:
            args["status"] = span.status
        for field in sorted(span.keys):
            args[field] = span.keys[field]
        events.append({
            "ph": "b", "cat": "span", "name": span.name,
            "id": span.span_id, "pid": span_pid, "tid": 1,
            "ts": _us(span.start), "args": args,
        })
        events.append({
            "ph": "e", "cat": "span", "name": span.name,
            "id": span.span_id, "pid": span_pid, "tid": 1,
            "ts": _us(end), "args": {},
        })
    if hops is not None:
        # One thread lane per interface, in Figure-3 stack order.
        interfaces = sorted(
            {seg.interface for seg in hops.segments}, key=_link_sort_key
        )
        tids = {iface: i + 1 for i, iface in enumerate(interfaces)}
        for iface in interfaces:
            events.append({
                "ph": "M", "pid": link_pid, "tid": tids[iface],
                "name": "thread_name", "args": {"name": f"link {iface}"},
            })
        for seg in hops.segments:
            events.append({
                "ph": "X", "cat": "hop", "name": seg.message,
                "pid": link_pid, "tid": tids[seg.interface],
                "ts": _us(seg.start),
                "dur": _us(seg.end) - _us(seg.start),
                "args": {"src": seg.src, "dst": seg.dst,
                         "interface": seg.interface},
            })
    return events


def _document(events: List[Dict[str, Any]], sim_time: float) -> Dict[str, Any]:
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro vGPRS simulator",
            "sim_time_s": sim_time,
            "clock": "simulated (1 us = 1e-6 sim seconds)",
            "link_order": list(FIGURE3_LINK_ORDER),
        },
    }


def _write(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")


def export_timeline(
    sim: Any,
    hops: Optional[HopRecorder] = None,
    path: Optional[str] = None,
) -> Dict[str, Any]:
    """Build (and optionally write) the Chrome-trace JSON object.

    The returned dict is the JSON-object flavour of the format —
    ``{"traceEvents": [...], ...}`` — which both ``chrome://tracing``
    and Perfetto accept; extra top-level keys are ignored by viewers.
    """
    doc = _document(timeline_events(sim, hops), sim.now)
    if path is not None:
        _write(doc, path)
    return doc


def export_runs_timeline(
    runs: List[Any],
    path: Optional[str] = None,
) -> Dict[str, Any]:
    """One timeline document covering several ``(run_name, sim)`` pairs;
    each run's lanes get their own pid range and a name prefix.  Uses
    whatever hop recorder hangs off each simulator (``sim.hops``)."""
    events: List[Dict[str, Any]] = []
    sim_time = 0.0
    many = len(runs) > 1
    for idx, (run, sim) in enumerate(runs):
        events.extend(timeline_events(
            sim,
            getattr(sim, "hops", None),
            pid_base=idx * 2,
            label=f"{run}: " if many else "",
        ))
        sim_time = max(sim_time, sim.now)
    doc = _document(events, sim_time)
    if path is not None:
        _write(doc, path)
    return doc
