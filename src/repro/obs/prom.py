"""Prometheus text-exposition rendering of metric snapshots.

The simulator's registry is not a live scrape target — runs finish in
milliseconds of wall time — so the useful artefact is a final snapshot
in the standard text format, diffable across runs and loadable by any
Prometheus tooling::

    # TYPE repro_msgs_tx_VMSC counter
    repro_msgs_tx_VMSC 42
    # TYPE repro_SGSN_contexts gauge
    repro_SGSN_contexts 1
    repro_SGSN_contexts_time_avg 0.83
    # TYPE repro_TERM1_mouth_to_ear summary
    repro_TERM1_mouth_to_ear{quantile="0.5"} 0.0801

Counters map to ``counter`` series, gauges to a ``gauge`` plus
``_time_avg``/``_peak`` companions (the time-weighted view is the whole
point of :class:`~repro.sim.metrics.Gauge`), histograms to ``summary``
series with ``quantile`` labels, ``_sum`` and ``_count``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Union

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: snapshot histogram key -> Prometheus quantile label
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def sanitize_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return prefix + cleaned


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(source: Any, prefix: str = "repro_") -> str:
    """Render a metrics snapshot (or a live ``MetricsRegistry``) as
    Prometheus text exposition format.  Series are emitted in sorted
    name order, so equal metrics render byte-identically."""
    snapshot: Dict[str, Any]
    if hasattr(source, "snapshot"):
        snapshot = source.snapshot()
    else:
        snapshot = source
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        series = sanitize_name(name, prefix)
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_fmt(value)}")
    for name, summary in snapshot["gauges"].items():
        series = sanitize_name(name, prefix)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_fmt(summary['value'])}")
        lines.append(f"# TYPE {series}_time_avg gauge")
        lines.append(f"{series}_time_avg {_fmt(summary['time_average'])}")
        lines.append(f"# TYPE {series}_peak gauge")
        lines.append(f"{series}_peak {_fmt(summary['peak'])}")
    for name, summary in snapshot["histograms"].items():
        series = sanitize_name(name, prefix)
        lines.append(f"# TYPE {series} summary")
        for key, label in _QUANTILES:
            lines.append(
                f'{series}{{quantile="{label}"}} {_fmt(summary[key])}'
            )
        lines.append(
            f"{series}_sum {_fmt(summary['mean'] * summary['count'])}"
        )
        lines.append(f"{series}_count {_fmt(int(summary['count']))}")
    sim_time = sanitize_name("sim_time", prefix)
    lines.append(f"# TYPE {sim_time} gauge")
    lines.append(f"{sim_time} {_fmt(snapshot['sim_time'])}")
    return "\n".join(lines) + "\n"
