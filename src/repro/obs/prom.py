"""Prometheus text-exposition rendering of metric snapshots.

The registry renders in the standard text format both as a *final
snapshot* (diffable across runs, loadable by any Prometheus tooling)
and as a *live scrape target*: ``python -m repro serve`` publishes
registry snapshots each pacing slice and its ``/metrics`` endpoint
renders the latest one from the scrape thread (see
:mod:`repro.serve`)::

    # HELP repro_msgs_tx_VMSC Simulation counter msgs.tx.VMSC.
    # TYPE repro_msgs_tx_VMSC counter
    repro_msgs_tx_VMSC 42
    # HELP repro_SGSN_contexts Simulation gauge SGSN.contexts.
    # TYPE repro_SGSN_contexts gauge
    repro_SGSN_contexts 1
    # HELP repro_TERM1_mouth_to_ear Simulation histogram TERM1.mouth_to_ear.
    # TYPE repro_TERM1_mouth_to_ear summary
    repro_TERM1_mouth_to_ear{quantile="0.5"} 0.0801

Counters map to ``counter`` series, gauges to a ``gauge`` plus
``_time_avg``/``_peak`` companions (the time-weighted view is the whole
point of :class:`~repro.sim.metrics.Gauge`), histograms to ``summary``
series with ``quantile`` labels, plus ``_sum``/``_count`` companions
with their own ``HELP``/``TYPE`` headers.  Every emitted series carries
a ``# HELP`` line and a ``# TYPE`` line, as the exposition-format spec
expects, and output stays byte-stable for equal snapshots.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Union

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: snapshot histogram key -> Prometheus quantile label
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def sanitize_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return prefix + cleaned


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_help(text: str) -> str:
    """HELP-line escaping per the exposition format: backslash and
    newline are the only escaped characters."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _header(lines: List[str], series: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {series} {_escape_help(help_text)}")
    lines.append(f"# TYPE {series} {kind}")


def render_prometheus(source: Any, prefix: str = "repro_") -> str:
    """Render a metrics snapshot (or a live ``MetricsRegistry``) as
    Prometheus text exposition format.  Series are emitted in sorted
    name order, so equal metrics render byte-identically.

    Safe to call from a scrape thread against an in-progress run: a
    live registry is snapshot-copied before any line is rendered
    (:meth:`~repro.sim.metrics.MetricsRegistry.snapshot` copies each
    metric family atomically and never mutates gauge state), so the
    render never iterates a dict the simulation thread is growing."""
    snapshot: Dict[str, Any]
    if hasattr(source, "snapshot"):
        # Snapshot-copy before render: after this call everything below
        # works on plain data owned by this thread alone.
        snapshot = source.snapshot()
    else:
        snapshot = source
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        series = sanitize_name(name, prefix)
        _header(lines, series, "counter", f"Simulation counter {name}.")
        lines.append(f"{series} {_fmt(value)}")
    for name, summary in snapshot["gauges"].items():
        series = sanitize_name(name, prefix)
        _header(lines, series, "gauge", f"Simulation gauge {name}.")
        lines.append(f"{series} {_fmt(summary['value'])}")
        _header(lines, f"{series}_time_avg", "gauge",
                f"Time-weighted average of {name} over the run.")
        lines.append(f"{series}_time_avg {_fmt(summary['time_average'])}")
        _header(lines, f"{series}_peak", "gauge",
                f"Peak value of {name} over the run.")
        lines.append(f"{series}_peak {_fmt(summary['peak'])}")
    for name, summary in snapshot["histograms"].items():
        series = sanitize_name(name, prefix)
        _header(lines, series, "summary", f"Simulation histogram {name}.")
        for key, label in _QUANTILES:
            lines.append(
                f'{series}{{quantile="{label}"}} {_fmt(summary[key])}'
            )
        _header(lines, f"{series}_sum", "counter",
                f"Sum of observed values of {name}.")
        lines.append(
            f"{series}_sum {_fmt(summary['mean'] * summary['count'])}"
        )
        _header(lines, f"{series}_count", "counter",
                f"Number of observations of {name}.")
        lines.append(f"{series}_count {_fmt(int(summary['count']))}")
    sim_time = sanitize_name("sim_time", prefix)
    _header(lines, sim_time, "gauge",
            "Final simulated clock of the run, seconds.")
    lines.append(f"{sim_time} {_fmt(snapshot['sim_time'])}")
    return "\n".join(lines) + "\n"
