"""Always-on incident flight recorder with bounded memory.

A live service cannot keep a full trace of everything that ever
happened, yet the moment an alert fires the operator needs exactly the
history that just scrolled away.  A :class:`FlightRecorder` sits on the
same passive hooks the span tracker and SLO watchdog already use —
``TraceRecorder.sink``, ``SpanTracker.on_close``,
``SeriesSampler.on_bucket``, ``AlertManager.on_transition`` — and keeps
four bounded rings of recent history: trace entries, span closures,
series buckets and alert transitions.  Appends are O(1)
(``collections.deque`` with ``maxlen``), the recorder never schedules
events, draws RNG or records trace entries, so an armed recorder cannot
perturb a seeded run: traces stay byte-identical, exactly like the
span tracker and the series sampler.

When an incident *trigger* arrives — a :class:`~repro.faults.injector
.FaultInjector` event fires, an alert rule leaves ``ok``, or the CLI
reports a nonzero exit — the recorder snapshots the open spans and
starts a capture window.  Once sim time passes the post-trigger window
(later triggers extend it) the capture *finalizes* into a self-contained
**incident bundle**: a plain-JSON dict carrying the triggers, the
pre/post window of trace entries and series buckets, open spans, span
closures, the armed fault plan, the alert transition log and a metrics
snapshot.  Bundles are pure plain data (rich values are stringified at
capture time), so they pickle across sweep-worker process boundaries,
serve over HTTP, and serialize byte-identically for the same seed and
plan.  ``python -m repro analyze`` (:mod:`repro.obs.analyze`) joins a
bundle's faults, alerts and spans into a blast-radius report.

Like snapshots (:func:`repro.obs.export.find_snapshots`) and series
(:func:`repro.obs.series.find_series`), bundles embedded in sweep
results are discovered by shape (:func:`find_incidents`) and merged in
input order (:func:`merge_incidents`), so a parallel sweep's bundle
list is byte-identical to a serial one.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.export import is_incident
from repro.sim.trace import TraceEntry

__all__ = [
    "FlightRecorder",
    "find_incidents",
    "merge_incidents",
    "plain_value",
]

#: FAULTS notes that *open* (or extend) an incident capture, mapped to
#: the info field naming the faulted element.
_FAULT_OPENERS = {
    "FAULT_LINK_DOWN": "link",
    "FAULT_NODE_CRASH": "name",
    "FAULT_IMPAIR_ON": "link",
}

#: FAULTS notes that mark recovery: they extend an open capture's post
#: window (so the healing tail lands in the bundle) but never open one.
_FAULT_CLOSERS = frozenset(
    {"FAULT_LINK_UP", "FAULT_NODE_RESTART", "FAULT_IMPAIR_OFF"}
)

_PLAIN_TYPES = (str, int, float, bool, type(None))


def plain_value(value: Any) -> Any:
    """JSON-safe plain-data copy of *value*: rich leaf objects (IMSI,
    E164Number, IPv4Address, ...) stringify, containers copy.  Bundles
    built from plain data serialize byte-identically and pickle across
    process boundaries without dragging simulator types along."""
    if isinstance(value, _PLAIN_TYPES):
        return value
    if isinstance(value, dict):
        return {str(k): plain_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain_value(v) for v in value]
    return str(value)


def _plain_entry(entry: TraceEntry) -> Dict[str, Any]:
    return {
        "t": entry.time,
        "kind": entry.kind,
        "src": entry.src,
        "dst": entry.dst,
        "interface": entry.interface,
        "message": entry.message,
        "info": plain_value(entry.info),
    }


class FlightRecorder:
    """Bounded in-memory history plus incident bundle capture.

    Parameters
    ----------
    sim:
        The simulator to record; hooks chain onto its trace recorder
        and span tracker at :meth:`arm`.
    run:
        Run label stamped into every bundle (matches the ObsSession /
        trace-export run names).
    max_entries, max_closures, max_buckets, max_transitions:
        Ring bounds; the oldest element falls off on overflow (O(1)).
    pre_window, post_window:
        Simulated seconds of history kept before the first trigger and
        after the last one; later triggers extend an open capture.
    max_incidents:
        At most this many bundles are kept per recorder; further
        triggers are counted in :attr:`dropped_incidents`.
    """

    def __init__(
        self,
        sim: Any,
        run: str = "main",
        max_entries: int = 4096,
        max_closures: int = 512,
        max_buckets: int = 256,
        max_transitions: int = 128,
        pre_window: float = 10.0,
        post_window: float = 10.0,
        max_incidents: int = 16,
    ) -> None:
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries!r}")
        if pre_window < 0 or post_window < 0:
            raise ValueError(
                f"windows must be >= 0, got {pre_window!r}/{post_window!r}"
            )
        if max_incidents < 1:
            raise ValueError(
                f"max_incidents must be >= 1, got {max_incidents!r}"
            )
        self.sim = sim
        self.run = run
        self.pre_window = float(pre_window)
        self.post_window = float(post_window)
        self.max_incidents = max_incidents
        #: Recent trace entries, oldest first (ring).
        self.entries: Deque[TraceEntry] = deque(maxlen=max_entries)
        #: Recent span closures as plain dicts, close order (ring).
        self.closures: Deque[Dict[str, Any]] = deque(maxlen=max_closures)
        #: Recent closed series buckets (ring; refs, never mutated).
        self.buckets: Deque[Dict[str, Any]] = deque(maxlen=max_buckets)
        #: Recent alert transitions as plain dicts (ring).
        self.transitions: Deque[Dict[str, Any]] = deque(maxlen=max_transitions)
        #: The armed fault plan, as plain JSON-grammar event dicts.
        self.plan_events: List[Dict[str, Any]] = []
        #: Finalized incident bundles, capture order.
        self.bundles: List[Dict[str, Any]] = []
        #: Triggers refused because ``max_incidents`` was reached.
        self.dropped_incidents = 0
        self._armed = False
        self._pending: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Arming (hook chaining; every previous hook keeps running first)
    # ------------------------------------------------------------------
    def arm(self) -> "FlightRecorder":
        """Chain onto the trace sink and the span tracker's close hook.
        Idempotent; safe to call on a sim whose span tracker already
        feeds from the sink (the kernel installs that chain itself)."""
        if self._armed:
            return self
        self._armed = True
        trace = self.sim.trace
        previous_sink: Optional[Callable[[TraceEntry], None]] = trace.sink

        def sink(entry: TraceEntry) -> None:
            if previous_sink is not None:
                previous_sink(entry)
            self._on_entry(entry)

        trace.sink = sink
        spans = self.sim.spans
        previous_close: Optional[Callable[[Any], None]] = spans.on_close

        def on_close(span: Any) -> None:
            if previous_close is not None:
                previous_close(span)
            self._on_span_close(span)

        spans.on_close = on_close
        return self

    def attach_sampler(self, sampler: Any) -> "FlightRecorder":
        """Ring every bucket *sampler* closes (after whatever hook was
        already installed — SLO watchdog, alert manager)."""
        previous = sampler.on_bucket

        def hook(s: Any, bucket: Dict[str, Any]) -> None:
            if previous is not None:
                previous(s, bucket)
            self._on_bucket(bucket)

        sampler.on_bucket = hook
        return self

    def attach_alerts(self, manager: Any) -> "FlightRecorder":
        """Ring every alert transition *manager* records; a rule leaving
        ``ok`` (a ``pending`` transition) triggers an incident capture."""
        previous = manager.on_transition

        def hook(entry: Dict[str, Any]) -> None:
            if previous is not None:
                previous(entry)
            self._on_alert_transition(entry)

        manager.on_transition = hook
        return self

    # ------------------------------------------------------------------
    # Hook bodies (sim thread only; pure appends, no scheduling)
    # ------------------------------------------------------------------
    def _on_entry(self, entry: TraceEntry) -> None:
        self._maybe_finalize(entry.time)
        self.entries.append(entry)
        if entry.kind != "note" or entry.src != "FAULTS":
            return
        message = entry.message
        if message == "FAULT_PLAN_ARMED":
            events = entry.info.get("events")
            if isinstance(events, list):
                self.plan_events.extend(plain_value(events))
        elif message in _FAULT_OPENERS:
            label = entry.info.get(_FAULT_OPENERS[message], "?")
            self._trigger(entry.time, "fault", f"fault:{message}:{label}")
        elif message in _FAULT_CLOSERS and self._pending is not None:
            # Recovery events never open a capture, but the healing
            # tail of an open one belongs in the bundle.
            self._extend(entry.time)

    def _on_span_close(self, span: Any) -> None:
        end = span.end if span.end is not None else self.sim.now
        self._maybe_finalize(end)
        self.closures.append(plain_value(span.to_dict()))

    def _on_bucket(self, bucket: Dict[str, Any]) -> None:
        self._maybe_finalize(float(bucket["t"]))
        self.buckets.append(bucket)

    def _on_alert_transition(self, entry: Dict[str, Any]) -> None:
        t = float(entry["t"])
        self._maybe_finalize(t)
        self.transitions.append(dict(entry))
        if entry.get("to") == "pending":
            self._trigger(t, "alert", f"alert:{entry.get('alert')}")

    # ------------------------------------------------------------------
    # Capture lifecycle
    # ------------------------------------------------------------------
    @property
    def capturing(self) -> bool:
        return self._pending is not None

    def capture_now(self, reason: str) -> None:
        """Open (or extend) a capture at the current sim instant — the
        CLI calls this when a run is about to exit nonzero.  Finalize by
        calling :meth:`flush`."""
        self._trigger(self.sim.now, "manual", reason)

    def flush(self) -> None:
        """Finalize any in-flight capture (drain / end of run)."""
        if self._pending is not None:
            self._finalize()

    def _trigger(self, t: float, kind: str, reason: str) -> None:
        trig = {"t": t, "kind": kind, "reason": reason}
        if self._pending is not None:
            self._pending["triggers"].append(trig)
            self._extend(t)
            return
        if len(self.bundles) >= self.max_incidents:
            self.dropped_incidents += 1
            return
        self._pending = {
            "triggers": [trig],
            "start": t,
            "post_until": t + self.post_window,
            # Open spans are part of the blast radius and may never
            # close; snapshot them at trigger time.
            "open_spans": [
                plain_value(s.to_dict()) for s in self.sim.spans.open_spans()
            ],
        }

    def _extend(self, t: float) -> None:
        pending = self._pending
        if pending is not None:
            pending["post_until"] = max(
                pending["post_until"], t + self.post_window
            )

    def _maybe_finalize(self, t: float) -> None:
        pending = self._pending
        if pending is not None and t > pending["post_until"]:
            self._finalize()

    def _finalize(self) -> None:
        pending = self._pending
        assert pending is not None
        self._pending = None
        w_from = max(pending["start"] - self.pre_window, 0.0)
        w_until = pending["post_until"]
        bundle: Dict[str, Any] = {
            "incident": len(self.bundles) + 1,
            "run": self.run,
            "sim_time": self.sim.now,
            "triggers": pending["triggers"],
            "window": {
                "from": w_from,
                "until": w_until,
                "pre": self.pre_window,
                "post": self.post_window,
            },
            "entries": [
                _plain_entry(e)
                for e in self.entries
                if w_from <= e.time <= w_until
            ],
            "open_spans": pending["open_spans"],
            "span_closures": [
                c for c in self.closures
                if c["end"] is not None and w_from <= c["end"] <= w_until
            ],
            "series": [
                copy.deepcopy(b)
                for b in self.buckets
                if w_from <= float(b["t"]) <= w_until
            ],
            "alerts": [
                t for t in self.transitions
                if w_from <= float(t["t"]) <= w_until
            ],
            "fault_plan": list(self.plan_events),
            # snapshot() never mutates the registry (peek accessors),
            # so capturing it here is scrape-equivalent and safe.
            "metrics": self.sim.metrics.snapshot(),
        }
        self.bundles.append(bundle)

    # ------------------------------------------------------------------
    # Publication (plain data for /incidents and /status)
    # ------------------------------------------------------------------
    def last_trigger(self) -> Optional[str]:
        """Reason of the most recent capture's first trigger (captured
        bundles win over an in-flight capture), for ``/status``."""
        if self.bundles:
            triggers = self.bundles[-1]["triggers"]
            return str(triggers[0]["reason"]) if triggers else None
        if self._pending is not None and self._pending["triggers"]:
            return str(self._pending["triggers"][0]["reason"])
        return None

    def to_payload(self) -> Dict[str, Any]:
        """Plain data for the ``/incidents`` endpoint: per-bundle
        summaries, not the full bundles (those are written to disk via
        ``--incident-dir``)."""
        return {
            "captured": len(self.bundles),
            "dropped": self.dropped_incidents,
            "capturing": self._pending is not None,
            "incidents": [
                {
                    "incident": b["incident"],
                    "run": b["run"],
                    "sim_time": b["sim_time"],
                    "triggers": list(b["triggers"]),
                    "window": dict(b["window"]),
                    "entries": len(b["entries"]),
                    "open_spans": len(b["open_spans"]),
                    "span_closures": len(b["span_closures"]),
                    "series_buckets": len(b["series"]),
                    "alert_transitions": len(b["alerts"]),
                }
                for b in self.bundles
            ],
        }


# ----------------------------------------------------------------------
# Discovery and merging (sweep workers ship bundles in result values)
# ----------------------------------------------------------------------
def find_incidents(value: Any) -> List[Dict[str, Any]]:
    """Recursively collect incident bundles from an arbitrary sweep
    result value; the walk order matches
    :func:`repro.obs.export.find_snapshots` (sorted dict keys, sequence
    index order), so collection is deterministic.  Bundles are leaves:
    the walk never descends into one (its embedded metrics snapshot
    belongs to the bundle, not to ``--metrics-out``)."""
    found: List[Dict[str, Any]] = []
    if is_incident(value):
        found.append(value)
    elif isinstance(value, dict):
        for key in sorted(value, key=str):
            found.extend(find_incidents(value[key]))
    elif isinstance(value, (list, tuple)):
        for item in value:
            found.extend(find_incidents(item))
    return found


def merge_incidents(
    bundles: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Merge bundle lists from several sources by renumbering in input
    order — the same order-stable contract snapshots and series have,
    so a parallel sweep's merged bundles are byte-identical to a serial
    run's.  Bundles are never folded together: each incident keeps its
    own window and trigger history."""
    merged: List[Dict[str, Any]] = []
    for number, bundle in enumerate(bundles, start=1):
        renumbered = dict(bundle)
        renumbered["incident"] = number
        merged.append(renumbered)
    return merged
