"""Deterministic, sim-time-bucketed time series over a metrics registry.

The PR-2 snapshots answer "what were the totals when the run ended?";
a soak run also needs "how did setup latency / trunk occupancy / PDP
context counts evolve *during* the run".  A :class:`SeriesSampler`
schedules itself every ``interval`` simulated seconds and closes one
*bucket* per tick:

* **counters** — the delta since the previous tick (omitted when 0);
* **gauges**   — the value at the bucket edge plus the windowed
  integral, so the window time-average is ``integral / width``;
* **histograms** — a summary (:data:`repro.sim.metrics
  .HISTOGRAM_SUMMARY_KEYS`) of only the samples observed inside the
  window, i.e. windowed quantiles, not cumulative ones.

Memory is bounded: past ``max_points`` buckets the series *coarsens* —
adjacent buckets merge pairwise and the interval doubles — so an
arbitrarily long soak holds at most ``max_points`` buckets at any
resolution the run's length demands.

Sampling only ever *reads* the registry and records no trace entries,
so an armed sampler cannot perturb a seeded trace: traces stay
byte-identical, exactly like the PR-2 span tracker.

Cross-worker merging (:func:`merge_series`) uses the same semantics the
snapshot merger has: counter deltas sum, gauge values/integrals sum,
histogram buckets pool through the identical
:func:`repro.obs.export._merge_histograms` estimator.  Merging is by
bucket index after coarsening every source to the coarsest interval,
and a single-source merge is the identity.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional

from repro.obs.export import _merge_histograms, is_incident

#: Keys whose presence marks a dict as a serialised series when
#: scanning sweep results (:func:`find_series`).
_SERIES_KEYS = frozenset({"interval", "start", "sim_time", "buckets"})


class SeriesSampler:
    """Samples one simulator's :class:`~repro.sim.metrics
    .MetricsRegistry` into sim-time buckets.

    Parameters
    ----------
    sim:
        The simulator to sample; ticks ride its normal event queue.
    interval:
        Bucket width in simulated seconds (doubles on coarsening).
    max_points:
        Retention bound; when a tick would exceed it, adjacent buckets
        merge pairwise.  Must be an even number >= 4.
    """

    def __init__(self, sim: Any, interval: float = 1.0,
                 max_points: int = 512) -> None:
        if interval <= 0:
            raise ValueError(f"series interval must be > 0, got {interval!r}")
        if max_points < 4 or max_points % 2:
            raise ValueError(
                f"max_points must be an even number >= 4, got {max_points!r}"
            )
        self.sim = sim
        self.interval = float(interval)
        #: Bucket width the sampler was configured with (pre-coarsening).
        self.base_interval = float(interval)
        self.max_points = max_points
        self.started_at = float(sim.now)
        #: Closed buckets, oldest first.
        self.buckets: List[Dict[str, Any]] = []
        #: Times the retention bound forced a pairwise coarsen.
        self.coarsenings = 0
        #: Hook called with each freshly closed bucket (SLO watchdog).
        self.on_bucket: Optional[
            Callable[["SeriesSampler", Dict[str, Any]], None]
        ] = None
        self._event: Optional[Any] = None
        self._prev_counters: Dict[str, int] = {}
        self._prev_integrals: Dict[str, float] = {}
        self._prev_hist_len: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SeriesSampler":
        """Arm the sampler; the first bucket closes one interval on."""
        if self._event is None:
            self._event = self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self, flush: bool = True) -> "SeriesSampler":
        """Disarm; with *flush*, close a final (possibly partial)
        bucket covering the time since the last tick."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if flush:
            self.flush()
        return self

    def flush(self) -> None:
        """Close a partial bucket up to the current instant, if any
        sim time has passed since the last closed bucket."""
        last_t = self.buckets[-1]["t"] if self.buckets else self.started_at
        if self.sim.now > last_t:
            self._close_bucket()

    def _tick(self) -> None:
        self._close_bucket()
        if len(self.buckets) > self.max_points:
            self.buckets = _coarsen_buckets(self.buckets)
            self.interval *= 2.0
            self.coarsenings += 1
        self._event = self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _close_bucket(self) -> None:
        metrics = self.sim.metrics
        counters: Dict[str, int] = {}
        for counter in metrics.counter_items():
            value = counter.value
            delta = value - self._prev_counters.get(counter.name, 0)
            if delta:
                counters[counter.name] = delta
                self._prev_counters[counter.name] = value
        gauges: Dict[str, Dict[str, float]] = {}
        for gauge in metrics.gauge_items():
            integral = gauge.integral()
            delta_i = integral - self._prev_integrals.get(gauge.name, 0.0)
            self._prev_integrals[gauge.name] = integral
            if delta_i or gauge.value:
                gauges[gauge.name] = {
                    "value": gauge.value,
                    "integral": delta_i,
                }
        histograms: Dict[str, Dict[str, float]] = {}
        for histogram in metrics.histogram_items():
            start = self._prev_hist_len.get(histogram.name, 0)
            if histogram.count > start:
                histograms[histogram.name] = histogram.window_summary(start)
                self._prev_hist_len[histogram.name] = histogram.count
        bucket: Dict[str, Any] = {
            "t": self.sim.now,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        self.buckets.append(bucket)
        hook = self.on_bucket
        if hook is not None:
            hook(self, bucket)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dump, mergeable with :func:`merge_series` and
        safe to ship across process boundaries (sweep workers)."""
        return {
            "interval": self.interval,
            "base_interval": self.base_interval,
            "start": self.started_at,
            "sim_time": self.sim.now,
            "sources": 1,
            "coarsenings": self.coarsenings,
            "buckets": copy.deepcopy(self.buckets),
        }


# ----------------------------------------------------------------------
# Coarsening and merging
# ----------------------------------------------------------------------
def _merge_bucket_pair(first: Dict[str, Any],
                       second: Dict[str, Any]) -> Dict[str, Any]:
    counters = dict(first["counters"])
    for name, delta in second["counters"].items():
        counters[name] = counters.get(name, 0) + delta
    gauges: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(first["gauges"]) | set(second["gauges"])):
        a = first["gauges"].get(name)
        b = second["gauges"].get(name)
        # The later bucket's edge value wins; windowed integrals sum.
        value = b["value"] if b is not None else 0.0
        gauges[name] = {
            "value": value,
            "integral": (a["integral"] if a else 0.0)
            + (b["integral"] if b else 0.0),
        }
    histograms: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(first["histograms"]) | set(second["histograms"])):
        parts = [
            source[name]
            for source in (first["histograms"], second["histograms"])
            if name in source
        ]
        histograms[name] = parts[0] if len(parts) == 1 else _merge_histograms(parts)
    return {
        "t": second["t"],
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _coarsen_buckets(buckets: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Merge adjacent bucket pairs (halving the count, doubling the
    effective interval).  A trailing odd bucket survives unmerged."""
    out: List[Dict[str, Any]] = []
    for i in range(0, len(buckets) - 1, 2):
        out.append(_merge_bucket_pair(buckets[i], buckets[i + 1]))
    if len(buckets) % 2:
        out.append(copy.deepcopy(buckets[-1]))
    return out


def is_series(value: Any) -> bool:
    """True when *value* looks like a :meth:`SeriesSampler.to_dict`."""
    return isinstance(value, dict) and _SERIES_KEYS.issubset(value.keys())


def find_series(value: Any) -> List[Dict[str, Any]]:
    """Recursively collect serialised series from an arbitrary sweep
    result value; the walk order matches
    :func:`repro.obs.export.find_snapshots` (sorted dict keys, sequence
    index order), so collection is deterministic.  Incident bundles are
    opaque leaves, mirroring the snapshot walk."""
    found: List[Dict[str, Any]] = []
    if is_incident(value):
        pass
    elif is_series(value):
        found.append(value)
    elif isinstance(value, dict):
        for key in sorted(value, key=str):
            found.extend(find_series(value[key]))
    elif isinstance(value, (list, tuple)):
        for item in value:
            found.extend(find_series(item))
    return found


def _coarsened_to(series: Dict[str, Any], interval: float) -> Dict[str, Any]:
    if series["interval"] == interval:
        return series
    out = dict(series)
    buckets = series["buckets"]
    width = series["interval"]
    coarsenings = int(series.get("coarsenings", 0))
    while width < interval:
        buckets = _coarsen_buckets(buckets)
        width *= 2.0
        coarsenings += 1
    if width != interval:
        raise ValueError(
            f"cannot align series interval {series['interval']!r} "
            f"to {interval!r} by pairwise coarsening"
        )
    out["buckets"] = buckets
    out["interval"] = width
    out["coarsenings"] = coarsenings
    return out


def merge_series(series_list: Any) -> Dict[str, Any]:
    """Fold serialised series into one aggregate, deterministically.

    Every source is first coarsened to the coarsest interval present
    (intervals must be power-of-two multiples of each other, which
    same-configured samplers guarantee); buckets then merge by index
    with snapshot semantics — counter deltas sum, gauge edge values and
    windowed integrals sum, histogram windows pool through the exact
    snapshot-merge estimator.  Input order never matters for the
    result, and merging a single series is the identity.
    """
    series_list = list(series_list)
    if not series_list:
        return {"interval": 0.0, "start": 0.0, "sim_time": 0.0,
                "sources": 0, "buckets": []}
    if len(series_list) == 1:
        return copy.deepcopy(series_list[0])
    target = max(s["interval"] for s in series_list)
    aligned = [_coarsened_to(s, target) for s in series_list]
    length = max(len(s["buckets"]) for s in aligned)
    buckets: List[Dict[str, Any]] = []
    for i in range(length):
        present = [s["buckets"][i] for s in aligned if i < len(s["buckets"])]
        counters: Dict[str, int] = {}
        for bucket in present:
            for name, delta in bucket["counters"].items():
                counters[name] = counters.get(name, 0) + delta
        counters = {name: counters[name] for name in sorted(counters)}
        gauges: Dict[str, Dict[str, float]] = {}
        gauge_names = sorted({n for b in present for n in b["gauges"]})
        for name in gauge_names:
            parts = [b["gauges"][name] for b in present if name in b["gauges"]]
            gauges[name] = {
                "value": sum(p["value"] for p in parts),
                "integral": sum(p["integral"] for p in parts),
            }
        histograms: Dict[str, Dict[str, float]] = {}
        hist_names = sorted({n for b in present for n in b["histograms"]})
        for name in hist_names:
            parts = [b["histograms"][name] for b in present
                     if name in b["histograms"]]
            histograms[name] = _merge_histograms(parts)
        buckets.append({
            "t": max(b["t"] for b in present),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    return {
        "interval": target,
        "start": min(s["start"] for s in series_list),
        "sim_time": sum(s["sim_time"] for s in series_list),
        "sources": sum(int(s.get("sources", 1)) for s in series_list),
        "buckets": buckets,
    }
