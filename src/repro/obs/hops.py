"""Per-link latency attribution — where setup time is actually spent.

Figure 3 of the paper strings ten links between the handset and the far
terminal (Um, Abis, A, Gb, Gn, Gi, ip, ...).  The trace records *that* a
message crossed a link; a :class:`HopRecorder` additionally records
*how long the crossing took* — the ingress (transmit) and egress
(delivery) sim-times of every signalling message — as

* a list of :class:`HopSegment` records for the timeline exporter, and
* per ``(link, message)`` latency histograms named
  ``hop.<interface>.<message>`` in the simulation's metrics registry,

so a registration or call-setup procedure can be broken down into a
per-link *waterfall* (:func:`render_waterfall`): which Figure-3 link
each step of the Figure 4-6 flow spends its time on.

The recorder is **off by default** — ``sim.hops`` is ``None`` and the
link hot path pays one attribute load plus a ``None`` check.  When armed
it only reads packet metadata and appends records; it never schedules
events, consumes RNG or records trace entries, so seeded traces stay
byte-identical with it on or off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Figure-3 link order, used to sort waterfall rows the way the paper
#: draws the protocol stack (unknown interfaces sort after, by name).
FIGURE3_LINK_ORDER = ("Um", "Abis", "A", "Gb", "Gn", "Gi", "ip", "isup", "pstn")


class HopSegment:
    """One message's crossing of one link."""

    __slots__ = ("src", "dst", "interface", "message", "start", "end")

    def __init__(self, src: str, dst: str, interface: str, message: str,
                 start: float, end: float) -> None:
        self.src = src
        self.dst = dst
        self.interface = interface
        self.message = message
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "interface": self.interface,
            "message": self.message,
            "start": self.start,
            "end": self.end,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Hop {self.message} {self.src}->{self.dst} "
            f"iface={self.interface} {self.start:.6f}..{self.end:.6f}>"
        )


class HopRecorder:
    """Collects :class:`HopSegment` records from the link layer.

    Armed by assigning to ``sim.hops``; :meth:`on_transmit` is invoked by
    :meth:`repro.net.link.Link.transmit` with the send instant and the
    resolved delivery delay.  Media frames (the trace recorder's quiet
    names) are skipped — they would swamp the signalling hops and are
    already measured through metrics.
    """

    def __init__(self, sim: Any, max_segments: int = 100_000) -> None:
        if max_segments < 2:
            raise ValueError(f"max_segments must be >= 2, got {max_segments!r}")
        self.sim = sim
        self.max_segments = max_segments
        #: Recorded hops in transmit order.
        self.segments: List[HopSegment] = []
        #: Hops discarded to honour ``max_segments`` (soak bounding).
        self.dropped = 0
        self.quiet_names = set(sim.trace.quiet_names)
        self._metrics = sim.metrics
        # (interface, message) -> Histogram, resolved once per pair so
        # the armed per-message cost stays a dict hit, not a registry
        # string build + lookup.
        self._hist_cache: Dict[Tuple[str, str], Any] = {}

    def on_transmit(self, src: "Any", dst: "Any", interface: str,
                    packet: Any, delay: float) -> None:
        """Record one link crossing starting now and landing after
        *delay* simulated seconds."""
        message = packet.flow_name()
        if message in self.quiet_names:
            return
        start = self.sim.now
        self.segments.append(
            HopSegment(src.name, dst.name, interface, message,
                       start, start + delay)
        )
        if len(self.segments) > self.max_segments:
            keep_from = len(self.segments) - self.max_segments // 2
            self.dropped += keep_from
            del self.segments[:keep_from]
        hist = self._hist_cache.get((interface, message))
        if hist is None:
            hist = self._hist_cache[(interface, message)] = (
                self._metrics.histogram(f"hop.{interface}.{message}")
            )
        hist.observe(delay)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_interface(self) -> Dict[str, List[HopSegment]]:
        """Segments grouped by link interface, recording order kept."""
        out: Dict[str, List[HopSegment]] = {}
        for seg in self.segments:
            out.setdefault(seg.interface, []).append(seg)
        return out

    def index(self) -> Dict[Tuple[str, str, str, float], HopSegment]:
        """``(message, src, dst, delivery_time) -> segment`` — the exact
        identity a ``"msg"`` trace entry carries, used to join hops onto
        span entries.  Later duplicates win, matching trace order."""
        return {
            (seg.message, seg.src, seg.dst, seg.end): seg
            for seg in self.segments
        }


def _link_sort_key(interface: str) -> Tuple[int, str]:
    try:
        return (FIGURE3_LINK_ORDER.index(interface), interface)
    except ValueError:
        return (len(FIGURE3_LINK_ORDER), interface)


def waterfall_rows(span: Any, hops: HopRecorder) -> List[Dict[str, Any]]:
    """Per-link totals for one span, as plain rows.

    Each of the span's ``"msg"`` trace entries is joined to its hop
    segment; rows come back in Figure-3 stack order with the summed
    link time, crossing count, and the share of the span's wall
    (sim-time) duration.
    """
    index = hops.index()
    totals: Dict[str, Dict[str, Any]] = {}
    for entry in span.entries:
        if entry.kind != "msg":
            continue
        seg = index.get((entry.message, entry.src, entry.dst, entry.time))
        if seg is None:
            continue
        row = totals.get(seg.interface)
        if row is None:
            row = totals[seg.interface] = {
                "interface": seg.interface, "time": 0.0,
                "hops": 0, "messages": [],
            }
        row["time"] += seg.duration
        row["hops"] += 1
        if seg.message not in row["messages"]:
            row["messages"].append(seg.message)
    span_end = span.end if span.end is not None else hops.sim.now
    span_wall = max(span_end - span.start, 0.0)
    rows = sorted(totals.values(),
                  key=lambda r: _link_sort_key(r["interface"]))
    for row in rows:
        row["share"] = row["time"] / span_wall if span_wall > 0 else 0.0
    return rows


def render_bar(share: float, width: int = 32, offset: float = 0.0) -> str:
    """Fixed-width ASCII bar: ``offset`` share of leading dots, a
    ``share``-wide ``#`` fill (at least one cell when nonzero), dots to
    the end.  The waterfall's bar primitive, reused by the incident
    timeline (:mod:`repro.obs.analyze`)."""
    offset = min(max(offset, 0.0), 1.0)
    share = min(max(share, 0.0), 1.0 - offset)
    lead = int(round(offset * width))
    filled = int(round(share * width))
    if share > 0:
        filled = max(filled, 1)
    filled = min(filled, width - lead)
    return "." * lead + "#" * filled + "." * (width - lead - filled)


def render_waterfall(span: Any, hops: HopRecorder, width: int = 32) -> str:
    """ASCII latency waterfall for one procedure span.

    One bar per Figure-3 link, scaled to the span's sim-time duration::

        registration  #4  0.914s
          Um    ######..........  0.360s  41%  (6 hops)
          Abis  ###.............  0.120s  13%  (6 hops)
          A     ##..............  0.080s   9%  (4 hops)
    """
    rows = waterfall_rows(span, hops)
    span_end = span.end if span.end is not None else hops.sim.now
    wall = max(span_end - span.start, 0.0)
    lines = [f"{span.name}  #{span.span_id}  {wall:.3f}s"]
    if not rows:
        lines.append("  (no link hops attributed)")
        return "\n".join(lines)
    name_w = max(len(r["interface"]) for r in rows)
    for row in rows:
        bar = render_bar(row["share"], width)
        lines.append(
            f"  {row['interface']:<{name_w}}  {bar}  "
            f"{row['time']:.3f}s  {row['share']:4.0%}  ({row['hops']} hops)"
        )
    return "\n".join(lines)
