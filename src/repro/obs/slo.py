"""Declarative SLO rules evaluated over time-series windows.

The paper's claims are budget claims — call setup under a latency
budget, *one* local trunk per tromboned call instead of two
international ones, no PDP-context leaks over a soak.  An
:class:`SloWatchdog` turns each claim into a rule string::

    p95_setup:       p95(calls.setup_delay) <= 0.5
    trunks_per_call: ratio(*.international_seizures, *.calls_connected) <= 1
    pdp_leak:        value(sgsn.pdp_contexts) <= 40
    liveness:        idle(msgs.iface.*) <= 10

and evaluates them against the buckets a
:class:`repro.obs.series.SeriesSampler` closes, entirely in sim time, so
two seeded runs produce the identical violation list.

Rule grammar: ``name: func(glob[, glob]) OP threshold`` where OP is one
of ``<= < >= > ==``; rules are separated by newlines or ``;`` and ``#``
starts a comment.  Globs are :mod:`fnmatch` patterns matched against
sorted metric names, so a rule aggregates whole metric families.

Functions by metric kind:

=============  =========  ====================================================
function       metric     meaning
=============  =========  ====================================================
total          counter    cumulative sum of matched counters
delta          counter    increase within the last closed window
rate           counter    ``delta / window width`` (per sim-second)
idle           counter    sim-seconds since any matched counter last moved
ratio          counter    ``total(a) / total(b)`` (0/0 = 0, n/0 = inf)
value          gauge      sum of current values at the window edge
peak           gauge      max window-edge value seen so far
count mean     histogram  cumulative pooled summary of matched histograms
max p50
p95 p99
win_*          histogram  same, but over the last window only
=============  =========  ====================================================

**Verdict semantics.**  Windowed functions (``delta``, ``rate``,
``idle``, ``win_*``) are checked at every closed bucket and a single
violating window fails the rule — that is the leak/staleness shape.
Cumulative functions are judged once, on the final state — that is the
latency-budget shape (early small-sample wobble does not fail a run
whose converged p95 meets the budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import _merge_histograms

#: Comparison operators, longest first so ``<=`` wins over ``<``.
_OPS = ("<=", ">=", "==", "<", ">")

_COUNTER_FUNCS = frozenset({"total", "delta", "rate", "idle", "ratio"})
_GAUGE_FUNCS = frozenset({"value", "peak"})
_HIST_KEYS = frozenset({"count", "mean", "max", "p50", "p95", "p99"})
#: Functions judged per window (one bad window fails the rule); the
#: rest are judged on the final cumulative state.
_WINDOWED_FUNCS = frozenset({"delta", "rate", "idle"})

#: Per rule, at most this many individual window violations are kept
#: (the count keeps running) — bounded memory over long soaks.
MAX_RECORDED_VIOLATIONS = 50


class SloError(ValueError):
    """A rule string that does not parse, or an unknown function."""


@dataclass(frozen=True)
class SloRule:
    """One parsed ``name: func(args) OP threshold`` rule."""

    name: str
    func: str
    args: Tuple[str, ...]
    op: str
    threshold: float
    source: str

    @property
    def windowed(self) -> bool:
        return self.func in _WINDOWED_FUNCS or self.func.startswith("win_")

    def holds(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.threshold
        if self.op == "<":
            return value < self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == ">":
            return value > self.threshold
        return value == self.threshold

    def __str__(self) -> str:
        return self.source


def parse_slo_rule(text: str) -> SloRule:
    """Parse one rule string; raises :class:`SloError` with the offending
    text on any grammar problem."""
    source = " ".join(text.split())
    head, sep, body = text.partition(":")
    if not sep or not head.strip():
        raise SloError(f"SLO rule needs a 'name:' prefix: {source!r}")
    name = head.strip()
    for op in _OPS:
        expr, sep, thr_text = body.partition(op)
        if sep:
            break
    else:
        raise SloError(f"SLO rule needs one of {', '.join(_OPS)}: {source!r}")
    expr = expr.strip()
    try:
        threshold = float(thr_text.strip())
    except ValueError:
        raise SloError(
            f"SLO threshold {thr_text.strip()!r} is not a number: {source!r}"
        ) from None
    if not expr.endswith(")") or "(" not in expr:
        raise SloError(f"SLO rule needs func(glob): {source!r}")
    func, _, arg_text = expr[:-1].partition("(")
    func = func.strip()
    args = tuple(a.strip() for a in arg_text.split(",") if a.strip())
    base = func[4:] if func.startswith("win_") else func
    if not (func in _COUNTER_FUNCS or func in _GAUGE_FUNCS
            or base in _HIST_KEYS):
        raise SloError(f"unknown SLO function {func!r}: {source!r}")
    want = 2 if func == "ratio" else 1
    if len(args) != want:
        raise SloError(
            f"SLO function {func!r} takes {want} pattern(s), "
            f"got {len(args)}: {source!r}"
        )
    return SloRule(name=name, func=func, args=args, op=op,
                   threshold=threshold, source=source)


def parse_slo_rules(text: str) -> List[SloRule]:
    """Parse a rule file / CLI string: rules separated by newlines or
    ``;``, blank lines and ``#`` comments ignored."""
    rules: List[SloRule] = []
    for line in text.replace(";", "\n").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            rules.append(parse_slo_rule(line))
    names = [r.name for r in rules]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SloError(f"duplicate SLO rule name(s): {', '.join(dupes)}")
    return rules


@dataclass
class SloResult:
    """Final verdict for one rule."""

    rule: SloRule
    value: float
    ok: bool
    #: Window violations: ``(t, value)`` pairs, oldest first (bounded).
    violations: List[Tuple[float, float]] = field(default_factory=list)
    #: Total violating windows, including ones past the recording bound.
    violation_count: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.source,
            "name": self.rule.name,
            "ok": self.ok,
            "value": self.value,
            "threshold": self.rule.threshold,
            "op": self.rule.op,
            "violations": [list(v) for v in self.violations],
            "violation_count": self.violation_count,
        }


class SloWatchdog:
    """Evaluates parsed rules against series buckets as they close.

    Hook it onto a sampler with :meth:`attach` (sets
    ``sampler.on_bucket``), or replay a finished serialised series with
    :func:`evaluate_series`.  All state advances only on bucket
    boundaries, so evaluation is deterministic for a seeded run.
    """

    def __init__(self, rules: List[SloRule], start: float = 0.0) -> None:
        self.rules = list(rules)
        self.start = start
        self.now = start
        self._prev_t = start
        # Cumulative state folded over closed buckets.
        self._counter_totals: Dict[str, int] = {}
        self._counter_last_move: Dict[str, float] = {}
        self._gauge_values: Dict[str, float] = {}
        self._gauge_peaks: Dict[str, float] = {}
        self._hist_cum: Dict[str, Dict[str, float]] = {}
        self._last_bucket: Optional[Dict[str, Any]] = None
        self._last_width = 0.0
        # rule name -> recorded window violations / running count.
        self._violations: Dict[str, List[Tuple[float, float]]] = {
            r.name: [] for r in self.rules
        }
        self._violation_counts: Dict[str, int] = {
            r.name: 0 for r in self.rules
        }

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def attach(self, sampler: Any) -> "SloWatchdog":
        """Become *sampler*'s bucket hook; also aligns the idle clock to
        the sampler's start instant."""
        self.start = self.now = self._prev_t = sampler.started_at
        sampler.on_bucket = self.observe_bucket
        return self

    def observe_bucket(self, sampler: Any, bucket: Dict[str, Any]) -> None:
        self.push(bucket)

    def push(self, bucket: Dict[str, Any]) -> None:
        """Fold one closed bucket into the state and check the windowed
        rules against it."""
        t = bucket["t"]
        self._last_width = max(t - self._prev_t, 0.0)
        self._prev_t = t
        self.now = t
        for name, delta in bucket["counters"].items():
            self._counter_totals[name] = (
                self._counter_totals.get(name, 0) + delta
            )
            if delta:
                self._counter_last_move[name] = t
        for name, g in bucket["gauges"].items():
            self._gauge_values[name] = g["value"]
            peak = self._gauge_peaks.get(name, 0.0)
            if g["value"] > peak:
                self._gauge_peaks[name] = g["value"]
        for name, summary in bucket["histograms"].items():
            prev = self._hist_cum.get(name)
            if prev is None:
                self._hist_cum[name] = dict(summary)
            else:
                self._hist_cum[name] = _merge_histograms([prev, summary])
        self._last_bucket = bucket
        for rule in self.rules:
            if not rule.windowed:
                continue
            value = self._evaluate(rule)
            if not rule.holds(value):
                self._violation_counts[rule.name] += 1
                recorded = self._violations[rule.name]
                if len(recorded) < MAX_RECORDED_VIOLATIONS:
                    recorded.append((t, value))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _match(self, names: Any, pattern: str) -> List[str]:
        return [n for n in sorted(names) if fnmatchcase(n, pattern)]

    def _counter_total(self, pattern: str) -> int:
        return sum(
            self._counter_totals[n]
            for n in self._match(self._counter_totals, pattern)
        )

    def _hist_value(self, key: str, pattern: str,
                    pool: Dict[str, Dict[str, float]]) -> float:
        matched = [pool[n] for n in self._match(pool, pattern)]
        if not matched:
            return 0.0
        merged = matched[0] if len(matched) == 1 else _merge_histograms(matched)
        return float(merged[key])

    def _evaluate(self, rule: SloRule) -> float:
        func = rule.func
        pattern = rule.args[0]
        if func == "total":
            return float(self._counter_total(pattern))
        if func == "ratio":
            num = float(self._counter_total(pattern))
            den = float(self._counter_total(rule.args[1]))
            if den == 0.0:
                return 0.0 if num == 0.0 else math.inf
            return num / den
        if func == "delta":
            bucket = self._last_bucket
            if bucket is None:
                return 0.0
            counters = bucket["counters"]
            return float(sum(
                counters[n] for n in self._match(counters, pattern)
            ))
        if func == "rate":
            bucket = self._last_bucket
            if bucket is None or self._last_width <= 0.0:
                return 0.0
            counters = bucket["counters"]
            delta = sum(counters[n] for n in self._match(counters, pattern))
            return delta / self._last_width
        if func == "idle":
            matched = self._match(self._counter_last_move, pattern)
            if not matched:
                return self.now - self.start
            return self.now - max(self._counter_last_move[n] for n in matched)
        if func == "value":
            return float(sum(
                self._gauge_values[n]
                for n in self._match(self._gauge_values, pattern)
            ))
        if func == "peak":
            matched = self._match(self._gauge_peaks, pattern)
            if not matched:
                return 0.0
            return float(max(self._gauge_peaks[n] for n in matched))
        if func.startswith("win_"):
            bucket = self._last_bucket
            pool = bucket["histograms"] if bucket is not None else {}
            return self._hist_value(func[4:], pattern, pool)
        return self._hist_value(func, pattern, self._hist_cum)

    def current_value(self, rule: SloRule) -> float:
        """Evaluate *rule* against the state folded so far — the live
        reading behind the serve-mode alert lifecycle, where every rule
        (windowed or cumulative) is re-judged at each closed bucket."""
        return self._evaluate(rule)

    def finalize(self) -> List[SloResult]:
        """Final verdict per rule, in rule order.  Windowed rules fail on
        any recorded window violation; cumulative rules fail on the
        final state."""
        results: List[SloResult] = []
        for rule in self.rules:
            value = self._evaluate(rule)
            count = self._violation_counts[rule.name]
            ok = count == 0 if rule.windowed else rule.holds(value)
            results.append(SloResult(
                rule=rule,
                value=value,
                ok=ok,
                violations=list(self._violations[rule.name]),
                violation_count=count,
            ))
        return results


def evaluate_series(rules: List[SloRule],
                    series: Dict[str, Any]) -> List[SloResult]:
    """Replay a serialised series (single-run or merged) through a fresh
    watchdog and return the final verdicts."""
    dog = SloWatchdog(rules, start=float(series.get("start", 0.0)))
    for bucket in series["buckets"]:
        dog.push(bucket)
    return dog.finalize()


def _fmt(value: float) -> str:
    if value != value or math.isinf(value):  # NaN / inf
        return str(value)
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.6g}"


def render_slo_report(results: List[SloResult], title: str = "SLO") -> str:
    """Human-readable verdict table; stable for a seeded run."""
    failed = sum(1 for r in results if not r.ok)
    lines = [
        f"{title} report: {len(results)} rule(s), "
        + (f"{failed} FAILED" if failed else "all passed")
    ]
    for r in results:
        mark = "PASS" if r.ok else "FAIL"
        lines.append(
            f"  {mark}  {r.rule.name}: {r.rule.func}"
            f"({', '.join(r.rule.args)}) {r.rule.op} "
            f"{_fmt(r.rule.threshold)}   value={_fmt(r.value)}"
        )
        if r.violation_count:
            first_t, first_v = r.violations[0]
            lines.append(
                f"        {r.violation_count} violating window(s), "
                f"first at t={_fmt(first_t)} (value={_fmt(first_v)})"
            )
    return "\n".join(lines)
