"""End-to-end observability for simulation runs.

Layers on the :mod:`repro.sim` primitives (``TraceRecorder``,
``MetricsRegistry``):

* :mod:`repro.obs.spans` — correlated per-procedure spans keyed by
  IMSI/call-ref, attached to every trace entry;
* :mod:`repro.obs.profiler` — opt-in per-event-type kernel profiling;
* :mod:`repro.obs.heartbeat` — periodic progress lines for soak runs;
* :mod:`repro.obs.export` — JSONL traces, span trees, snapshot merging;
* :mod:`repro.obs.prom` — Prometheus text-format metric snapshots;
* :mod:`repro.obs.series` — sim-time-bucketed time series with bounded
  memory and deterministic cross-worker merging;
* :mod:`repro.obs.hops` — per-link latency attribution and per-procedure
  latency waterfalls over the Figure-3 protocol stack;
* :mod:`repro.obs.timeline` — Chrome-trace-event/Perfetto export of
  spans and link hops;
* :mod:`repro.obs.slo` — declarative SLO rules evaluated over series
  windows, with deterministic violation collection;
* :mod:`repro.obs.recorder` — always-on bounded flight recorder and
  incident bundle capture;
* :mod:`repro.obs.analyze` — ``python -m repro analyze``: post-mortem
  blast-radius reports over incident bundles;
* :mod:`repro.obs.session` — the ``python -m repro`` flag plumbing.

Nothing here imports :mod:`repro.sim.kernel` (the kernel imports the
span tracker and profiler), so the dependency arrow stays one-way.
"""

from repro.obs.export import (
    export_trace_jsonl,
    find_snapshots,
    is_incident,
    is_snapshot,
    merge_snapshots,
    render_span_tree,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.hops import HopRecorder, HopSegment, render_bar, render_waterfall
from repro.obs.profiler import KernelProfiler
from repro.obs.prom import render_prometheus, sanitize_name
from repro.obs.recorder import (
    FlightRecorder,
    find_incidents,
    merge_incidents,
    plain_value,
)
from repro.obs.series import (
    SeriesSampler,
    find_series,
    is_series,
    merge_series,
)
from repro.obs.session import ObsSession
from repro.obs.slo import (
    SloError,
    SloRule,
    SloWatchdog,
    evaluate_series,
    parse_slo_rules,
    render_slo_report,
)
from repro.obs.spans import CORRELATION_FIELDS, Span, SpanTracker
from repro.obs.timeline import export_runs_timeline, export_timeline

__all__ = [
    "CORRELATION_FIELDS",
    "FlightRecorder",
    "Heartbeat",
    "HopRecorder",
    "HopSegment",
    "KernelProfiler",
    "ObsSession",
    "SeriesSampler",
    "SloError",
    "SloRule",
    "SloWatchdog",
    "Span",
    "SpanTracker",
    "evaluate_series",
    "export_runs_timeline",
    "export_timeline",
    "export_trace_jsonl",
    "find_incidents",
    "find_series",
    "find_snapshots",
    "is_incident",
    "is_series",
    "is_snapshot",
    "merge_incidents",
    "merge_series",
    "merge_snapshots",
    "parse_slo_rules",
    "plain_value",
    "render_bar",
    "render_prometheus",
    "render_slo_report",
    "render_span_tree",
    "render_waterfall",
    "sanitize_name",
]
