"""End-to-end observability for simulation runs.

Layers on the :mod:`repro.sim` primitives (``TraceRecorder``,
``MetricsRegistry``):

* :mod:`repro.obs.spans` — correlated per-procedure spans keyed by
  IMSI/call-ref, attached to every trace entry;
* :mod:`repro.obs.profiler` — opt-in per-event-type kernel profiling;
* :mod:`repro.obs.heartbeat` — periodic progress lines for soak runs;
* :mod:`repro.obs.export` — JSONL traces, span trees, snapshot merging;
* :mod:`repro.obs.prom` — Prometheus text-format metric snapshots;
* :mod:`repro.obs.session` — the ``python -m repro`` flag plumbing.

Nothing here imports :mod:`repro.sim.kernel` (the kernel imports the
span tracker and profiler), so the dependency arrow stays one-way.
"""

from repro.obs.export import (
    export_trace_jsonl,
    find_snapshots,
    is_snapshot,
    merge_snapshots,
    render_span_tree,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.profiler import KernelProfiler
from repro.obs.prom import render_prometheus, sanitize_name
from repro.obs.session import ObsSession
from repro.obs.spans import CORRELATION_FIELDS, Span, SpanTracker

__all__ = [
    "CORRELATION_FIELDS",
    "Heartbeat",
    "KernelProfiler",
    "ObsSession",
    "Span",
    "SpanTracker",
    "export_trace_jsonl",
    "find_snapshots",
    "is_snapshot",
    "merge_snapshots",
    "render_prometheus",
    "render_span_tree",
    "sanitize_name",
]
