"""``python -m repro analyze`` — post-mortem blast-radius analysis.

Consumes the incident bundles the always-on flight recorder
(:mod:`repro.obs.recorder`) captured around faults, alert trips and
nonzero exits, and joins the three timelines a bundle carries — fault
events, alert transitions and call spans — on simulated time and the
span correlation keys (IMSI, call ref, link label).  The output is a
*blast-radius report* per incident:

* the fault intervals reconstructed from the ``FAULTS`` trace notes
  (down/up, crash/restart, impair on/off pairs);
* the alert lifecycle transitions that fell inside the window;
* an ASCII incident timeline (faults, alerts, affected calls) drawn
  with the same bar primitive as the PR-4 latency waterfalls;
* a per-fault affected-call table classifying every call whose span
  overlapped a fault interval: ``completed`` / ``blocked`` /
  ``pstn-fallback`` / ``retried``, with setup-delay deltas against the
  pre-fault baseline of the same bundle;
* the recovery (MTTR) histograms — every ``fault.mttr.*`` family in the
  bundle's metrics snapshot.

Everything is computed from the bundle alone: no simulator, no RNG, no
repo state, so analysis of a checked-in bundle is reproducible anywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.export import is_incident
from repro.obs.hops import render_bar
from repro.obs.spans import CORRELATION_FIELDS

__all__ = [
    "AnalyzeError",
    "analyze_bundle",
    "fault_intervals",
    "load_bundles",
    "render_report",
    "main",
]

#: Call-span close statuses that count as the call failing outright.
BAD_STATUSES = frozenset({"rejected", "dropped", "failed", "aborted"})

#: FAULTS notes opening a fault interval -> (element kind, info field).
_OPENERS = {
    "FAULT_LINK_DOWN": ("link", "link"),
    "FAULT_NODE_CRASH": ("node", "name"),
    "FAULT_IMPAIR_ON": ("impair", "link"),
}

#: FAULTS notes closing a fault interval -> (element kind, info field).
_CLOSERS = {
    "FAULT_LINK_UP": ("link", "link"),
    "FAULT_NODE_RESTART": ("node", "name"),
    "FAULT_IMPAIR_OFF": ("impair", "link"),
}

_TIMELINE_WIDTH = 40


class AnalyzeError(Exception):
    """A bundle path could not be loaded or is not an incident bundle."""


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_bundles(paths: List[str]) -> List[Dict[str, Any]]:
    """Load incident bundles from files and/or directories (directories
    contribute their ``incident-*.json`` files in name order, which is
    capture order by construction)."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            names = sorted(
                n for n in os.listdir(path)
                if n.startswith("incident-") and n.endswith(".json")
            )
            if not names:
                raise AnalyzeError(f"no incident-*.json bundles in {path!r}")
            files.extend(os.path.join(path, n) for n in names)
        elif os.path.exists(path):
            files.append(path)
        else:
            raise AnalyzeError(f"no such bundle file or directory: {path!r}")
    bundles: List[Dict[str, Any]] = []
    for file in files:
        try:
            with open(file, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalyzeError(f"cannot load bundle {file!r}: {exc}") from exc
        if not is_incident(doc):
            raise AnalyzeError(
                f"{file!r} is not an incident bundle (missing "
                "incident/triggers/window/entries)"
            )
        bundles.append(doc)
    return bundles


# ----------------------------------------------------------------------
# Fault intervals
# ----------------------------------------------------------------------
def fault_intervals(bundle: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Reconstruct fault intervals from the bundle's ``FAULTS`` notes.

    Down/up (crash/restart, impair on/off) pairs are matched per
    element label; a recovery with no recorded onset started before the
    window (interval opens at ``window.from``), an onset with no
    recovery is still open at the window's end (``open: true``)."""
    window = bundle["window"]
    intervals: List[Dict[str, Any]] = []
    open_by: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for entry in bundle["entries"]:
        if entry["kind"] != "note" or entry["src"] != "FAULTS":
            continue
        message = entry["message"]
        info = entry.get("info") or {}
        if message in _OPENERS:
            kind, field = _OPENERS[message]
            label = str(info.get(field, "?"))
            interval = {
                "kind": kind,
                "label": label,
                "start": float(entry["t"]),
                "end": None,
                "open": True,
            }
            intervals.append(interval)
            open_by.setdefault((kind, label), []).append(interval)
        elif message in _CLOSERS:
            kind, field = _CLOSERS[message]
            label = str(info.get(field, "?"))
            pending = open_by.get((kind, label))
            if pending:
                interval = pending.pop()
                interval["end"] = float(entry["t"])
                interval["open"] = False
            else:
                intervals.append({
                    "kind": kind,
                    "label": label,
                    "start": float(window["from"]),
                    "end": float(entry["t"]),
                    "open": False,
                })
    for interval in intervals:
        if interval["end"] is None:
            interval["end"] = float(window["until"])
    intervals.sort(key=lambda iv: (iv["start"], iv["label"]))
    return intervals


# ----------------------------------------------------------------------
# Call table
# ----------------------------------------------------------------------
def _call_spans(bundle: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every ``call`` span the bundle knows about, deduplicated by
    ``(span_id, start)`` with closures winning over the open-span
    snapshot (a span may appear in both when it closed inside the post
    window)."""
    calls: Dict[Tuple[int, float], Dict[str, Any]] = {}
    for span in bundle["span_closures"]:
        if span["name"] == "call":
            calls[(int(span["span"]), float(span["start"]))] = span
    for span in bundle["open_spans"]:
        if span["name"] == "call":
            calls.setdefault((int(span["span"]), float(span["start"])), span)
    return [calls[key] for key in sorted(calls)]


def _setup_delays(bundle: Dict[str, Any]) -> Dict[int, float]:
    """Parent call span id -> duration of its closed ``setup`` child."""
    delays: Dict[int, float] = {}
    for span in list(bundle["span_closures"]) + list(bundle["open_spans"]):
        if (span["name"] == "setup" and span.get("parent") is not None
                and span.get("end") is not None):
            delays[int(span["parent"])] = (
                float(span["end"]) - float(span["start"])
            )
    return delays


def _entries_for_call(
    call: Dict[str, Any],
    entries: List[Dict[str, Any]],
    until: float,
) -> List[Dict[str, Any]]:
    """Window entries correlated to *call* by any span key, restricted
    to the call's own interval (string comparison: bundle info values
    were stringified at capture and span keys are normalised strings)."""
    keys = call.get("keys") or {}
    start = float(call["start"])
    end = float(call["end"]) if call.get("end") is not None else until
    matched: List[Dict[str, Any]] = []
    for entry in entries:
        t = float(entry["t"])
        if t < start or t > end:
            continue
        info = entry.get("info") or {}
        for field in CORRELATION_FIELDS:
            value = info.get(field)
            if value is not None and keys.get(field) == str(value):
                matched.append(entry)
                break
    return matched


def _classify(
    call: Dict[str, Any], matched: List[Dict[str, Any]]
) -> Tuple[str, str]:
    """(mode, evidence) for one call: how the fault degraded it.

    Precedence: an explicit PSTN reroute beats a failure verdict beats
    retry evidence beats a clean completion."""
    notes = {e["message"] for e in matched if e["kind"] == "note"}
    if "PSTN_FALLBACK" in notes:
        return "pstn-fallback", "PSTN_FALLBACK note"
    if "ADMISSION_TIMEOUT" in notes:
        return "blocked", "ADMISSION_TIMEOUT note"
    status = call.get("status")
    if status in BAD_STATUSES:
        return "blocked", f"span status {status!r}"
    seen: Dict[Tuple[str, str, str], int] = {}
    for entry in matched:
        if entry["kind"] != "msg":
            continue
        triple = (entry["message"], entry["src"], entry["dst"])
        seen[triple] = seen.get(triple, 0) + 1
    repeats = [t for t, n in seen.items() if n > 1]
    if repeats:
        name = max(repeats, key=lambda t: seen[t])
        return "retried", f"{name[0]} x{seen[name]} {name[1]}->{name[2]}"
    if status == "ok":
        return "completed", "span status 'ok'"
    return "open", "span still open at capture"


def _overlaps(
    start: float, end: float, intervals: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    return [
        iv for iv in intervals
        if start <= float(iv["end"]) and end >= float(iv["start"])
    ]


# ----------------------------------------------------------------------
# Per-bundle analysis
# ----------------------------------------------------------------------
def analyze_bundle(bundle: Dict[str, Any]) -> Dict[str, Any]:
    """Join faults, alerts and calls into one plain-data analysis dict
    (the :func:`render_report` input; also handy for tests)."""
    window = bundle["window"]
    until = float(window["until"])
    faults = fault_intervals(bundle)
    entries = list(bundle["entries"])
    setup_delays = _setup_delays(bundle)

    first_fault = min(
        (float(iv["start"]) for iv in faults), default=None
    )
    calls: List[Dict[str, Any]] = []
    baseline_samples: List[float] = []
    for span in _call_spans(bundle):
        start = float(span["start"])
        end = float(span["end"]) if span.get("end") is not None else until
        matched = _entries_for_call(span, entries, until)
        mode, evidence = _classify(span, matched)
        hit = _overlaps(start, end, faults)
        setup = setup_delays.get(int(span["span"]))
        if (setup is not None and first_fault is not None
                and end < first_fault):
            baseline_samples.append(setup)
        calls.append({
            "span": int(span["span"]),
            "keys": dict(span.get("keys") or {}),
            "attrs": dict(span.get("attrs") or {}),
            "start": start,
            "end": end,
            "open": span.get("end") is None,
            "mode": mode,
            "evidence": evidence,
            "faults": [iv["label"] for iv in hit],
            "affected": bool(hit),
            "setup_delay": setup,
        })
    baseline = (
        sum(baseline_samples) / len(baseline_samples)
        if baseline_samples else None
    )
    for call in calls:
        delay = call["setup_delay"]
        call["setup_delta"] = (
            delay - baseline
            if delay is not None and baseline is not None else None
        )

    metrics = bundle.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    mttr = {
        name: summary
        for name, summary in sorted(histograms.items())
        if name.startswith("fault.mttr.")
    }
    return {
        "incident": bundle["incident"],
        "run": bundle.get("run", "?"),
        "window": dict(window),
        "triggers": list(bundle["triggers"]),
        "faults": faults,
        "alerts": list(bundle.get("alerts") or []),
        "calls": calls,
        "affected": [c for c in calls if c["affected"]],
        "setup_baseline": baseline,
        "baseline_calls": len(baseline_samples),
        "mttr": mttr,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _call_label(call: Dict[str, Any]) -> str:
    keys = call["keys"]
    for field in ("imsi", "call_ref", "alias", "ti"):
        if field in keys:
            return f"{field}={keys[field]}"
    return f"span#{call['span']}"


def _alert_intervals(
    alerts: List[Dict[str, Any]], until: float
) -> List[Dict[str, Any]]:
    """One interval per alert name, from its first departure from ``ok``
    to its resolution (or the window's end while still firing)."""
    spans: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for transition in alerts:
        name = str(transition.get("alert", "?"))
        t = float(transition["t"])
        to = transition.get("to")
        if name not in spans:
            spans[name] = {"label": name, "start": t, "end": None}
            order.append(name)
        if to in ("resolved", "ok"):
            spans[name]["end"] = t
        elif spans[name]["end"] is not None:
            # Re-trip after a resolve: stretch the interval.
            spans[name]["end"] = None
    out = []
    for name in order:
        interval = spans[name]
        if interval["end"] is None:
            interval["end"] = until
        out.append(interval)
    return out


def _timeline(analysis: Dict[str, Any], width: int = _TIMELINE_WIDTH) -> List[str]:
    window = analysis["window"]
    t0, t1 = float(window["from"]), float(window["until"])
    extent = max(t1 - t0, 1e-9)

    rows: List[Tuple[str, float, float]] = []
    for fault in analysis["faults"]:
        rows.append((
            f"fault {fault['kind']} {fault['label']}",
            float(fault["start"]), float(fault["end"]),
        ))
    for alert in _alert_intervals(analysis["alerts"], t1):
        rows.append((
            f"alert {alert['label']}",
            float(alert["start"]), float(alert["end"]),
        ))
    for call in analysis["affected"]:
        rows.append((
            f"call  {_call_label(call)} [{call['mode']}]",
            call["start"], call["end"],
        ))
    if not rows:
        return ["  (nothing to draw)"]
    name_w = max(len(name) for name, _, _ in rows)
    lines = []
    for name, start, end in rows:
        offset = (max(start, t0) - t0) / extent
        share = (min(end, t1) - max(start, t0)) / extent
        bar = render_bar(max(share, 0.0), width, offset=offset)
        lines.append(
            f"  {name:<{name_w}}  {bar}  {start:7.3f} .. {end:7.3f} s"
        )
    return lines


def render_report(analysis: Dict[str, Any]) -> str:
    """Human-readable blast-radius report for one analyzed bundle."""
    window = analysis["window"]
    t0, t1 = float(window["from"]), float(window["until"])
    first = analysis["triggers"][0] if analysis["triggers"] else None
    trigger = (
        f"{first['reason']} @ t={float(first['t']):.3f}" if first else "?"
    )
    lines = [
        "=" * 66,
        f"incident #{analysis['incident']}  [run {analysis['run']}]  "
        f"window {t0:.3f} .. {t1:.3f} s",
        f"trigger: {trigger}  "
        f"(+{len(analysis['triggers']) - 1} more)"
        if len(analysis["triggers"]) > 1 else f"trigger: {trigger}",
        "=" * 66,
        "",
        "faults",
    ]
    if analysis["faults"]:
        for fault in analysis["faults"]:
            start, end = float(fault["start"]), float(fault["end"])
            tail = "  (unrecovered at capture)" if fault["open"] else ""
            lines.append(
                f"  {fault['kind']:<6} {fault['label']:<14} "
                f"{start:7.3f} .. {end:7.3f} s  "
                f"({end - start:.3f} s){tail}"
            )
    else:
        lines.append("  (no fault events in window)")
    lines += ["", "alerts"]
    if analysis["alerts"]:
        for transition in analysis["alerts"]:
            lines.append(
                f"  t={float(transition['t']):7.3f}  "
                f"{transition.get('alert', '?')}: "
                f"{transition.get('from', '?')} -> {transition.get('to', '?')}"
            )
    else:
        lines.append("  (no alert transitions in window)")
    lines += ["", f"timeline  ({t0:.3f} .. {t1:.3f} s)"]
    lines += _timeline(analysis)

    affected = analysis["affected"]
    by_mode: Dict[str, int] = {}
    for call in affected:
        by_mode[call["mode"]] = by_mode.get(call["mode"], 0) + 1
    mode_text = ", ".join(
        f"{n} {mode}" for mode, n in sorted(by_mode.items())
    ) or "none"
    lines += [
        "",
        "blast radius",
        f"  affected calls: {len(affected)} ({mode_text}); "
        f"{len(analysis['calls'])} call(s) in window",
    ]
    baseline = analysis["setup_baseline"]
    if baseline is not None:
        lines.append(
            f"  setup-delay baseline (pre-fault): {baseline * 1000:.1f} ms "
            f"over {analysis['baseline_calls']} call(s)"
        )
    for call in affected:
        direction = call["attrs"].get("direction", "?")
        delay = call["setup_delay"]
        delta = call["setup_delta"]
        setup_text = ""
        if delay is not None:
            setup_text = f"  setup {delay * 1000:.1f} ms"
            if delta is not None:
                setup_text += f" ({delta * 1000:+.1f} ms vs baseline)"
        lines.append(
            f"  call#{call['span']:<4} {_call_label(call):<28} "
            f"{direction:<3} {call['start']:7.3f} .. {call['end']:7.3f} s  "
            f"{call['mode']:<13} via {', '.join(call['faults'])}"
            f"  [{call['evidence']}]{setup_text}"
        )
    lines += ["", "recovery (MTTR)"]
    if analysis["mttr"]:
        for name, summary in analysis["mttr"].items():
            count = int(summary.get("count", 0))
            if count:
                lines.append(
                    f"  {name}  count={count}  "
                    f"mean={float(summary.get('mean', 0.0)):.3f}s  "
                    f"max={float(summary.get('max', 0.0)):.3f}s"
                )
            else:
                lines.append(f"  {name}  count=0  (no recovery completed)")
    else:
        lines.append("  (no fault.mttr.* histograms in bundle)")
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="post-mortem blast-radius analysis of flight-"
                    "recorder incident bundles (see --incident-dir on "
                    "the run/serve commands)",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="BUNDLE",
        help="incident bundle file(s) or directory(ies) of "
             "incident-*.json bundles",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the analysis as JSON instead of the text report",
    )
    return parser


def main(
    argv: Optional[List[str]] = None,
    echo: Callable[[str], None] = print,
) -> int:
    args = make_parser().parse_args(argv)
    try:
        bundles = load_bundles(args.paths)
    except AnalyzeError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 1
    analyses = [analyze_bundle(bundle) for bundle in bundles]
    if args.json:
        echo(json.dumps(analyses, indent=1, sort_keys=True))
    else:
        for analysis in analyses:
            echo(render_report(analysis))
        echo(
            f"analyzed {len(analyses)} incident bundle(s); "
            f"{sum(len(a['affected']) for a in analyses)} affected "
            f"call(s) total"
        )
    return 0 if analyses else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
