"""Opt-in kernel profiler: per-event-type wall time and counts.

The PR-1 kernel optimisations were guided by ad-hoc timing; this makes
the measurement a first-class, repeatable artefact.  When enabled on a
:class:`~repro.sim.kernel.Simulator` the run loop switches to an
instrumented variant that wraps every callback in two
``perf_counter()`` reads, keyed by the callback's qualified name — so a
soak run answers "where does the time go?" with a table like::

    event type                                   count   total ms    avg us
    Link._deliver                               120042     812.44       6.8
    MobileStation._talk                          50021     401.02       8.0

With the profiler off the simulator uses the untouched fast loop: zero
instructions are added to the hot path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple


class KernelProfiler:
    """Accumulates ``(count, total_seconds)`` per event-callback type."""

    __slots__ = ("stats", "started_at", "stopped_at")

    def __init__(self) -> None:
        self.stats: Dict[str, List[float]] = {}
        self.started_at = time.perf_counter()
        self.stopped_at: float = 0.0

    # The instrumented loop calls this once per executed event.
    def record(self, key: str, elapsed: float) -> None:
        slot = self.stats.get(key)
        if slot is None:
            slot = self.stats[key] = [0, 0.0]
        slot[0] += 1
        slot[1] += elapsed

    @property
    def total_events(self) -> int:
        return sum(int(slot[0]) for slot in self.stats.values())

    @property
    def total_seconds(self) -> float:
        return sum(slot[1] for slot in self.stats.values())

    def top(self, n: int = 15) -> List[Tuple[str, int, float]]:
        """``(key, count, total_seconds)`` rows, heaviest first; ties
        break on the key so the report is deterministic."""
        rows = [
            (key, int(slot[0]), slot[1]) for key, slot in self.stats.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:n]

    def report(self, n: int = 15, title: str = "kernel profile") -> str:
        """Human-readable top-N table."""
        rows = self.top(n)
        total_s = self.total_seconds
        lines = [
            f"=== {title}: {self.total_events} events, "
            f"{total_s * 1000:.1f} ms in callbacks ===",
            f"{'event type':<44} {'count':>9} {'total ms':>10} {'avg us':>8} {'%':>6}",
        ]
        for key, count, seconds in rows:
            share = 100.0 * seconds / total_s if total_s else 0.0
            avg_us = 1e6 * seconds / count if count else 0.0
            lines.append(
                f"{key[:44]:<44} {count:>9} {seconds * 1000:>10.2f} "
                f"{avg_us:>8.1f} {share:>5.1f}%"
            )
        if len(self.stats) > n:
            lines.append(f"... and {len(self.stats) - n} more event types")
        return "\n".join(lines)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-data dump (JSON-friendly), keyed by event type."""
        return {
            key: {"count": int(slot[0]), "total_s": slot[1]}
            for key, slot in sorted(self.stats.items())
        }
