"""Glue for the command-line surface: one object per observed run.

``python -m repro`` scenarios build one or more simulators; an
:class:`ObsSession` carries the ``--trace-out``/``--metrics-out``/
``--profile``/``--heartbeat``/``--series-out``/``--timeline-out``/
``--waterfall``/``--slo`` choices, attaches them to each simulator as it
is built, and writes every artefact at the end.  Kept in the library
(not ``__main__``) so tests and notebooks can drive the same plumbing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.export import export_trace_jsonl, merge_snapshots
from repro.obs.heartbeat import Heartbeat
from repro.obs.hops import HopRecorder, render_waterfall
from repro.obs.prom import render_prometheus
from repro.obs.recorder import FlightRecorder, merge_incidents
from repro.obs.series import SeriesSampler, merge_series
from repro.obs.slo import (
    SloRule,
    SloWatchdog,
    evaluate_series,
    parse_slo_rules,
    render_slo_report,
)
from repro.obs.timeline import export_runs_timeline

#: At most this many root-span waterfalls are printed per run.
MAX_WATERFALLS = 12


class ObsSession:
    """Observability options applied across a scenario's simulators."""

    def __init__(
        self,
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
        profile: bool = False,
        heartbeat: Optional[float] = None,
        series_out: Optional[str] = None,
        series_interval: float = 1.0,
        timeline_out: Optional[str] = None,
        waterfall: bool = False,
        slo: Optional[str] = None,
        force_series: bool = False,
        incident_dir: Optional[str] = None,
    ) -> None:
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.profile = profile
        self.heartbeat = heartbeat
        self.series_out = series_out
        self.series_interval = series_interval
        self.timeline_out = timeline_out
        self.waterfall = waterfall
        #: Arm a series sampler even without --series-out/--slo; serve
        #: mode needs the bucket cadence for its alert lifecycle.
        self.force_series = force_series
        #: Directory incident bundles are written to at finish (the
        #: flight recorder itself is always on — capture is free until
        #: something triggers).
        self.incident_dir = incident_dir
        #: Appended to each heartbeat line (serve mode: workload stats).
        self.heartbeat_extra: Optional[Callable[[], str]] = None
        #: Parsed SLO rules (grammar errors surface before any sim runs).
        self.slo_rules: List[SloRule] = parse_slo_rules(slo) if slo else []
        #: Exit status for the CLI: 1 once any SLO rule fails.
        self.exit_code = 0
        self._sims: List[Tuple[str, Any]] = []
        self._heartbeats: List[Heartbeat] = []
        self._samplers: List[Tuple[str, SeriesSampler]] = []
        self._watchdogs: List[Tuple[str, SloWatchdog]] = []
        self._recorders: List[Tuple[str, FlightRecorder]] = []
        #: Extra metric snapshots merged into --metrics-out (sweeps).
        self.extra_snapshots: List[Dict[str, Any]] = []
        #: Extra serialised series merged into --series-out (sweeps).
        self.extra_series: List[Dict[str, Any]] = []
        #: Extra incident bundles merged into --incident-dir (sweeps).
        self.extra_incidents: List[Dict[str, Any]] = []

    @property
    def active(self) -> bool:
        return bool(
            self.trace_out or self.metrics_out or self.profile
            or self.heartbeat or self.series_out or self.timeline_out
            or self.waterfall or self.slo_rules or self.incident_dir
        )

    @property
    def _wants_series(self) -> bool:
        return bool(self.series_out or self.slo_rules or self.force_series)

    @property
    def _wants_hops(self) -> bool:
        return bool(self.timeline_out or self.waterfall)

    def watch(self, sim: Any, run: str = "main") -> None:
        """Register *sim* (idempotent per run name) and arm the
        requested instrumentation on it."""
        if any(existing is sim for _, existing in self._sims):
            return
        self._sims.append((run, sim))
        # The flight recorder is always on: bounded rings, O(1) appends,
        # no events scheduled — capture costs nothing until triggered.
        recorder = FlightRecorder(sim, run=run).arm()
        self._recorders.append((run, recorder))
        if self.profile:
            sim.enable_profiler()
        if self.heartbeat:
            self._heartbeats.append(
                Heartbeat(
                    sim, period=self.heartbeat, label=run,
                    extra=self.heartbeat_extra,
                ).start()
            )
        if self._wants_series:
            sampler = SeriesSampler(sim, interval=self.series_interval)
            if self.slo_rules:
                dog = SloWatchdog(self.slo_rules).attach(sampler)
                self._watchdogs.append((run, dog))
            recorder.attach_sampler(sampler)
            sampler.start()
            self._samplers.append((run, sampler))
        if self._wants_hops and sim.hops is None:
            sim.hops = HopRecorder(sim)

    def sampler_for(self, sim: Any) -> Optional[SeriesSampler]:
        """The series sampler armed on *sim* by :meth:`watch`, if any —
        serve mode chains its alert manager onto its bucket hook."""
        for _, sampler in self._samplers:
            if sampler.sim is sim:
                return sampler
        return None

    def recorder_for(self, sim: Any) -> Optional[FlightRecorder]:
        """The flight recorder :meth:`watch` armed on *sim* — serve mode
        wires it to the alert manager and the run loop."""
        for _, recorder in self._recorders:
            if recorder.sim is sim:
                return recorder
        return None

    def finish(self, echo: Callable[[str], None] = print) -> int:
        """Stop instrumentation, write every requested artefact, print
        profiler/waterfall/SLO reports; returns the exit code (nonzero
        when an SLO rule failed)."""
        for hb in self._heartbeats:
            hb.stop()
        self._heartbeats.clear()
        for _, sampler in self._samplers:
            sampler.stop(flush=True)
        if self.trace_out:
            with open(self.trace_out, "w", encoding="utf-8") as fh:
                for run, sim in self._sims:
                    export_trace_jsonl(sim, fh, run=run)
            echo(f"trace written to {self.trace_out}")
        if self.metrics_out:
            snapshots = [sim.metrics.snapshot() for _, sim in self._sims]
            snapshots.extend(self.extra_snapshots)
            if len(snapshots) == 1:
                text = render_prometheus(snapshots[0])
            else:
                text = render_prometheus(merge_snapshots(snapshots))
            with open(self.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            echo(f"metrics snapshot written to {self.metrics_out}")
        if self.series_out:
            series = [sampler.to_dict() for _, sampler in self._samplers]
            series.extend(self.extra_series)
            doc = series[0] if len(series) == 1 else merge_series(series)
            with open(self.series_out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            echo(
                f"time series written to {self.series_out} "
                f"({len(doc['buckets'])} bucket(s) from "
                f"{doc.get('sources', len(series))} source(s))"
            )
        if self.timeline_out:
            doc = export_runs_timeline(self._sims, path=self.timeline_out)
            echo(
                f"timeline written to {self.timeline_out} "
                f"({len(doc['traceEvents'])} events; open in "
                "chrome://tracing or ui.perfetto.dev)"
            )
        if self.waterfall:
            for run, sim in self._sims:
                hops = sim.hops
                if hops is None:
                    continue
                roots = [s for s in sim.spans.roots() if not s.open]
                for span in roots[:MAX_WATERFALLS]:
                    echo(render_waterfall(span, hops))
                if len(roots) > MAX_WATERFALLS:
                    echo(f"... {len(roots) - MAX_WATERFALLS} more span(s) "
                         f"in run {run!r} not shown")
        for run, dog in self._watchdogs:
            results = dog.finalize()
            echo(render_slo_report(results, title=f"SLO [{run}]"))
            if any(not r.ok for r in results):
                self.exit_code = 1
        if self.slo_rules and self.extra_series:
            # Sweep workers ran in their own processes; replay their
            # merged series through a fresh watchdog.
            results = evaluate_series(
                self.slo_rules, merge_series(self.extra_series)
            )
            echo(render_slo_report(results, title="SLO [sweep]"))
            if any(not r.ok for r in results):
                self.exit_code = 1
        if self.exit_code:
            # A nonzero exit is itself an incident: capture the tail of
            # every watched run so the failure is explainable post hoc.
            for _run, recorder in self._recorders:
                recorder.capture_now(f"exit:{self.exit_code}")
        for _run, recorder in self._recorders:
            recorder.flush()
        if self.incident_dir:
            bundles = merge_incidents(
                [b for _, rec in self._recorders for b in rec.bundles]
                + list(self.extra_incidents)
            )
            os.makedirs(self.incident_dir, exist_ok=True)
            for bundle in bundles:
                path = os.path.join(
                    self.incident_dir,
                    f"incident-{bundle['incident']:03d}.json",
                )
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(bundle, fh, indent=1, sort_keys=True,
                              default=str)
                    fh.write("\n")
            echo(
                f"{len(bundles)} incident bundle(s) written to "
                f"{self.incident_dir} (analyze with "
                f"'python -m repro analyze {self.incident_dir}')"
                if bundles else
                f"no incidents captured; nothing written to "
                f"{self.incident_dir}"
            )
        if self.profile:
            for run, sim in self._sims:
                profiler = sim.profiler
                if profiler is not None and profiler.stats:
                    echo(profiler.report(title=f"kernel profile [{run}]"))
        return self.exit_code
