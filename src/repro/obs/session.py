"""Glue for the command-line surface: one object per observed run.

``python -m repro`` scenarios build one or more simulators; an
:class:`ObsSession` carries the ``--trace-out``/``--metrics-out``/
``--profile``/``--heartbeat`` choices, attaches them to each simulator
as it is built, and writes every artefact at the end.  Kept in the
library (not ``__main__``) so tests and notebooks can drive the same
plumbing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import export_trace_jsonl, merge_snapshots
from repro.obs.heartbeat import Heartbeat
from repro.obs.prom import render_prometheus


class ObsSession:
    """Observability options applied across a scenario's simulators."""

    def __init__(
        self,
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
        profile: bool = False,
        heartbeat: Optional[float] = None,
    ) -> None:
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.profile = profile
        self.heartbeat = heartbeat
        self._sims: List[Tuple[str, Any]] = []
        self._heartbeats: List[Heartbeat] = []
        #: Extra metric snapshots merged into --metrics-out (sweeps).
        self.extra_snapshots: List[Dict[str, Any]] = []

    @property
    def active(self) -> bool:
        return bool(
            self.trace_out or self.metrics_out or self.profile or self.heartbeat
        )

    def watch(self, sim, run: str = "main") -> None:
        """Register *sim* (idempotent per run name) and arm the
        requested instrumentation on it."""
        if any(existing is sim for _, existing in self._sims):
            return
        self._sims.append((run, sim))
        if self.profile:
            sim.enable_profiler()
        if self.heartbeat:
            self._heartbeats.append(
                Heartbeat(sim, period=self.heartbeat, label=run).start()
            )

    def finish(self, echo=print) -> None:
        """Stop heartbeats, write the trace/metrics artefacts and print
        profiler reports."""
        for hb in self._heartbeats:
            hb.stop()
        self._heartbeats.clear()
        if self.trace_out:
            with open(self.trace_out, "w", encoding="utf-8") as fh:
                for run, sim in self._sims:
                    export_trace_jsonl(sim, fh, run=run)
            echo(f"trace written to {self.trace_out}")
        if self.metrics_out:
            snapshots = [sim.metrics.snapshot() for _, sim in self._sims]
            snapshots.extend(self.extra_snapshots)
            if len(snapshots) == 1:
                text = render_prometheus(snapshots[0])
            else:
                text = render_prometheus(merge_snapshots(snapshots))
            with open(self.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            echo(f"metrics snapshot written to {self.metrics_out}")
        if self.profile:
            for run, sim in self._sims:
                profiler = sim.profiler
                if profiler is not None and profiler.stats:
                    echo(profiler.report(title=f"kernel profile [{run}]"))
