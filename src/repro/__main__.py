"""Self-contained demonstration: ``python -m repro [scenario]``.

Scenarios:

* ``call`` (default) — register a GSM handset and complete a VoIP call
  (Figures 4 and 5);
* ``tromboning``     — classic-GSM vs vGPRS roamer call (Figures 7-8);
* ``handoff``        — mid-call inter-system handoff (Figure 9);
* ``flows``          — print all three message-flow figures as charts;
* ``sweep``          — run a parameter sweep (E8/E9/E11 style), optionally
  in parallel with ``--jobs N``;
* ``lint``           — protocol-aware static analysis (determinism,
  dispatch completeness, flow conformance, sim-safety, packet hygiene);
  see ``python -m repro lint --help``;
* ``serve``          — run the simulation as a live service: wall-clock
  pacing, open-loop Poisson load, a Prometheus scrape endpoint
  (``/metrics``, ``/status``, ``/alerts``, ``/incidents``) and live
  alert lifecycles; see ``python -m repro serve --help``;
* ``analyze``        — post-mortem blast-radius analysis of incident
  bundles captured by the always-on flight recorder; see
  ``python -m repro analyze --help``.

Every scenario accepts the observability flags:

* ``--trace-out FILE``   — JSONL trace with correlated call spans;
* ``--metrics-out FILE`` — Prometheus text-format metrics snapshot
  (sweeps merge the per-worker snapshots deterministically);
* ``--profile``          — per-event-type kernel profile table;
* ``--heartbeat SECS``   — progress lines on stderr for long runs;
* ``--series-out FILE``  — sim-time-bucketed metric time series (JSON;
  sweeps merge per-worker series deterministically);
* ``--series-interval SECS`` — series bucket width (default 1.0);
* ``--timeline-out FILE`` — Chrome-trace-event timeline (spans + link
  hops) viewable in chrome://tracing or ui.perfetto.dev;
* ``--waterfall``        — print per-procedure per-link latency
  waterfalls over the Figure-3 stack;
* ``--slo RULES``        — declarative SLO rules ("name: func(glob) OP
  threshold", ';'-separated, or @file); violations exit nonzero;
* ``--faults PLAN``      — deterministic fault plan ("at 120 link
  VMSC--GK down for 30", ';'-separated, @file, or JSON) injected into
  the topology (call and sweep scenarios);
* ``--incident-dir DIR`` — write flight-recorder incident bundles
  (captured around faults, alert trips, and nonzero exits) to DIR,
  ready for ``python -m repro analyze DIR``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import ObsSession


def demo_call(obs: ObsSession, media: str = "events", faults=None) -> None:
    from repro.core import scenarios
    from repro.core.network import build_vgprs_network
    from repro.core.sweeps import apply_media
    from repro.faults import apply_faults

    nw = build_vgprs_network()
    apply_media(nw.sim, media)
    # Watch before arming faults so the always-on flight recorder sees
    # the FAULT_PLAN_ARMED note and captures around the fault window.
    obs.watch(nw.sim, run="call")
    apply_faults(nw, faults)
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
    nw.sim.run(until=0.5)
    latency = scenarios.register_ms(nw, ms)
    entry = nw.vmsc.ms_table.get(ms.imsi)
    print(f"registered in {latency * 1000:.0f} ms; MS address {entry.ip}")
    outcome = scenarios.call_ms_to_terminal(nw, ms, term)
    print(f"call answered after {outcome.answer_delay * 1000:.0f} ms")
    ms.start_talking(duration=1.0)
    nw.sim.run(until=nw.sim.now + 1.5)
    print(f"{term.frames_received} voice frames delivered")
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    print(f"released; {len(nw.gk.call_records)} charging record(s)")


def demo_tromboning(obs: ObsSession) -> None:
    from repro.core.baseline_gsm import build_classic_roaming_network
    from repro.core.tromboning import build_vgprs_roaming_network

    roamer = ("MS-X", "234150000000001", "+447700900123")
    print("=== classic GSM (Figure 7) ===")
    nw = build_classic_roaming_network()
    obs.watch(nw.sim, run="classic-gsm")
    x = nw.add_roamer(*roamer, answer_delay=0.5)
    y = nw.add_phone("PHONE-Y", "+85221234567")
    x.power_on()
    nw.sim.run_until_true(lambda: x.registered, timeout=30)
    since = nw.sim.now
    y.place_call(x.msisdn)
    nw.sim.run_until_true(lambda: x.state == "in-call", timeout=30)
    print(f"international trunks: {nw.ledger.international_count(since=since)}")

    print("=== vGPRS (Figure 8) ===")
    nw2 = build_vgprs_roaming_network()
    obs.watch(nw2.sim, run="vgprs")
    x2 = nw2.add_roamer(*roamer, answer_delay=0.5)
    nw2.sim.run(until=1.0)
    x2.power_on()
    nw2.sim.run_until_true(lambda: x2.registered, timeout=30)
    since = nw2.sim.now
    nw2.phone_y.place_call(x2.msisdn)
    nw2.sim.run_until_true(lambda: x2.state == "in-call", timeout=30)
    print(f"international trunks: {nw2.ledger.international_count(since=since)}")


def demo_handoff(obs: ObsSession) -> None:
    from repro.core import scenarios
    from repro.core.handoff import build_handoff_network

    nw = build_handoff_network()
    obs.watch(nw.sim, run="handoff")
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.4)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw.vgprs, ms)
    scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
    print("before:", " -> ".join(nw.voice_path()))
    nw.trigger_handoff()
    nw.sim.run_until_true(nw.handoff_complete, timeout=10)
    print("after: ", " -> ".join(nw.voice_path()))


def demo_flows(obs: ObsSession) -> None:
    from repro.analysis.msc_chart import render_msc
    from repro.core import scenarios
    from repro.core.flows import (
        NodeNames,
        match_flow,
        origination_flow,
        registration_flow,
        termination_flow,
    )
    from repro.core.network import build_vgprs_network

    nodes = ["MS1", "BTS1", "BSC", "VMSC", "VLR", "HLR", "SGSN", "GGSN",
             "IPNET", "GK", "TERM1"]
    names = NodeNames()
    nw = build_vgprs_network()
    obs.watch(nw.sim, run="flows")
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001",
                   answer_delay=0.6)
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
    nw.sim.run(until=0.5)
    for title, action, flow in (
        ("Figure 4: registration",
         lambda: scenarios.register_ms(nw, ms), registration_flow(names)),
        ("Figure 5: origination",
         lambda: scenarios.call_ms_to_terminal(nw, ms, term),
         origination_flow(names)),
    ):
        since = nw.sim.now
        action()
        match_flow(nw.sim.trace, flow, since=since)
        print(f"\n=== {title} ===")
        entries = [e for e in nw.sim.trace.entries if e.time >= since]
        print(render_msc(entries, nodes,
                         include={s.message for s in flow},
                         col_width=13, max_label=11))
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    since = nw.sim.now
    scenarios.call_terminal_to_ms(nw, term, ms)
    match_flow(nw.sim.trace, termination_flow(names), since=since)
    print("\n=== Figure 6: termination ===")
    entries = [e for e in nw.sim.trace.entries if e.time >= since]
    print(render_msc(entries, nodes,
                     include={s.message for s in termination_flow(names)},
                     col_width=13, max_label=11))


def demo_sweep(
    experiment: str, obs: ObsSession, jobs=None, media: str = "fluid",
    faults=None,
) -> None:
    """Run one of the parameterised experiments through the parallel
    sweep runner.  Results merge in input order, so ``--jobs N`` output
    is identical to the serial run."""
    import functools

    from repro.core import sweeps
    from repro.sim.sweep import resolve_jobs, run_sweep, sweep_grid

    jobs = resolve_jobs(jobs)
    print(f"sweep {experiment!r} with {jobs} job(s)")
    results = []
    if experiment == "setup-latency":
        points = sweep_grid(factor=(1.0, 2.0, 4.0, 8.0))
        worker = functools.partial(sweeps.setup_latency_point, faults=faults)
        results = run_sweep(worker, points, jobs=jobs)
        for result in results:
            p = result.value
            print(f"core x{p['factor']:<4.0f} MT setup "
                  f"vGPRS {p['vgprs_mt'] * 1000:7.1f} ms  "
                  f"3G TR {p['tgtr_mt'] * 1000:7.1f} ms  "
                  f"(ratio {p['tgtr_mt'] / p['vgprs_mt']:.1f}x)")
    elif experiment == "voice-quality":
        points = sweep_grid(num_calls=(1, 2, 4, 6))
        # functools.partial of a module-level worker stays picklable, so
        # the media model fans out to worker processes unchanged.
        worker = functools.partial(sweeps.voice_quality_point, media=media,
                                   faults=faults)
        results = run_sweep(worker, points, jobs=jobs)
        for result in results:
            v, t = result.value["vgprs"], result.value["tgtr"]
            print(f"{result.value['calls']} call(s): m2e "
                  f"vGPRS {v['mean_m2e_ms']:6.1f} ms  "
                  f"3G TR {t['mean_m2e_ms']:6.1f} ms  "
                  f"jitter p95 {v['p95_jitter_ms']:.2f}/{t['p95_jitter_ms']:.2f} ms")
    elif experiment == "residency":
        points = sweep_grid(calls_per_hour=(0.0, 60.0, 240.0))
        worker = functools.partial(sweeps.residency_point, faults=faults)
        results = run_sweep(worker, points, jobs=jobs)
        for result in results:
            cph = result.point.params["calls_per_hour"]
            p = result.value
            print(f"{cph:5.0f} calls/h: ctx-s@SGSN "
                  f"vGPRS {p['vgprs_residency']:5.0f}  "
                  f"3G TR {p['tgtr_residency']:5.0f}; "
                  f"PDP activations "
                  f"{p['vgprs_activations']}/{p['tgtr_activations']}")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown experiment {experiment!r}")
    # Sweep workers build their own simulators in their own processes;
    # whatever snapshots/series they embedded in the result values are
    # the metrics we can export.
    for result in results:
        obs.extra_snapshots.extend(result.snapshots())
        obs.extra_series.extend(result.series())
        obs.extra_incidents.extend(result.incidents())


SCENARIOS = {
    "call": demo_call,
    "tromboning": demo_tromboning,
    "handoff": demo_handoff,
    "flows": demo_flows,
}

SWEEP_EXPERIMENTS = ("setup-latency", "voice-quality", "residency")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["lint"]:
        # The analyzer has its own flag set; hand over before the demo
        # parser rejects them.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["serve"]:
        # Service mode likewise owns its flag set.
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["analyze"]:
        # Post-mortem analysis likewise owns its flag set.
        from repro.obs.analyze import main as analyze_main

        return analyze_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="vGPRS reproduction demos",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        default="call",
        choices=sorted(SCENARIOS) + ["sweep"],
        help="which demonstration to run (default: call)",
    )
    parser.add_argument(
        "--experiment",
        default="setup-latency",
        choices=SWEEP_EXPERIMENTS,
        help="which sweep to run (sweep scenario only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep scenario "
             "(default: $REPRO_SWEEP_JOBS or serial)",
    )
    parser.add_argument(
        "--media",
        choices=("events", "fluid"),
        default=None,
        help="voice media model: per-frame events or the analytic fluid "
             "model (default: fluid for sweeps, events for demos)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a JSONL trace (spans + events) to FILE",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write a Prometheus text-format metrics snapshot to FILE",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the kernel and print a per-event-type table",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECS",
        help="print a progress line to stderr every SECS simulated seconds",
    )
    parser.add_argument(
        "--series-out",
        metavar="FILE",
        help="write a sim-time-bucketed metric time series (JSON) to FILE",
    )
    parser.add_argument(
        "--series-interval",
        type=float,
        default=1.0,
        metavar="SECS",
        help="time-series bucket width in simulated seconds (default: 1.0)",
    )
    parser.add_argument(
        "--timeline-out",
        metavar="FILE",
        help="write a Chrome-trace-event timeline (spans + link hops) "
             "to FILE; open in chrome://tracing or ui.perfetto.dev",
    )
    parser.add_argument(
        "--waterfall",
        action="store_true",
        help="print per-procedure per-link latency waterfalls",
    )
    parser.add_argument(
        "--slo",
        metavar="RULES",
        help="SLO rules ('name: func(glob) OP threshold', ';'-separated) "
             "or @FILE to read them from a file; violations exit nonzero",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        help="fault plan ('at T link A--B down for D', ';'-separated, "
             "or @FILE / JSON) injected into the topology; sweep workers "
             "arm the same plan on every point (call and sweep scenarios)",
    )
    parser.add_argument(
        "--incident-dir",
        metavar="DIR",
        help="write flight-recorder incident bundles (captured around "
             "faults, alert trips, and nonzero exits) to DIR for "
             "'python -m repro analyze'",
    )
    args = parser.parse_args(argv)
    slo = args.slo
    if slo and slo.startswith("@"):
        with open(slo[1:], "r", encoding="utf-8") as fh:
            slo = fh.read()
    faults = args.faults
    if faults and faults.startswith("@"):
        with open(faults[1:], "r", encoding="utf-8") as fh:
            faults = fh.read()
    obs = ObsSession(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile=args.profile,
        heartbeat=args.heartbeat,
        series_out=args.series_out,
        series_interval=args.series_interval,
        timeline_out=args.timeline_out,
        waterfall=args.waterfall,
        slo=slo,
        incident_dir=args.incident_dir,
    )
    if args.scenario == "sweep":
        demo_sweep(args.experiment, obs, jobs=args.jobs,
                   media=args.media or "fluid", faults=faults)
    elif args.scenario == "call":
        demo_call(obs, media=args.media or "events", faults=faults)
    else:
        SCENARIOS[args.scenario](obs)
    return obs.finish()


if __name__ == "__main__":
    sys.exit(main())
