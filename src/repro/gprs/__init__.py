"""GPRS core network: SGSN, GGSN, PDP contexts and GTP tunnelling.

The packet-switched substrate of Figure 1: the SGSN terminates the Gb
interface (toward the BSC's PCU — or, in vGPRS, toward the VMSC's PCU),
the GGSN interworks with the external packet network, and GTP tunnels
carry subscriber IP traffic between them.
"""

from repro.gprs.pdp import PdpContext, QosProfile, NSAPI_SIGNALLING, NSAPI_VOICE
from repro.gprs.gb import GbUnitdata
from repro.gprs.sgsn import Sgsn
from repro.gprs.ggsn import Ggsn

__all__ = [
    "PdpContext",
    "QosProfile",
    "NSAPI_SIGNALLING",
    "NSAPI_VOICE",
    "GbUnitdata",
    "Sgsn",
    "Ggsn",
]
