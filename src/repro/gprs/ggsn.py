"""Gateway GPRS Support Node.

The GGSN "interworks with the PSDN using connectionless network
protocols" (paper §2).  It terminates GTP tunnels from SGSNs on Gn and
attaches to the IP backbone on Gi:

* creates PDP contexts, allocating dynamic PDP addresses from its pool
  (the paper's step 1.3 assumes dynamic allocation) or honouring static
  assignments (required by the 3G TR baseline for MT calls);
* registers PDP addresses with the IP cloud so downlink packets for
  mobile subscribers route back here;
* forwards T-PDUs in both directions, selecting the downlink context by
  destination address plus a TFT-style classifier (RTP -> voice context);
* on a downlink packet for a provisioned-but-inactive static address,
  buffers it and raises a GTP PDU Notification toward the subscriber's
  SGSN (network-requested activation, GSM 03.60) — the slow MT-call path
  the paper criticises in §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.identities import IMSI, IPv4Address, TunnelId
from repro.gprs.pdp import NSAPI_VOICE, PdpContext, QosProfile
from repro.net.interfaces import Interface
from repro.net.ip import IPCloud
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer
from repro.packets.base import Packet
from repro.packets.gtp import (
    CAUSE_ACCEPTED,
    CAUSE_NO_RESOURCES,
    GtpCreatePdpContextRequest,
    GtpCreatePdpContextResponse,
    GtpDeletePdpContextRequest,
    GtpDeletePdpContextResponse,
    GtpHeader,
    GtpPduNotificationRequest,
    GtpPduNotificationResponse,
    GtpUpdatePdpContextRequest,
    GtpUpdatePdpContextResponse,
    MSG_CREATE_PDP_RSP,
    MSG_DELETE_PDP_RSP,
    MSG_PDU_NOTIFY_REQ,
    MSG_T_PDU,
    MSG_UPDATE_PDP_RSP,
)
from repro.packets.ip import IPv4
from repro.packets.rtp import RtpPacket


@dataclass
class StaticSubscriber:
    """Provisioning record for a subscriber with a static PDP address
    (needed for network-requested activation, 3G TR baseline)."""

    imsi: IMSI
    address: IPv4Address
    sgsn_name: str


@dataclass
class _AddressState:
    """All contexts sharing one PDP address, plus any buffered downlink
    packets awaiting network-requested activation."""

    contexts: Dict[int, PdpContext] = field(default_factory=dict)  # nsapi -> ctx
    buffered: List[IPv4] = field(default_factory=list)
    notified: bool = False


class Ggsn(Node):
    """The gateway GPRS support node."""

    def __init__(
        self,
        sim,
        name: str = "GGSN",
        pool_prefix: Tuple[int, int] = (10, 1),
        max_dynamic: int = 65000,
        remember_released: bool = False,
    ) -> None:
        """``remember_released`` keeps the IMSI->address binding (and the
        cloud route) after the last context for an address is deleted, so
        network-requested activation can later reach the subscriber.
        This is the functional equivalent of the static PDP addressing
        GSM 03.60 requires for that feature — used by the
        idle-deactivation vGPRS variant the paper sketches in §6."""
        super().__init__(sim, name)
        self.remember_released = remember_released
        self.pdp_contexts: Dict[Tuple[IMSI, int], PdpContext] = {}
        self._addresses: Dict[IPv4Address, _AddressState] = {}
        self._pool_prefix = pool_prefix
        self._pool_seq = Sequencer(start=2)
        self._max_dynamic = max_dynamic
        self._allocated_dynamic = 0
        self.static_subscribers: Dict[IMSI, StaticSubscriber] = {}
        self._addr_by_imsi: Dict[IMSI, IPv4Address] = {}
        self._ctx_count_by_imsi: Dict[IMSI, int] = {}
        self._static_by_addr: Dict[IPv4Address, StaticSubscriber] = {}
        self._notify_seq = Sequencer()
        self._context_gauge = sim.metrics.gauge(f"{name}.pdp_contexts")

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def provision_static(self, imsi: IMSI, address: IPv4Address, sgsn_name: str) -> None:
        """Provision a static PDP address (operator configuration; the
        paper notes static addresses 'may not be practical for a
        large-scaled network', §6)."""
        record = StaticSubscriber(imsi, address, sgsn_name)
        self.static_subscribers[imsi] = record
        self._static_by_addr[address] = record
        # Static addresses stay routed to this GGSN even with no active
        # context, so downlink packets can trigger PDU notification.
        self._cloud().register(address, self)

    def _allocate_dynamic(self) -> Optional[IPv4Address]:
        if self._allocated_dynamic >= self._max_dynamic:
            return None
        n = self._pool_seq.next()
        a, b = self._pool_prefix
        address = IPv4Address((a << 24) | (b << 16) | ((n >> 8) & 0xFF) << 8 | (n & 0xFF))
        self._allocated_dynamic += 1
        return address

    def _cloud(self) -> IPCloud:
        peer = self.peer(Interface.GI)
        assert isinstance(peer, IPCloud)
        return peer

    # ------------------------------------------------------------------
    # GTP control plane
    # ------------------------------------------------------------------
    @handles(GtpHeader)
    def on_gtp(self, packet: GtpHeader, src: Node, interface: str) -> None:
        if packet.msg_type == MSG_T_PDU:
            self._uplink_tpdu(packet)
            return
        inner = packet.payload
        if isinstance(inner, GtpCreatePdpContextRequest):
            self._on_create(packet, inner, src)
        elif isinstance(inner, GtpDeletePdpContextRequest):
            self._on_delete(packet, inner, src)
        elif isinstance(inner, GtpUpdatePdpContextRequest):
            self._on_update(packet, inner, src)
        elif isinstance(inner, GtpPduNotificationResponse):
            pass  # nothing further to do; the SGSN owns the activation
        else:
            self.on_unhandled(packet, src, interface)

    def _on_create(
        self, header: GtpHeader, req: GtpCreatePdpContextRequest, src: Node
    ) -> None:
        tid = header.tid
        if req.static_pdp_address is not None:
            address: Optional[IPv4Address] = req.static_pdp_address
        else:
            static = self.static_subscribers.get(tid.imsi)
            # "the IMSI of the MS is used by the GGSN to retrieve the HLR
            # record to obtain information such as IP address" (step 1.3);
            # the provisioning table stands in for the HLR lookup, and the
            # pool provides dynamic addresses otherwise.
            if static is not None:
                address = static.address
            else:
                existing = self._address_of(tid.imsi)
                address = existing if existing is not None else self._allocate_dynamic()
        if address is None:
            self.send(
                src,
                GtpHeader(msg_type=MSG_CREATE_PDP_RSP, seq=header.seq, tid=tid)
                / GtpCreatePdpContextResponse(cause=CAUSE_NO_RESOURCES),
            )
            return
        ctx = PdpContext(
            imsi=tid.imsi,
            nsapi=tid.nsapi,
            pdp_address=address,
            qos=QosProfile(req.qos_delay_class, req.qos_peak_kbps),
            apn=req.apn,
            sgsn_name=src.name,
            ggsn_name=self.name,
            static=req.static_pdp_address is not None,
            activated_at=self.sim.now,
        )
        if ctx.key() not in self.pdp_contexts:
            self._ctx_count_by_imsi[tid.imsi] = (
                self._ctx_count_by_imsi.get(tid.imsi, 0) + 1
            )
        self.pdp_contexts[ctx.key()] = ctx
        self._addr_by_imsi[tid.imsi] = address
        state = self._addresses.setdefault(address, _AddressState())
        state.contexts[ctx.nsapi] = ctx
        state.notified = False
        self._context_gauge.inc()
        self.sim.metrics.counter(f"{self.name}.pdp_activations").inc()
        self._cloud().register(address, self)
        self.send(
            src,
            GtpHeader(msg_type=MSG_CREATE_PDP_RSP, seq=header.seq, tid=tid)
            / GtpCreatePdpContextResponse(
                cause=CAUSE_ACCEPTED,
                pdp_address=address,
                qos_delay_class=req.qos_delay_class,
            ),
        )
        self._flush_buffered(address)

    def _address_of(self, imsi: IMSI) -> Optional[IPv4Address]:
        """An MS keeps one PDP address across its contexts (the paper
        associates 'an IP address ... with every MS attached to the
        VMSC'), so a second context reuses the first one's address."""
        return self._addr_by_imsi.get(imsi)

    def _on_delete(
        self, header: GtpHeader, req: GtpDeletePdpContextRequest, src: Node
    ) -> None:
        tid = header.tid
        ctx = self.pdp_contexts.pop((tid.imsi, tid.nsapi), None)
        if ctx is not None:
            remaining = self._ctx_count_by_imsi.get(tid.imsi, 1) - 1
            if remaining <= 0:
                self._ctx_count_by_imsi.pop(tid.imsi, None)
                self._addr_by_imsi.pop(tid.imsi, None)
            else:
                self._ctx_count_by_imsi[tid.imsi] = remaining
            self._context_gauge.dec()
            self.sim.metrics.counter(f"{self.name}.pdp_deactivations").inc()
            state = self._addresses.get(ctx.pdp_address)
            if state is not None:
                state.contexts.pop(ctx.nsapi, None)
                if not state.contexts:
                    del self._addresses[ctx.pdp_address]
                    if self.remember_released:
                        self.provision_static(
                            ctx.imsi, ctx.pdp_address, ctx.sgsn_name
                        )
                    elif ctx.pdp_address not in self._static_by_addr:
                        self._cloud().unregister(ctx.pdp_address)
        self.send(
            src,
            GtpHeader(msg_type=MSG_DELETE_PDP_RSP, seq=header.seq, tid=tid)
            / GtpDeletePdpContextResponse(),
        )

    def _on_update(
        self, header: GtpHeader, req: GtpUpdatePdpContextRequest, src: Node
    ) -> None:
        ctx = self.pdp_contexts.get((header.tid.imsi, header.tid.nsapi))
        if ctx is not None:
            ctx.sgsn_name = src.name
        self.send(
            src,
            GtpHeader(msg_type=MSG_UPDATE_PDP_RSP, seq=header.seq, tid=header.tid)
            / GtpUpdatePdpContextResponse(),
        )

    # ------------------------------------------------------------------
    # User plane
    # ------------------------------------------------------------------
    def _uplink_tpdu(self, packet: GtpHeader) -> None:
        inner = packet.payload
        if not isinstance(inner, IPv4):
            self.sim.metrics.counter(f"{self.name}.uplink_non_ip").inc()
            return
        self.sim.metrics.counter(f"{self.name}.uplink_pdus").inc()
        self.send(self._cloud(), inner)

    @handles(IPv4)
    def on_downlink_ip(self, packet: IPv4, src: Node, interface: str) -> None:
        state = self._addresses.get(packet.dst)
        if state is not None and state.contexts:
            ctx = self._classify(state, packet)
            self.sim.metrics.counter(f"{self.name}.downlink_pdus").inc()
            header = GtpHeader(msg_type=MSG_T_PDU, seq=0, tid=ctx.tid)
            header.payload = packet
            self.send(ctx.sgsn_name, header)
            return
        static = self._static_by_addr.get(packet.dst)
        if static is not None:
            self._notify(static, packet)
            return
        self.sim.metrics.counter(f"{self.name}.downlink_no_context").inc()

    def _classify(self, state: _AddressState, packet: IPv4) -> PdpContext:
        """TFT-style downlink context selection: RTP goes to the voice
        context when one exists, everything else to the lowest NSAPI
        (the signalling context)."""
        if packet.haslayer(RtpPacket) and NSAPI_VOICE in state.contexts:
            return state.contexts[NSAPI_VOICE]
        return state.contexts[min(state.contexts)]

    def _notify(self, static: StaticSubscriber, packet: IPv4) -> None:
        """Buffer the packet and ask the SGSN to request activation.
        Buffering toward an unresponsive subscriber is bounded."""
        state = self._addresses.setdefault(static.address, _AddressState())
        if len(state.buffered) >= 64:
            self.sim.metrics.counter(f"{self.name}.notify_buffer_drops").inc()
            return
        state.buffered.append(packet)
        self.sim.metrics.counter(f"{self.name}.pdu_notifications").inc()
        if state.notified:
            return
        state.notified = True
        header = GtpHeader(
            msg_type=MSG_PDU_NOTIFY_REQ,
            seq=self._notify_seq.next(),
            tid=TunnelId(static.imsi, NSAPI_VOICE),
        )
        self.send(
            static.sgsn_name,
            header / GtpPduNotificationRequest(imsi=static.imsi, pdp_address=static.address),
        )

    def _flush_buffered(self, address: IPv4Address) -> None:
        state = self._addresses.get(address)
        if state is None or not state.buffered:
            return
        pending, state.buffered = state.buffered, []
        for packet in pending:
            self.on_downlink_ip(packet, self, Interface.GI)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def context_count(self) -> int:
        return len(self.pdp_contexts)

    def context_residency(self) -> float:
        return self._context_gauge.integral()

    def address_of(self, imsi: IMSI) -> Optional[IPv4Address]:
        return self._address_of(imsi)
