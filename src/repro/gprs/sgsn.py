"""Serving GPRS Support Node.

The SGSN "receives and transmits packets between the MSs and their
counterparts in the PSDN" (paper §2).  It terminates the Gb interface
toward access nodes (the VMSC's PCU in vGPRS, the BSC's PCU for GPRS
handsets), maintains MM and PDP contexts and tunnels subscriber PDUs to
the GGSN over GTP (Gn).

Responsibilities exercised by the paper's procedures:

* GPRS attach / detach (step 1.3);
* PDP context activation / deactivation, relayed to the GGSN as GTP
  Create/Delete PDP Context (steps 1.3, 2.9, 3.4, 4.8);
* network-requested PDP context activation on a GGSN PDU notification
  (the 3G TR baseline's MT-call path, §6);
* uplink/downlink T-PDU forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PdpContextError
from repro.identities import IMSI
from repro.gprs.gb import GbUnitdata
from repro.gprs.pdp import PdpContext, QosProfile
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer
from repro.packets.gmm import (
    ActivatePdpContextAccept,
    ActivatePdpContextReject,
    ActivatePdpContextRequest,
    DeactivatePdpContextAccept,
    DeactivatePdpContextRequest,
    GprsAttachAccept,
    GprsAttachRequest,
    GprsDetachAccept,
    GprsDetachRequest,
    GprsPaging,
    GprsPagingResponse,
    RequestPdpContextActivation,
    RoutingAreaUpdateAccept,
    RoutingAreaUpdateRequest,
    SM_CAUSE_INSUFFICIENT_RESOURCES,
)
from repro.packets.gtp import (
    GtpCreatePdpContextRequest,
    GtpCreatePdpContextResponse,
    GtpDeletePdpContextRequest,
    GtpDeletePdpContextResponse,
    GtpHeader,
    GtpPduNotificationRequest,
    GtpPduNotificationResponse,
    GtpSgsnContextRequest,
    GtpSgsnContextResponse,
    GtpUpdatePdpContextRequest,
    GtpUpdatePdpContextResponse,
    PdpContextIe,
    MSG_CREATE_PDP_REQ,
    MSG_DELETE_PDP_REQ,
    MSG_PDU_NOTIFY_RSP,
    MSG_T_PDU,
    MSG_UPDATE_PDP_REQ,
    CAUSE_ACCEPTED,
    CAUSE_UNKNOWN_PDP,
)
from repro.identities import TunnelId


@dataclass
class MmContext:
    """GPRS mobility-management context for an attached subscriber.

    ``last_activity`` drives the READY/STANDBY distinction of GSM 03.60
    §6.1.2: downlink traffic for a STANDBY subscriber must be preceded by
    GPRS paging.  SGSNs built with ``ready_timeout=None`` (the vGPRS
    configuration, where the 'MS' on the Gb is the always-wired VMSC)
    never page.
    """

    imsi: IMSI
    ptmsi: int
    access_node: str
    routing_area: str = "RA-1"
    attached_at: float = 0.0
    last_activity: float = 0.0
    paging: bool = False
    paged_queue: List[object] = field(default_factory=list)


class Sgsn(Node):
    """The serving GPRS support node."""

    def __init__(
        self,
        sim,
        name: str = "SGSN",
        max_contexts: int = 100000,
        ready_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(sim, name)
        self.ready_timeout = ready_timeout
        self.mm_contexts: Dict[IMSI, MmContext] = {}
        self.pdp_contexts: Dict[Tuple[IMSI, int], PdpContext] = {}
        self.max_contexts = max_contexts
        self._ptmsi_seq = Sequencer(start=0x80000000 + 1)
        self._gtp_seq = Sequencer()
        self._gtp_pending: Dict[int, dict] = {}
        self._context_gauge = sim.metrics.gauge(f"{name}.pdp_contexts")
        #: routing-area name -> SGSN node name, for locating the old
        #: SGSN during inter-SGSN routing-area updates (operator config).
        self.rai_map: Dict[str, str] = {}
        # Pending inter-SGSN RAUs, keyed by IMSI.
        self._rau_pending: Dict[IMSI, dict] = {}

    # ------------------------------------------------------------------
    # Fault injection: volatile state loss on crash
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """A crashed SGSN restarts empty: every MM and PDP context is
        gone, and the peers (VMSC, GGSN) only find out when their next
        procedure fails — which is the recovery behaviour the fault
        scenarios measure."""
        lost = len(self.mm_contexts) + len(self.pdp_contexts)
        self.mm_contexts.clear()
        self.pdp_contexts.clear()
        self._gtp_pending.clear()
        self._rau_pending.clear()
        self._context_gauge.set(0)
        self.sim.metrics.counter(f"{self.name}.crash_contexts_lost").inc(lost)

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------
    @handles(GprsAttachRequest)
    def on_attach(self, msg: GprsAttachRequest, src: Node, interface: str) -> None:
        ctx = MmContext(
            imsi=msg.imsi,
            ptmsi=self._ptmsi_seq.next(),
            access_node=src.name,
            attached_at=self.sim.now,
            last_activity=self.sim.now,
        )
        self.mm_contexts[msg.imsi] = ctx
        self.sim.metrics.counter(f"{self.name}.attaches").inc()
        self.send(src, GprsAttachAccept(imsi=msg.imsi, ptmsi=ctx.ptmsi))

    @handles(GprsDetachRequest)
    def on_detach(self, msg: GprsDetachRequest, src: Node, interface: str) -> None:
        self.mm_contexts.pop(msg.imsi, None)
        stale = [k for k in self.pdp_contexts if k[0] == msg.imsi]
        for key in stale:
            del self.pdp_contexts[key]
            self._context_gauge.dec()
        self.send(src, GprsDetachAccept(imsi=msg.imsi))

    @handles(RoutingAreaUpdateRequest)
    def on_rau(self, msg: RoutingAreaUpdateRequest, src: Node, interface: str) -> None:
        mm = self.mm_contexts.get(msg.imsi)
        if mm is not None:
            # Intra-SGSN update: refresh the access path and confirm.
            mm.routing_area = msg.routing_area
            mm.access_node = src.name
            mm.last_activity = self.sim.now
            self.send(src, RoutingAreaUpdateAccept(imsi=msg.imsi))
            return
        old_sgsn = self.rai_map.get(msg.old_routing_area)
        if old_sgsn is None or old_sgsn == self.name:
            # Unknown subscriber and no old SGSN to ask: treat as a fresh
            # implicit attach (the MS will re-activate contexts itself).
            self.sim.metrics.counter(f"{self.name}.rau_unknown").inc()
            return
        # Inter-SGSN RAU (GSM 03.60 §6.9): pull the contexts over Gn.
        self._rau_pending[msg.imsi] = {
            "access_node": src.name,
            "routing_area": msg.routing_area,
            "awaiting_updates": 0,
        }
        self.send(
            old_sgsn,
            GtpSgsnContextRequest(imsi=msg.imsi, new_sgsn=self.name),
            interface=Interface.GN,
        )

    @handles(GtpSgsnContextRequest)
    def on_sgsn_context_request(
        self, msg: GtpSgsnContextRequest, src: Node, interface: str
    ) -> None:
        """Old-SGSN role: hand the subscriber's contexts to *src* and
        drop the local state (tunnel endpoints move to the new SGSN)."""
        mm = self.mm_contexts.pop(msg.imsi, None)
        if mm is None:
            self.send(
                src, GtpSgsnContextResponse(imsi=msg.imsi, cause=CAUSE_UNKNOWN_PDP)
            )
            return
        response = GtpSgsnContextResponse(imsi=msg.imsi, ptmsi=mm.ptmsi)
        chain = response
        for key in [k for k in list(self.pdp_contexts) if k[0] == msg.imsi]:
            ctx = self.pdp_contexts.pop(key)
            self._context_gauge.dec()
            chain = chain / PdpContextIe(
                nsapi=ctx.nsapi,
                qos_delay_class=ctx.qos.delay_class,
                qos_peak_kbps=ctx.qos.peak_kbps,
                pdp_address=ctx.pdp_address,
                apn=ctx.apn,
                static=1 if ctx.static else 0,
            )
        self.sim.metrics.counter(f"{self.name}.contexts_transferred_out").inc()
        self.send(src, response)

    @handles(GtpSgsnContextResponse)
    def on_sgsn_context_response(
        self, msg: GtpSgsnContextResponse, src: Node, interface: str
    ) -> None:
        """New-SGSN role: install the contexts, then repoint the GGSN
        tunnels with Update PDP Context before confirming to the MS."""
        pending = self._rau_pending.get(msg.imsi)
        if pending is None:
            return
        if msg.cause != CAUSE_ACCEPTED:
            del self._rau_pending[msg.imsi]
            self.sim.metrics.counter(f"{self.name}.rau_failures").inc()
            return
        self.mm_contexts[msg.imsi] = MmContext(
            imsi=msg.imsi,
            ptmsi=msg.ptmsi if msg.ptmsi is not None else self._ptmsi_seq.next(),
            access_node=pending["access_node"],
            routing_area=pending["routing_area"],
            attached_at=self.sim.now,
            last_activity=self.sim.now,
        )
        ggsn = self.peer(Interface.GN) if len(self.links_on(Interface.GN)) == 1 else None
        layer = msg.payload
        while layer is not None:
            if isinstance(layer, PdpContextIe):
                ctx = PdpContext(
                    imsi=msg.imsi,
                    nsapi=layer.nsapi,
                    pdp_address=layer.pdp_address,
                    qos=QosProfile(layer.qos_delay_class, layer.qos_peak_kbps),
                    apn=layer.apn,
                    sgsn_name=self.name,
                    access_node=pending["access_node"],
                    static=bool(layer.static),
                    activated_at=self.sim.now,
                )
                self.pdp_contexts[ctx.key()] = ctx
                self._context_gauge.inc()
                pending["awaiting_updates"] += 1
                seq = self._gtp_seq.next()
                self._gtp_pending[seq] = {"rau_imsi": msg.imsi}
                header = GtpHeader(
                    msg_type=MSG_UPDATE_PDP_REQ, seq=seq, tid=ctx.tid
                )
                self.send(
                    self._ggsn_peer(),
                    header / GtpUpdatePdpContextRequest(
                        nsapi=ctx.nsapi, sgsn_address=self.name
                    ),
                )
            layer = layer.payload
        self.sim.metrics.counter(f"{self.name}.contexts_transferred_in").inc()
        if pending["awaiting_updates"] == 0:
            self._finish_rau(msg.imsi)

    def _ggsn_peer(self) -> Node:
        """The GGSN on Gn (SGSN-SGSN Gn links are found by name, so the
        single-GGSN assumption only needs to hold per SGSN)."""
        from repro.gprs.ggsn import Ggsn

        for link in self.links_on(Interface.GN):
            peer = link.peer_of(self)
            if isinstance(peer, Ggsn):
                return peer
        raise PdpContextError(f"{self.name}: no GGSN on Gn")

    def _on_update_response(
        self, header: GtpHeader, rsp: GtpUpdatePdpContextResponse
    ) -> None:
        pending = self._gtp_pending.pop(header.seq, None)
        if pending is None or "rau_imsi" not in pending:
            return
        imsi = pending["rau_imsi"]
        rau = self._rau_pending.get(imsi)
        if rau is None:
            return
        rau["awaiting_updates"] -= 1
        if rau["awaiting_updates"] <= 0:
            self._finish_rau(imsi)

    def _finish_rau(self, imsi: IMSI) -> None:
        rau = self._rau_pending.pop(imsi, None)
        if rau is None:
            return
        self.send(rau["access_node"], RoutingAreaUpdateAccept(imsi=imsi))

    # ------------------------------------------------------------------
    # PDP context activation / deactivation
    # ------------------------------------------------------------------
    @handles(ActivatePdpContextRequest)
    def on_activate_pdp(
        self, msg: ActivatePdpContextRequest, src: Node, interface: str
    ) -> None:
        self._touch(msg.imsi)
        if msg.imsi not in self.mm_contexts:
            self.send(
                src,
                ActivatePdpContextReject(
                    imsi=msg.imsi, nsapi=msg.nsapi,
                    cause=SM_CAUSE_INSUFFICIENT_RESOURCES,
                ),
            )
            return
        if len(self.pdp_contexts) >= self.max_contexts:
            self.send(
                src,
                ActivatePdpContextReject(
                    imsi=msg.imsi, nsapi=msg.nsapi,
                    cause=SM_CAUSE_INSUFFICIENT_RESOURCES,
                ),
            )
            return
        ctx = PdpContext(
            imsi=msg.imsi,
            nsapi=msg.nsapi,
            qos=QosProfile(msg.qos_delay_class, msg.qos_peak_kbps),
            apn=msg.apn,
            sgsn_name=self.name,
            access_node=src.name,
            static=msg.static_pdp_address is not None,
            activated_at=self.sim.now,
        )
        # The GGSN echoes the GTP sequence number in its response
        # header, so it keys the pending-transaction table directly.
        seq = self._gtp_seq.next()
        self._gtp_pending[seq] = {"ctx": ctx, "requester": src.name}
        header = GtpHeader(msg_type=MSG_CREATE_PDP_REQ, seq=seq, tid=ctx.tid)
        request = GtpCreatePdpContextRequest(
            nsapi=msg.nsapi,
            qos_delay_class=msg.qos_delay_class,
            qos_peak_kbps=msg.qos_peak_kbps,
            static_pdp_address=msg.static_pdp_address,
            apn=msg.apn,
            sgsn_address=self.name,
        )
        self.send(self._ggsn_peer(), header / request)

    @handles(GtpHeader)
    def on_gtp(self, packet: GtpHeader, src: Node, interface: str) -> None:
        if packet.msg_type == MSG_T_PDU:
            self._downlink_tpdu(packet)
            return
        inner = packet.payload
        if isinstance(inner, GtpCreatePdpContextResponse):
            self._on_create_response(packet, inner)
        elif isinstance(inner, GtpDeletePdpContextResponse):
            self._on_delete_response(packet, inner)
        elif isinstance(inner, GtpUpdatePdpContextResponse):
            self._on_update_response(packet, inner)
        elif isinstance(inner, GtpPduNotificationRequest):
            self._on_pdu_notification(packet, inner, src)
        else:
            self.on_unhandled(packet, src, interface)

    def _on_create_response(
        self, header: GtpHeader, rsp: GtpCreatePdpContextResponse
    ) -> None:
        pending = self._gtp_pending.pop(header.seq, None)
        if pending is None:
            return
        ctx: PdpContext = pending["ctx"]
        requester: str = pending["requester"]
        if rsp.cause != CAUSE_ACCEPTED or rsp.pdp_address is None:
            self.send(
                requester,
                ActivatePdpContextReject(
                    imsi=ctx.imsi, nsapi=ctx.nsapi,
                    cause=SM_CAUSE_INSUFFICIENT_RESOURCES,
                ),
            )
            return
        ctx.pdp_address = rsp.pdp_address
        ctx.ggsn_name = self._ggsn_peer().name
        self.pdp_contexts[ctx.key()] = ctx
        self._context_gauge.inc()
        self.sim.metrics.counter(f"{self.name}.pdp_activations").inc()
        self.send(
            requester,
            ActivatePdpContextAccept(
                imsi=ctx.imsi,
                nsapi=ctx.nsapi,
                pdp_address=ctx.pdp_address,
                qos_delay_class=ctx.qos.delay_class,
            ),
        )

    @handles(DeactivatePdpContextRequest)
    def on_deactivate_pdp(
        self, msg: DeactivatePdpContextRequest, src: Node, interface: str
    ) -> None:
        key = (msg.imsi, msg.nsapi)
        ctx = self.pdp_contexts.get(key)
        if ctx is None:
            # Idempotent deactivation keeps release races harmless.
            self.send(src, DeactivatePdpContextAccept(imsi=msg.imsi, nsapi=msg.nsapi))
            return
        seq = self._gtp_seq.next()
        self._gtp_pending[seq] = {"ctx": ctx, "requester": src.name}
        header = GtpHeader(msg_type=MSG_DELETE_PDP_REQ, seq=seq, tid=ctx.tid)
        self.send(self._ggsn_peer(), header / GtpDeletePdpContextRequest(nsapi=msg.nsapi))

    def _on_delete_response(
        self, header: GtpHeader, rsp: GtpDeletePdpContextResponse
    ) -> None:
        pending = self._gtp_pending.pop(header.seq, None)
        if pending is None:
            return
        ctx: PdpContext = pending["ctx"]
        if self.pdp_contexts.pop(ctx.key(), None) is not None:
            self._context_gauge.dec()
            self.sim.metrics.counter(f"{self.name}.pdp_deactivations").inc()
        self.send(
            pending["requester"],
            DeactivatePdpContextAccept(imsi=ctx.imsi, nsapi=ctx.nsapi),
        )

    # ------------------------------------------------------------------
    # Network-requested PDP activation (3G TR baseline MT call)
    # ------------------------------------------------------------------
    def _on_pdu_notification(
        self, header: GtpHeader, msg: GtpPduNotificationRequest, src: Node
    ) -> None:
        self.send(
            src,
            GtpHeader(msg_type=MSG_PDU_NOTIFY_RSP, seq=header.seq, tid=header.tid)
            / GtpPduNotificationResponse(),
        )
        mm = self.mm_contexts.get(msg.imsi)
        if mm is None:
            self.sim.metrics.counter(f"{self.name}.notify_unattached").inc()
            return
        self._deliver_downlink(
            msg.imsi,
            RequestPdpContextActivation(
                imsi=msg.imsi,
                nsapi=header.tid.nsapi,
                pdp_address=msg.pdp_address,
            ),
        )

    # ------------------------------------------------------------------
    # READY/STANDBY and GPRS paging (GSM 03.60 §6)
    # ------------------------------------------------------------------
    def _touch(self, imsi: IMSI) -> None:
        mm = self.mm_contexts.get(imsi)
        if mm is not None:
            mm.last_activity = self.sim.now

    def _is_ready(self, mm: MmContext) -> bool:
        if self.ready_timeout is None:
            return True
        return self.sim.now - mm.last_activity < self.ready_timeout

    def _deliver_downlink(self, imsi: IMSI, packet) -> None:
        """Send *packet* toward the subscriber, paging first if the MM
        context has fallen back to STANDBY."""
        mm = self.mm_contexts.get(imsi)
        if mm is None:
            self.sim.metrics.counter(f"{self.name}.downlink_unattached").inc()
            return
        if self._is_ready(mm):
            self.send(mm.access_node, packet)
            return
        if len(mm.paged_queue) >= 64:
            # Bound buffering toward unresponsive subscribers.
            self.sim.metrics.counter(f"{self.name}.paged_queue_drops").inc()
            return
        mm.paged_queue.append(packet)
        if not mm.paging:
            mm.paging = True
            self.sim.metrics.counter(f"{self.name}.gprs_pages").inc()
            self.send(mm.access_node, GprsPaging(imsi=imsi))

    @handles(GprsPagingResponse)
    def on_gprs_paging_response(
        self, msg: GprsPagingResponse, src: Node, interface: str
    ) -> None:
        mm = self.mm_contexts.get(msg.imsi)
        if mm is None:
            return
        mm.access_node = src.name
        mm.last_activity = self.sim.now
        mm.paging = False
        pending, mm.paged_queue = mm.paged_queue, []
        for packet in pending:
            self.send(mm.access_node, packet)

    # ------------------------------------------------------------------
    # User-plane forwarding
    # ------------------------------------------------------------------
    @handles(GbUnitdata)
    def on_gb_unitdata(self, frame: GbUnitdata, src: Node, interface: str) -> None:
        """Uplink: wrap the subscriber PDU into the GTP tunnel."""
        self._touch(frame.imsi)
        ctx = self.pdp_contexts.get((frame.imsi, frame.nsapi))
        if ctx is None:
            self.sim.metrics.counter(f"{self.name}.uplink_no_context").inc()
            return
        if frame.payload is None:
            raise PdpContextError("Gb unitdata without a payload")
        header = GtpHeader(msg_type=MSG_T_PDU, seq=0, tid=ctx.tid)
        header.payload = frame.payload
        self.sim.metrics.counter(f"{self.name}.uplink_pdus").inc()
        self.send(self._ggsn_peer(), header)

    def _downlink_tpdu(self, packet: GtpHeader) -> None:
        tid = packet.tid
        ctx = self.pdp_contexts.get((tid.imsi, tid.nsapi))
        if ctx is None:
            self.sim.metrics.counter(f"{self.name}.downlink_no_context").inc()
            return
        frame = GbUnitdata(imsi=tid.imsi, nsapi=tid.nsapi)
        frame.payload = packet.payload
        self.sim.metrics.counter(f"{self.name}.downlink_pdus").inc()
        self._deliver_downlink(tid.imsi, frame)

    # ------------------------------------------------------------------
    # Introspection used by the experiments
    # ------------------------------------------------------------------
    def context_count(self) -> int:
        return len(self.pdp_contexts)

    def context_residency(self) -> float:
        """Context-seconds held at this SGSN (experiment E11)."""
        return self._context_gauge.integral()
