"""PDP contexts and QoS profiles (GSM 03.60 §13.4 / 09.60).

A PDP context binds a subscriber (IMSI + NSAPI) to a PDP address, a QoS
profile and a GTP tunnel.  vGPRS keeps one *signalling* context per MS
alive from registration onward (paper step 1.3) and activates a second
*voice* context per call (steps 2.9 / 4.8); the 3G TR baseline instead
activates and deactivates a context around every call (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.identities import IMSI, IPv4Address, TunnelId

#: NSAPI conventions used by the vGPRS VMSC.
NSAPI_SIGNALLING = 5
NSAPI_VOICE = 6

#: GSM 02.60 delay classes — 1 is the most demanding.
DELAY_CLASS_REALTIME = 1
DELAY_CLASS_BEST_EFFORT = 4


@dataclass(frozen=True)
class QosProfile:
    """The negotiated quality-of-service subset the experiments use."""

    delay_class: int = DELAY_CLASS_BEST_EFFORT
    peak_kbps: int = 16

    def __post_init__(self) -> None:
        if not 1 <= self.delay_class <= 4:
            raise ValueError(f"delay class must be 1-4, got {self.delay_class}")
        if self.peak_kbps <= 0:
            raise ValueError("peak throughput must be positive")

    @classmethod
    def signalling(cls) -> "QosProfile":
        """Low-priority profile for the H.323 signalling context — the
        paper notes the QoS 'can be set to low priority and network
        resource would not be wasted' (step 1.3)."""
        return cls(delay_class=DELAY_CLASS_BEST_EFFORT, peak_kbps=16)

    @classmethod
    def voice(cls) -> "QosProfile":
        """Real-time profile for the per-call voice context."""
        return cls(delay_class=DELAY_CLASS_REALTIME, peak_kbps=32)


@dataclass
class PdpContext:
    """One activated PDP context, as stored at SGSN, GGSN and VMSC.

    GSM 03.60 lists IMSI, NSAPI, PDP address, QoS negotiated and the
    SGSN/GGSN addresses; ``access_node`` is the simulation's stand-in for
    the BVCI/TLLI radio-side routing info: the node the SGSN forwards
    downlink PDUs to (the VMSC in vGPRS, the subscriber's BSC in the
    3G TR baseline).
    """

    imsi: IMSI
    nsapi: int
    pdp_address: Optional[IPv4Address] = None
    qos: QosProfile = field(default_factory=QosProfile)
    apn: str = "voip.gprs"
    sgsn_name: str = ""
    ggsn_name: str = ""
    access_node: str = ""
    static: bool = False
    activated_at: float = 0.0

    @property
    def tid(self) -> TunnelId:
        """The GTP tunnel identifier for this context."""
        return TunnelId(self.imsi, self.nsapi)

    def key(self) -> tuple:
        return (self.imsi, self.nsapi)
