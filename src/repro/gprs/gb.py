"""Gb-interface framing (GSM 08.14 / BSSGP, abstracted).

:class:`GbUnitdata` carries one subscriber IP packet between the SGSN and
the access side (the BSC's PCU for a GPRS MS, or the VMSC's built-in PCU
in vGPRS).  The ``(imsi, nsapi)`` pair identifies the PDP context, which
is all the SGSN needs to pick the GTP tunnel uplink and the access node
needs to pick the subscriber downlink.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import ByteField, ImsiField


class GbUnitdata(Packet):
    """One LLC-framed subscriber PDU on the Gb interface."""

    name = "Gb_Unitdata"
    show_in_flow = False
    fields = (
        ImsiField("imsi"),
        ByteField("nsapi"),
    )

    def info(self) -> Dict[str, object]:
        return {"imsi": str(self.imsi), "nsapi": self.nsapi}
