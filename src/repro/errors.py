"""Exception hierarchy for the vGPRS reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. scheduling in
    the past, running a stopped simulator)."""


class TraceWindowError(SimulationError):
    """A trace query asked about a message name whose entries were
    evicted by the recorder's retention window (:meth:`TraceRecorder.
    set_limit`) — the answer would be silently wrong, not merely empty."""


class PacketError(ReproError):
    """A packet could not be built or parsed."""


class FieldError(PacketError):
    """A packet field received a value it cannot encode."""


class AddressError(ReproError):
    """An identity (IMSI, MSISDN, IP address, ...) is malformed."""


class FaultPlanError(ReproError):
    """A fault plan could not be parsed, or references a link/node the
    target topology does not have."""


class TopologyError(ReproError):
    """The network topology is inconsistent (unknown node, duplicate link,
    message sent on an unconnected interface)."""


class ProtocolError(ReproError):
    """A protocol state machine received a message it cannot handle in its
    current state."""


class RegistrationError(ProtocolError):
    """A registration (GSM location update, GPRS attach, RAS RRQ) failed."""


class CallSetupError(ProtocolError):
    """A call could not be established."""


class AdmissionError(CallSetupError):
    """The H.323 gatekeeper rejected an admission request (ARJ)."""


class PagingError(CallSetupError):
    """The mobile station did not answer a page."""


class AuthenticationError(ProtocolError):
    """GSM authentication (SRES mismatch) or ciphering setup failed."""


class PdpContextError(ProtocolError):
    """A GPRS PDP context could not be activated, found or deactivated."""


class HandoffError(ProtocolError):
    """An inter-system handoff failed."""


class RoutingError(ReproError):
    """No route exists for a destination (E.164 number or IP address)."""


class SubscriberError(ReproError):
    """A subscriber record is missing or inconsistent (HLR/VLR lookup
    failure, unknown IMSI/MSISDN)."""
