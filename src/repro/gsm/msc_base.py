"""Shared radio-side MSC logic.

The paper's central compatibility claim is that "the GSM signalling
interfaces of the VMSC are exactly the same as that of an MSC" (§2).
This class *is* that shared interface: everything facing the BSC (A), the
VLR (B) and peer MSCs (E) lives here, and both :class:`~repro.gsm.msc.GsmMsc`
and the VMSC (:mod:`repro.core.vmsc`) inherit it unchanged.  Subclasses
differ only in the *network side*, via the abstract hooks:

* ``route_mo_call(conn, setup)`` — MS dialled out (after VLR authorisation);
* ``on_ms_alerting/on_ms_connect/on_ms_disconnect(conn)`` — MT call
  progress from the radio side;
* ``on_registration_complete(conn, ack)`` — VLR confirmed a location
  update (the VMSC inserts GPRS attach + PDP activation + H.323
  registration here, steps 1.3–1.5);
* ``on_uplink_voice(conn, frame)`` — a TCH frame arrived from the MS;
* ``on_assignment_failed(conn)`` — no radio channel (blocking).

Inter-system handoff (Figure 9) is implemented here for both anchor and
target roles, since the paper notes "inter-system handoff between two
VMSCs follows the same procedure" as VMSC-to-MSC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ProtocolError
from repro.identities import IMSI, E164Number
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer, Transactions
from repro.sim.timers import Timer
from repro.packets.bssap import (
    AAlerting,
    ImsiDetachIndication,
    AAssignmentComplete,
    AAssignmentFailure,
    AAssignmentRequest,
    AClearComplete,
    AClearCommand,
    AConnect,
    ADisconnect,
    AHandoverCommand,
    AHandoverComplete,
    AHandoverRequest,
    AHandoverRequestAck,
    AHandoverRequired,
    ALocationUpdate,
    ALocationUpdateAccept,
    APaging,
    APagingResponse,
    ASetup,
    AuthenticationRequest,
    AuthenticationResponse,
    CipheringModeCommand,
    CipheringModeComplete,
    CmServiceAccept,
    CmServiceReject,
    CmServiceRequest,
    TchFrame,
    UmHandoverAccess,
    UmRelease,
    UmReleaseComplete,
    CAUSE_NORMAL,
)
from repro.packets.isup import IsupAnm, IsupIam, IsupRel, IsupRlc, PcmFrame
from repro.packets.map import (
    MapDetachImsi,
    MapPrepareHandover,
    MapPrepareSubsequentHandover,
    MapPrepareHandoverAck,
    MapProcessAccessRequest,
    MapProcessAccessRequestAck,
    MapSendEndSignal,
    MapSendEndSignalAck,
    MapSendInfoForOutgoingCall,
    MapSendInfoForOutgoingCallAck,
    MapUpdateLocationArea,
    MapUpdateLocationAreaAck,
)

#: Paging guard timer (GSM T3113).
T3113_SECONDS = 5.0


@dataclass
class RadioConn:
    """State of one MS's signalling relationship with this (V)MSC."""

    imsi: Optional[IMSI]
    tmsi: Optional[int] = None
    bsc: str = ""
    ti: Optional[int] = None
    purpose: str = ""            # "lu" | "mo" | "mt"
    state: str = "idle"
    calling: Optional[E164Number] = None
    # Handoff state: when set, the MS is served by a remote MSC and voice
    # rides the inter-MSC trunk instead of the local BSC.
    via_msc: Optional[str] = None
    handoff_cic: Optional[int] = None
    page_timer: Optional[Timer] = None
    on_mt_ready: Optional[Callable[["RadioConn"], None]] = None
    on_page_failed: Optional[Callable[["RadioConn"], None]] = None


class MscBase(Node):
    """Radio-facing half of a (V)MSC."""

    def __init__(self, sim, name: str) -> None:
        super().__init__(sim, name)
        self.conns: Dict[IMSI, RadioConn] = {}
        self._conn_by_tmsi: Dict[int, RadioConn] = {}
        self._invoke_seq = Sequencer()
        self._ti_seq = Sequencer(start=0x0100)
        self._vlr_pending = Transactions()
        #: cells this MSC serves: cell name -> BSC node name.
        self.cells: Dict[str, str] = {}
        #: neighbouring cells served by other MSCs: cell -> MSC node name.
        self.neighbor_cells: Dict[str, str] = {}
        self._handoff_cic_seq = Sequencer(start=9000)
        # Target-role handoff state, keyed by ti.
        self._ho_target: Dict[int, dict] = {}
        # Anchor-role handoff state, keyed by ti.
        self._ho_anchor: Dict[int, dict] = {}
        # Handback-to-anchor state, keyed by ti.
        self._ho_back: Dict[int, dict] = {}
        # Intra-MSC inter-BSC handover state, keyed by ti.
        self._ho_intra: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Abstract network-side hooks
    # ------------------------------------------------------------------
    def route_mo_call(self, conn: RadioConn, setup: ASetup) -> None:
        raise NotImplementedError

    def on_ms_alerting(self, conn: RadioConn) -> None:
        raise NotImplementedError

    def on_ms_connect(self, conn: RadioConn) -> None:
        raise NotImplementedError

    def on_ms_disconnect(self, conn: RadioConn, cause: int) -> None:
        raise NotImplementedError

    def on_uplink_voice(self, conn: RadioConn, frame: TchFrame) -> None:
        raise NotImplementedError

    def on_registration_complete(
        self, conn: RadioConn, ack: MapUpdateLocationAreaAck
    ) -> None:
        """Default (classic MSC): immediately confirm to the MS.  The
        VMSC overrides this to run steps 1.3-1.5 first."""
        self.confirm_location_update(conn, ack)

    def on_assignment_failed(self, conn: RadioConn) -> None:
        """No traffic channel: tell the MO caller, or fail the page."""
        self.sim.metrics.counter(f"{self.name}.assignment_failures").inc()
        if conn.purpose == "mo" and conn.bsc:
            self.send(conn.bsc, CmServiceReject(imsi=conn.imsi))
        elif conn.purpose == "mt":
            conn.on_mt_ready = None
            if conn.bsc:
                # Return the paged MS to idle as well.
                self.send(conn.bsc, CmServiceReject(imsi=conn.imsi))
            if conn.on_page_failed is not None:
                cb, conn.on_page_failed = conn.on_page_failed, None
                cb(conn)

    def on_mo_barred(self, conn: RadioConn, setup: ASetup) -> None:
        """Outgoing call rejected by the VLR (step 2.2 failure path)."""
        self.disconnect_ms(conn, cause=CAUSE_NORMAL)

    # ------------------------------------------------------------------
    # Connection bookkeeping
    # ------------------------------------------------------------------
    def _conn_for(
        self, imsi: Optional[IMSI], tmsi: Optional[int] = None, bsc: str = ""
    ) -> RadioConn:
        conn = None
        if imsi is not None:
            conn = self.conns.get(imsi)
        if conn is None and tmsi is not None:
            conn = self._conn_by_tmsi.get(tmsi)
        if conn is None:
            conn = RadioConn(imsi=imsi, tmsi=tmsi)
            if imsi is not None:
                self.conns[imsi] = conn
            if tmsi is not None:
                self._conn_by_tmsi[tmsi] = conn
        if bsc:
            conn.bsc = bsc
        return conn

    def _learn_imsi(self, conn: RadioConn, imsi: IMSI) -> None:
        if conn.imsi is None:
            conn.imsi = imsi
            self.conns[imsi] = conn

    def conn(self, imsi: IMSI) -> RadioConn:
        try:
            return self.conns[imsi]
        except KeyError:
            raise ProtocolError(f"{self.name}: no radio connection for {imsi}") from None

    def _vlr(self) -> Node:
        return self.peer(Interface.B)

    def new_ti(self) -> int:
        return self._ti_seq.next()

    # ------------------------------------------------------------------
    # Location update (paper step 1.1 -> 1.6)
    # ------------------------------------------------------------------
    @handles(ALocationUpdate)
    def on_location_update(self, msg: ALocationUpdate, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi, msg.tmsi, bsc=src.name)
        conn.purpose = "lu"
        conn.state = "lu-pending"
        invoke_id = self._invoke_seq.next()
        self._vlr_pending.open_with_id(invoke_id, conn)
        self.send(
            self._vlr(),
            MapUpdateLocationArea(
                invoke_id=invoke_id, imsi=msg.imsi, tmsi=msg.tmsi, lai=msg.lai
            ),
        )

    @handles(MapUpdateLocationAreaAck)
    def on_update_location_area_ack(
        self, msg: MapUpdateLocationAreaAck, src: Node, interface: str
    ) -> None:
        conn: RadioConn = self._vlr_pending.close(msg.invoke_id)
        if msg.error != 0:
            conn.state = "idle"
            self.sim.metrics.counter(f"{self.name}.lu_failures").inc()
            return
        if msg.imsi is not None:
            self._learn_imsi(conn, msg.imsi)
        if msg.new_tmsi is not None:
            conn.tmsi = msg.new_tmsi
            self._conn_by_tmsi[msg.new_tmsi] = conn
        self.on_registration_complete(conn, msg)

    def confirm_location_update(
        self, conn: RadioConn, ack: MapUpdateLocationAreaAck
    ) -> None:
        """Step 1.6: tell the MS the location update was accepted."""
        conn.state = "idle"
        self.sim.metrics.counter(f"{self.name}.lu_successes").inc()
        self.send(
            conn.bsc,
            ALocationUpdateAccept(
                imsi=conn.imsi, tmsi=conn.tmsi, new_tmsi=ack.new_tmsi
            ),
        )

    @handles(ImsiDetachIndication)
    def on_imsi_detach(self, msg: ImsiDetachIndication, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi, msg.tmsi, bsc=src.name)
        conn.state = "idle"
        self.send(
            self._vlr(),
            MapDetachImsi(
                invoke_id=self._invoke_seq.next(), imsi=msg.imsi, tmsi=msg.tmsi
            ),
        )
        if conn.imsi is not None:
            self.on_ms_detached(conn)

    def on_ms_detached(self, conn: RadioConn) -> None:
        """Subclass hook: the MS powered off (VMSC tears down GPRS and
        gatekeeper state here)."""

    # ------------------------------------------------------------------
    # DTAP relays between the VLR (B) and the BSC (A)
    # ------------------------------------------------------------------
    @handles(AuthenticationRequest)
    def on_auth_request(self, msg: AuthenticationRequest, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        if interface == Interface.B and conn.bsc:
            self.send(conn.bsc, msg)

    @handles(AuthenticationResponse)
    def on_auth_response(self, msg: AuthenticationResponse, src: Node, interface: str) -> None:
        if interface == Interface.A:
            self.send(self._vlr(), msg)

    @handles(CipheringModeCommand)
    def on_ciphering_command(self, msg: CipheringModeCommand, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        if interface == Interface.B and conn.bsc:
            self.send(conn.bsc, msg)

    @handles(CipheringModeComplete)
    def on_ciphering_complete(self, msg: CipheringModeComplete, src: Node, interface: str) -> None:
        if interface == Interface.A:
            self.send(self._vlr(), msg)

    # ------------------------------------------------------------------
    # Access (MO service request / paging response) + assignment
    # ------------------------------------------------------------------
    @handles(CmServiceRequest)
    def on_cm_service_request(self, msg: CmServiceRequest, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi, msg.tmsi, bsc=src.name)
        conn.purpose = "mo"
        conn.state = "access-pending"
        invoke_id = self._invoke_seq.next()
        self._vlr_pending.open_with_id(invoke_id, conn)
        self.send(
            self._vlr(),
            MapProcessAccessRequest(
                invoke_id=invoke_id, imsi=msg.imsi, tmsi=msg.tmsi, access_type=1
            ),
        )

    @handles(MapProcessAccessRequestAck)
    def on_access_request_ack(
        self, msg: MapProcessAccessRequestAck, src: Node, interface: str
    ) -> None:
        conn: RadioConn = self._vlr_pending.close(msg.invoke_id)
        if msg.error != 0:
            conn.state = "idle"
            self.sim.metrics.counter(f"{self.name}.access_failures").inc()
            if conn.on_page_failed is not None:
                cb, conn.on_page_failed = conn.on_page_failed, None
                cb(conn)
            return
        self._learn_imsi(conn, msg.imsi)
        conn.state = "assigning"
        if conn.purpose == "mo":
            self.send(conn.bsc, CmServiceAccept(imsi=conn.imsi))
        self.send(conn.bsc, AAssignmentRequest(imsi=conn.imsi))

    @handles(AAssignmentComplete)
    def on_assignment_complete(
        self, msg: AAssignmentComplete, src: Node, interface: str
    ) -> None:
        conn = self._conn_for(msg.imsi)
        conn.state = "assigned"
        if conn.purpose == "mt":
            # Step 4.5 tail: send the setup instruction to the MS.
            if conn.on_mt_ready is not None:
                cb, conn.on_mt_ready = conn.on_mt_ready, None
                cb(conn)
        # For MO the MS sends Um_Setup on its own once assigned.

    @handles(AAssignmentFailure)
    def on_assignment_failure(
        self, msg: AAssignmentFailure, src: Node, interface: str
    ) -> None:
        conn = self._conn_for(msg.imsi)
        conn.state = "idle"
        self.on_assignment_failed(conn)

    # ------------------------------------------------------------------
    # MO call (paper §4)
    # ------------------------------------------------------------------
    @handles(ASetup)
    def on_a_setup(self, msg: ASetup, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi, bsc=src.name)
        conn.ti = msg.ti
        conn.state = "mo-authorizing"
        # Step 2.2: ask the VLR whether the call is allowed.
        invoke_id = self._invoke_seq.next()
        self._vlr_pending.open_with_id(invoke_id, (conn, msg))
        self.send(
            self._vlr(),
            MapSendInfoForOutgoingCall(
                invoke_id=invoke_id,
                imsi=conn.imsi,
                tmsi=conn.tmsi,
                called=msg.called,
            ),
        )

    @handles(MapSendInfoForOutgoingCallAck)
    def on_outgoing_call_ack(
        self, msg: MapSendInfoForOutgoingCallAck, src: Node, interface: str
    ) -> None:
        conn, setup = self._vlr_pending.close(msg.invoke_id)
        if not msg.allowed:
            conn.state = "idle"
            self.sim.metrics.counter(f"{self.name}.calls_barred").inc()
            self.on_mo_barred(conn, setup)
            return
        conn.state = "mo-routing"
        self.route_mo_call(conn, setup)

    # ------------------------------------------------------------------
    # MT call (paper §5)
    # ------------------------------------------------------------------
    def page(
        self,
        imsi: IMSI,
        on_ready: Callable[[RadioConn], None],
        on_failed: Optional[Callable[[RadioConn], None]] = None,
        lai: str = "",
    ) -> RadioConn:
        """Step 4.4: page the MS in every cell; on response run access +
        assignment, then invoke *on_ready*."""
        conn = self._conn_for(imsi)
        conn.purpose = "mt"
        conn.state = "paging"
        conn.on_mt_ready = on_ready
        conn.on_page_failed = on_failed
        conn.page_timer = Timer(
            self.sim, f"T3113:{imsi}", T3113_SECONDS, lambda: self._page_expired(conn)
        )
        conn.page_timer.start()
        for bsc in self.peers(Interface.A):
            self.send(bsc, APaging(imsi=imsi, tmsi=conn.tmsi, lai=lai))
        return conn

    def _page_expired(self, conn: RadioConn) -> None:
        conn.state = "idle"
        self.sim.metrics.counter(f"{self.name}.page_timeouts").inc()
        conn.on_mt_ready = None
        if conn.on_page_failed is not None:
            cb, conn.on_page_failed = conn.on_page_failed, None
            cb(conn)

    @handles(APagingResponse)
    def on_paging_response(self, msg: APagingResponse, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi, msg.tmsi, bsc=src.name)
        if conn.page_timer is not None:
            conn.page_timer.stop()
            conn.page_timer = None
        if conn.state != "paging":
            return
        conn.state = "access-pending"
        invoke_id = self._invoke_seq.next()
        self._vlr_pending.open_with_id(invoke_id, conn)
        self.send(
            self._vlr(),
            MapProcessAccessRequest(
                invoke_id=invoke_id, imsi=msg.imsi, tmsi=msg.tmsi, access_type=2
            ),
        )

    def send_setup_to_ms(self, conn: RadioConn, calling: Optional[E164Number]) -> int:
        """Send A_Setup down the chain (step 4.5)."""
        if conn.ti is None:
            conn.ti = self.new_ti()
        self.send(conn.bsc, ASetup(ti=conn.ti, imsi=conn.imsi, calling=calling))
        return conn.ti

    @handles(AAlerting)
    def on_a_alerting(self, msg: AAlerting, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        if self._relay_for_handoff(msg, conn, interface):
            return
        conn.state = "mt-alerting"
        self.on_ms_alerting(conn)

    @handles(AConnect)
    def on_a_connect(self, msg: AConnect, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        if self._relay_for_handoff(msg, conn, interface):
            return
        conn.state = "in-call"
        self.on_ms_connect(conn)

    # ------------------------------------------------------------------
    # Downlink call-control helpers (shared by MO/MT flows)
    # ------------------------------------------------------------------
    def _send_cc_down(self, conn: RadioConn, msg) -> None:
        """Send a CC message toward the MS: directly to the BSC, or via
        the serving MSC over the E interface after handoff."""
        if conn.via_msc is not None:
            self.send(conn.via_msc, msg, interface=Interface.E)
        else:
            self.send(conn.bsc, msg)

    def _relay_for_handoff(self, msg, conn: RadioConn, interface: str) -> bool:
        """Handoff DTAP relaying.  Anchor->target messages arrive on the
        E interface and continue down the target's radio chain; uplink
        messages at the serving (target) MSC continue to the anchor.
        Returns True when the message was relayed."""
        if interface == Interface.E:
            if conn.purpose == "ho-serving":
                # Target role: the anchor sent a downlink message for an
                # MS we serve after handoff — continue down the radio.
                self.send(conn.bsc, msg)
                return True
            # Anchor role: uplink from the remote radio — process here.
            return False
        if conn.purpose == "ho-serving":
            ho = self._ho_target.get(conn.ti or -1)
            if ho is not None:
                self.send(ho["anchor"], msg, interface=Interface.E)
                return True
        return False

    def send_alerting_to_ms(self, conn: RadioConn) -> None:
        """Step 2.7: trigger the ringback tone at the MS."""
        self._send_cc_down(conn, AAlerting(ti=conn.ti or 0, imsi=conn.imsi))

    def send_connect_to_ms(self, conn: RadioConn) -> None:
        """Step 2.8: the called party answered."""
        conn.state = "in-call"
        self._send_cc_down(conn, AConnect(ti=conn.ti or 0, imsi=conn.imsi))

    def disconnect_ms(self, conn: RadioConn, cause: int = CAUSE_NORMAL) -> None:
        """Network-initiated disconnect toward the MS."""
        self._send_cc_down(conn, ADisconnect(ti=conn.ti or 0, imsi=conn.imsi, cause=cause))

    # ------------------------------------------------------------------
    # Release (paper steps 3.1-3.4 radio half)
    # ------------------------------------------------------------------
    @handles(ADisconnect)
    def on_a_disconnect(self, msg: ADisconnect, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        if self._relay_for_handoff(msg, conn, interface):
            return
        conn.state = "releasing"
        self.on_ms_disconnect(conn, msg.cause)
        self._send_cc_down(conn, UmRelease(ti=msg.ti, imsi=msg.imsi))

    @handles(UmRelease)
    def on_um_release(self, msg: UmRelease, src: Node, interface: str) -> None:
        """MS answered a network-initiated disconnect."""
        conn = self._conn_for(msg.imsi)
        if self._relay_for_handoff(msg, conn, interface):
            return
        self._send_cc_down(conn, UmReleaseComplete(ti=msg.ti, imsi=msg.imsi))
        self.clear_radio(conn)

    @handles(UmReleaseComplete)
    def on_um_release_complete(self, msg: UmReleaseComplete, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        if self._relay_for_handoff(msg, conn, interface):
            return
        self.clear_radio(conn)

    def clear_radio(self, conn: RadioConn) -> None:
        """Free the radio resources after a call (or, post-handoff,
        release the inter-MSC trunk; the serving MSC then clears its own
        radio on MAP_Send_End_Signal_ack)."""
        conn.state = "idle"
        if conn.via_msc is not None:
            self._release_handoff_trunk(conn)
            conn.via_msc = None
            conn.handoff_cic = None
            conn.ti = None
            return
        conn.ti = None
        conn.purpose = ""
        self.send(conn.bsc, AClearCommand(imsi=conn.imsi))

    @handles(AClearComplete)
    def on_clear_complete(self, msg: AClearComplete, src: Node, interface: str) -> None:
        self.sim.metrics.counter(f"{self.name}.radio_clears").inc()

    # ------------------------------------------------------------------
    # Circuit voice
    # ------------------------------------------------------------------
    @handles(TchFrame)
    def on_tch_frame(self, frame: TchFrame, src: Node, interface: str) -> None:
        if frame.imsi is None:
            return
        conn = self._conn_for(frame.imsi)
        if conn.purpose == "ho-serving":
            ho = self._ho_target.get(conn.ti or -1)
            if ho is not None and ho.get("cic") is not None:
                pcm = PcmFrame(cic=ho["cic"], seq=frame.seq,
                               gen_time_us=frame.gen_time_us)
                self.send(ho["anchor"], pcm, interface=Interface.E)
            return
        self.on_uplink_voice(conn, frame)

    def send_voice_to_ms(self, conn: RadioConn, frame: TchFrame) -> None:
        if conn.via_msc is not None and conn.handoff_cic is not None:
            pcm = PcmFrame(cic=conn.handoff_cic, seq=frame.seq,
                           gen_time_us=frame.gen_time_us)
            self.send(conn.via_msc, pcm)
            return
        self.send(conn.bsc, frame)

    # ------------------------------------------------------------------
    # Inter-system handoff: anchor role (Figure 9)
    # ------------------------------------------------------------------
    @handles(AHandoverRequired)
    def on_handover_required(self, msg: AHandoverRequired, src: Node, interface: str) -> None:
        conn = self._conn_for(msg.imsi)
        local_bsc = self.cells.get(msg.target_cell)
        if local_bsc is not None and conn.via_msc is None:
            # Intra-MSC inter-BSC handover: no E interface involved; the
            # MSC moves the call between its own BSCs.
            if local_bsc == conn.bsc:
                return  # already there
            self._ho_intra[msg.ti] = {
                "conn": conn,
                "old_bsc": conn.bsc,
                "new_bsc": local_bsc,
                "target_cell": msg.target_cell,
                "span": self.sim.spans.open(
                    "handoff",
                    keys={"imsi": msg.imsi, "ti": msg.ti},
                    node=self.name,
                    kind="intra",
                    target_cell=msg.target_cell,
                ),
            }
            self.send(local_bsc, AHandoverRequest(imsi=msg.imsi, ti=msg.ti))
            return
        if conn.purpose == "ho-serving":
            # Subsequent handoff: the anchor owns the call; forward the
            # requirement there (GSM 09.02 Prepare Subsequent Handover).
            ho = self._ho_target.get(conn.ti or -1)
            if ho is not None:
                self.send(
                    ho["anchor"],
                    MapPrepareSubsequentHandover(
                        invoke_id=self._invoke_seq.next(),
                        imsi=msg.imsi,
                        call_ref=msg.ti,
                        target_cell=msg.target_cell,
                    ),
                    interface=Interface.E,
                )
            return
        target_msc = self.neighbor_cells.get(msg.target_cell)
        if target_msc is None:
            self.sim.metrics.counter(f"{self.name}.handoff_no_target").inc()
            return
        invoke_id = self._invoke_seq.next()
        self._ho_anchor[msg.ti] = {
            "conn": conn,
            "target_msc": target_msc,
            "target_cell": msg.target_cell,
            "invoke_id": invoke_id,
            "span": self.sim.spans.open(
                "handoff",
                keys={"imsi": msg.imsi, "ti": msg.ti},
                node=self.name,
                kind="inter",
                target_msc=target_msc,
                target_cell=msg.target_cell,
            ),
        }
        self._vlr_pending.open_with_id(invoke_id, msg.ti)
        self.send(
            target_msc,
            MapPrepareHandover(
                invoke_id=invoke_id,
                imsi=msg.imsi,
                call_ref=msg.ti,
                target_cell=msg.target_cell,
            ),
            interface=Interface.E,
        )

    @handles(MapPrepareSubsequentHandover)
    def on_prepare_subsequent_handover(
        self, msg: MapPrepareSubsequentHandover, src: Node, interface: str
    ) -> None:
        """Anchor role: the serving MSC reports the MS must move again.

        * Back into one of our own cells: prepare the local radio, order
          the MS over (command relayed through the serving MSC) and, on
          completion, drop the E-interface trunk — the call returns to
          the plain Figure 9(a) path.
        * Into a third system's cell: run the standard Figure 9 handoff
          toward that system; the old serving leg is released once the
          new one answers."""
        conn = self._conn_for(msg.imsi)
        local_bsc = self.cells.get(msg.target_cell)
        if local_bsc is not None:
            self._ho_back[msg.call_ref] = {
                "conn": conn,
                "serving_msc": src.name,
                "target_cell": msg.target_cell,
                "bsc": local_bsc,
                "span": self.sim.spans.open(
                    "handoff",
                    keys={"imsi": msg.imsi, "ti": msg.call_ref},
                    node=self.name,
                    kind="handback",
                    target_cell=msg.target_cell,
                ),
            }
            self.send(local_bsc, AHandoverRequest(imsi=msg.imsi, ti=msg.call_ref))
            return
        # Third-system case: reuse the standard anchor path.
        self.on_handover_required(
            AHandoverRequired(
                imsi=msg.imsi, ti=msg.call_ref, target_cell=msg.target_cell
            ),
            src,
            Interface.A,
        )

    @handles(MapPrepareHandoverAck)
    def on_prepare_handover_ack(
        self, msg: MapPrepareHandoverAck, src: Node, interface: str
    ) -> None:
        ti = self._vlr_pending.close(msg.invoke_id)
        ho = self._ho_anchor.get(ti)
        if ho is None:
            return
        if msg.error != 0 or msg.handover_number is None:
            failed = self._ho_anchor.pop(ti)
            span = failed.get("span")
            if span is not None:
                span.close(status="failed")
            self.sim.metrics.counter(f"{self.name}.handoff_failures").inc()
            return
        conn: RadioConn = ho["conn"]
        # Set up the E-interface circuit to the target MSC, then order
        # the MS over.
        cic = self._handoff_cic_seq.next()
        ho["cic"] = cic
        self.send(
            ho["target_msc"],
            IsupIam(cic=cic, called=msg.handover_number),
            interface=Interface.E,
        )
        command = AHandoverCommand(
            ti=ti, imsi=conn.imsi, target_cell=ho["target_cell"]
        )
        if conn.via_msc is not None:
            # Subsequent handoff to a third system: the MS is currently
            # on the serving MSC's radio.
            self.send(conn.via_msc, command, interface=Interface.E)
        else:
            self.send(conn.bsc, command)

    @handles(MapSendEndSignal)
    def on_send_end_signal(self, msg: MapSendEndSignal, src: Node, interface: str) -> None:
        """Target reports the MS arrived: switch the voice path to the
        inter-MSC trunk; the anchor stays in the call path (Figure 9b)."""
        ho = self._ho_anchor.get(msg.call_ref)
        if ho is None:
            return
        conn: RadioConn = ho["conn"]
        old_via, old_cic = conn.via_msc, conn.handoff_cic
        old_bsc = conn.bsc
        conn.via_msc = src.name
        conn.handoff_cic = ho["cic"]
        span = ho.get("span")
        if span is not None:
            span.close(status="ok")
        self.sim.metrics.counter(f"{self.name}.handoffs_completed").inc()
        self.sim.trace.note(
            self.name,
            "HANDOFF_PATH_SWITCHED",
            imsi=str(conn.imsi),
            via=src.name,
        )
        if old_via is not None and old_cic is not None:
            # Subsequent handoff: release the trunk to the previous
            # serving MSC (which then clears its own radio).
            self.send(old_via, IsupRel(cic=old_cic), interface=Interface.E)
            self.send(
                old_via,
                MapSendEndSignalAck(invoke_id=0, call_ref=msg.call_ref),
                interface=Interface.E,
            )
        else:
            # First handoff: release the old local radio channel.
            self.send(old_bsc, AClearCommand(imsi=conn.imsi))

    def _release_handoff_trunk(self, conn: RadioConn) -> None:
        if conn.handoff_cic is None or conn.via_msc is None:
            return
        self.send(conn.via_msc, IsupRel(cic=conn.handoff_cic), interface=Interface.E)
        self.send(
            conn.via_msc,
            MapSendEndSignalAck(invoke_id=0, call_ref=conn.ti or 0),
            interface=Interface.E,
        )

    # ------------------------------------------------------------------
    # Inter-system handoff: target role
    # ------------------------------------------------------------------
    #: Prefix for handover numbers; combined with the node's country code.
    handover_number_cc = "886"
    handover_number_prefix = "93900"

    @handles(MapPrepareHandover)
    def on_prepare_handover(self, msg: MapPrepareHandover, src: Node, interface: str) -> None:
        bsc = self.cells.get(msg.target_cell)
        if bsc is None:
            self.send(
                src,
                MapPrepareHandoverAck(invoke_id=msg.invoke_id, error=1),
                interface=Interface.E,
            )
            return
        self._ho_target[msg.call_ref] = {
            "imsi": msg.imsi,
            "anchor": src.name,
            "bsc": bsc,
            "invoke_id": msg.invoke_id,
            "cic": None,
        }
        self.send(bsc, AHandoverRequest(imsi=msg.imsi, ti=msg.call_ref))

    @handles(AHandoverRequestAck)
    def on_handover_request_ack(self, msg: AHandoverRequestAck, src: Node, interface: str) -> None:
        intra = self._ho_intra.get(msg.ti)
        if intra is not None:
            conn: RadioConn = intra["conn"]
            self.send(
                intra["old_bsc"],
                AHandoverCommand(
                    ti=msg.ti, imsi=conn.imsi,
                    target_cell=intra["target_cell"],
                ),
            )
            return
        back = self._ho_back.get(msg.ti)
        if back is not None:
            # Local radio reserved for the handback: order the MS over,
            # relaying the command through the serving MSC.
            conn: RadioConn = back["conn"]
            self.send(
                back["serving_msc"],
                AHandoverCommand(
                    ti=msg.ti, imsi=conn.imsi, target_cell=back["target_cell"]
                ),
                interface=Interface.E,
            )
            return
        ho = self._ho_target.get(msg.ti)
        if ho is None:
            return
        number = E164Number(
            self.handover_number_cc,
            f"{self.handover_number_prefix}{msg.ti % 10000:04d}",
        )
        ho["handover_number"] = number
        self.send(
            ho["anchor"],
            MapPrepareHandoverAck(invoke_id=ho["invoke_id"], handover_number=number),
            interface=Interface.E,
        )

    @handles(AHandoverCommand)
    def on_handover_command_relay(
        self, msg: AHandoverCommand, src: Node, interface: str
    ) -> None:
        if interface != Interface.E:
            self.on_unhandled(msg, src, interface)
            return
        conn = self._conn_for(msg.imsi)
        if conn.bsc:
            self.send(conn.bsc, msg)

    @handles(UmHandoverAccess)
    def on_handover_access(self, msg: UmHandoverAccess, src: Node, interface: str) -> None:
        self.sim.metrics.counter(f"{self.name}.handover_accesses").inc()

    @handles(AHandoverComplete)
    def on_handover_complete(self, msg: AHandoverComplete, src: Node, interface: str) -> None:
        intra = self._ho_intra.pop(msg.ti, None)
        if intra is not None:
            conn = intra["conn"]
            conn.bsc = intra["new_bsc"]
            span = intra.get("span")
            if span is not None:
                span.close(status="ok")
            self.send(intra["old_bsc"], AClearCommand(imsi=conn.imsi))
            self.sim.metrics.counter(f"{self.name}.intra_handovers").inc()
            return
        back = self._ho_back.pop(msg.ti, None)
        if back is not None:
            conn: RadioConn = back["conn"]
            old_serving = conn.via_msc
            conn.bsc = back["bsc"]
            # Release the E-interface trunk and let the old serving MSC
            # clear its radio.
            self._release_handoff_trunk(conn)
            conn.via_msc = None
            conn.handoff_cic = None
            span = back.get("span")
            if span is not None:
                span.close(status="ok")
            anchor = self._ho_anchor.pop(msg.ti, None)
            if anchor is not None:
                anchor_span = anchor.get("span")
                if anchor_span is not None:
                    anchor_span.close(status="ok")
            self.sim.metrics.counter(f"{self.name}.handbacks_completed").inc()
            self.sim.trace.note(
                self.name, "HANDBACK_PATH_RESTORED", imsi=str(conn.imsi),
                from_=old_serving or "-",
            )
            return
        ho = self._ho_target.get(msg.ti)
        if ho is None:
            return
        conn = self._conn_for(ho["imsi"], bsc=src.name)
        conn.ti = msg.ti
        conn.state = "in-call"
        conn.purpose = "ho-serving"
        self.send(
            ho["anchor"],
            IsupAnm(cic=ho["cic"] or 0),
            interface=Interface.E,
        )
        self.send(
            ho["anchor"],
            MapSendEndSignal(invoke_id=ho["invoke_id"], imsi=ho["imsi"], call_ref=msg.ti),
            interface=Interface.E,
        )

    @handles(MapSendEndSignalAck)
    def on_send_end_signal_ack(self, msg: MapSendEndSignalAck, src: Node, interface: str) -> None:
        ho = self._ho_target.pop(msg.call_ref, None)
        if ho is None:
            return
        conn = self._conn_for(ho["imsi"])
        self.clear_radio(conn)

    # ------------------------------------------------------------------
    # E-interface trunk events (both roles)
    # ------------------------------------------------------------------
    @handles(IsupIam)
    def on_isup_iam(self, msg: IsupIam, src: Node, interface: str) -> None:
        if interface != Interface.E:
            self.on_unhandled(msg, src, interface)
            return
        # Anchor's trunk toward us (target role): match by number.
        for ho in self._ho_target.values():
            if ho.get("handover_number") == msg.called and ho["cic"] is None:
                ho["cic"] = msg.cic
                return
        self.sim.metrics.counter(f"{self.name}.e_iam_unmatched").inc()

    @handles(IsupAnm)
    def on_isup_anm(self, msg: IsupAnm, src: Node, interface: str) -> None:
        if interface == Interface.E:
            self.sim.metrics.counter(f"{self.name}.e_trunk_answered").inc()

    @handles(IsupRel)
    def on_isup_rel(self, msg: IsupRel, src: Node, interface: str) -> None:
        if interface == Interface.E:
            self.send(src, IsupRlc(cic=msg.cic), interface=Interface.E)

    @handles(IsupRlc)
    def on_isup_rlc(self, msg: IsupRlc, src: Node, interface: str) -> None:
        if interface == Interface.E:
            self.sim.metrics.counter(f"{self.name}.e_trunk_released").inc()

    @handles(PcmFrame)
    def on_pcm_frame(self, frame: PcmFrame, src: Node, interface: str) -> None:
        if interface == Interface.E:
            self._on_e_trunk_voice(frame, src)

    def _on_e_trunk_voice(self, frame: PcmFrame, src: Node) -> None:
        """Voice arriving over an inter-MSC trunk.

        Target role: forward to the MS as a TCH frame.  Anchor role: feed
        into the network-side voice path as if it came from the radio.
        """
        for ho in self._ho_target.values():
            if ho.get("cic") == frame.cic:
                conn = self._conn_for(ho["imsi"])
                tch = TchFrame(
                    ti=conn.ti or 0,
                    imsi=conn.imsi,
                    seq=frame.seq,
                    gen_time_us=frame.gen_time_us,
                )
                self.send(conn.bsc, tch)
                return
        # Anchor role: uplink voice from the remote radio.
        for conn in self.conns.values():
            if conn.handoff_cic == frame.cic and conn.via_msc == src.name:
                tch = TchFrame(
                    ti=conn.ti or 0,
                    imsi=conn.imsi,
                    seq=frame.seq,
                    gen_time_us=frame.gen_time_us,
                )
                self.on_uplink_voice(conn, tch)
                return
