"""Visitor Location Register.

The VLR tracks visiting subscribers for one (V)MSC service area and runs
the security procedures of the paper's figures:

* location updating (step 1.1/1.2): fetch triplets from the HLR,
  challenge the MS, register with the HLR, download the profile, start
  ciphering, allocate a TMSI and confirm to the (V)MSC;
* access requests (steps 2.1/4.5): authenticate + cipher before a call;
* outgoing-call authorisation (step 2.2), enforcing the profile's
  international-call permission;
* roaming-number allocation for classic GSM call delivery (Figure 7).

Authentication/ciphering DTAP is exchanged with the MS *through* the
(V)MSC — the VLR itself never talks to the radio network directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.identities import IMSI, E164Number
from repro.gsm.subscriber import SubscriberProfile
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer, Transactions
from repro.packets.bssap import (
    AuthenticationRequest,
    AuthenticationResponse,
    CipheringModeCommand,
    CipheringModeComplete,
)
from repro.packets.map import (
    ERR_ABSENT_SUBSCRIBER,
    MapDetachImsi,
    ERR_CALL_BARRED,
    ERR_SYSTEM_FAILURE,
    ERR_UNKNOWN_SUBSCRIBER,
    MapCancelLocation,
    MapCancelLocationAck,
    MapInsertSubsData,
    MapInsertSubsDataAck,
    MapProcessAccessRequest,
    MapProcessAccessRequestAck,
    MapProvideRoamingNumber,
    MapProvideRoamingNumberAck,
    MapSendAuthInfo,
    MapSendAuthInfoAck,
    MapSendInfoForIncomingCall,
    MapSendInfoForIncomingCallAck,
    MapSendInfoForOutgoingCall,
    MapSendInfoForOutgoingCallAck,
    MapUpdateLocation,
    MapUpdateLocationAck,
    MapUpdateLocationAreaAck,
    MapUpdateLocationArea,
)


@dataclass
class VisitorRecord:
    """Per-visitor state held while the subscriber roams in this area."""

    imsi: IMSI
    msc_name: str
    lai: str = ""
    tmsi: Optional[int] = None
    msisdn: Optional[E164Number] = None
    profile: SubscriberProfile = field(default_factory=SubscriberProfile)
    ciphered: bool = False
    attached: bool = False
    sres_expected: bytes = b""
    kc: bytes = b""


@dataclass
class _Procedure:
    """One in-flight security procedure (location update or access)."""

    kind: str                      # "lu" | "access"
    imsi: IMSI
    msc_name: str
    invoke_id: int                 # the (V)MSC's original invoke id
    access_type: int = 0


class Vlr(Node):
    """The visitor location register."""

    def __init__(
        self,
        sim,
        name: str = "VLR",
        country_code: str = "886",
        msrn_prefix: str = "93600",
    ) -> None:
        super().__init__(sim, name)
        self.country_code = country_code
        self.msrn_prefix = msrn_prefix
        self.visitors: Dict[IMSI, VisitorRecord] = {}
        self._by_tmsi: Dict[int, IMSI] = {}
        self._by_msrn: Dict[E164Number, IMSI] = {}
        self._tmsi_seq = Sequencer(start=0x10000001)
        self._msrn_seq = Sequencer(start=1)
        self._invoke_seq = Sequencer(start=1000)
        self._hlr_pending = Transactions()
        self._procedures: Dict[IMSI, _Procedure] = {}

    # ------------------------------------------------------------------
    # Identity resolution
    # ------------------------------------------------------------------
    def _resolve(self, imsi: Optional[IMSI], tmsi: Optional[int]) -> Optional[IMSI]:
        if imsi is not None:
            return imsi
        if tmsi is not None:
            return self._by_tmsi.get(tmsi)
        return None

    def visitor(self, imsi: IMSI) -> Optional[VisitorRecord]:
        return self.visitors.get(imsi)

    # ------------------------------------------------------------------
    # Location update (paper steps 1.1 / 1.2)
    # ------------------------------------------------------------------
    @handles(MapUpdateLocationArea)
    def on_update_location_area(
        self, msg: MapUpdateLocationArea, src: Node, interface: str
    ) -> None:
        imsi = self._resolve(msg.imsi, msg.tmsi)
        if imsi is None:
            self.send(
                src,
                MapUpdateLocationAreaAck(
                    invoke_id=msg.invoke_id, error=ERR_UNKNOWN_SUBSCRIBER
                ),
            )
            return
        record = self.visitors.get(imsi)
        if record is None:
            record = VisitorRecord(imsi=imsi, msc_name=src.name)
            self.visitors[imsi] = record
        record.msc_name = src.name
        record.lai = msg.lai
        if imsi in self._procedures:
            # One security procedure at a time per subscriber: a second
            # would hijack the pending challenge's response.
            self.sim.metrics.counter(f"{self.name}.procedure_collisions").inc()
            self.send(
                src,
                MapUpdateLocationAreaAck(
                    invoke_id=msg.invoke_id, error=ERR_SYSTEM_FAILURE
                ),
            )
            return
        self._procedures[imsi] = _Procedure(
            kind="lu", imsi=imsi, msc_name=src.name, invoke_id=msg.invoke_id
        )
        self._request_auth_info(imsi)

    def _request_auth_info(self, imsi: IMSI) -> None:
        invoke_id = self._invoke_seq.next()
        self._hlr_pending.open_with_id(invoke_id, imsi)
        self.send(self._hlr(), MapSendAuthInfo(invoke_id=invoke_id, imsi=imsi))

    def _hlr(self) -> Node:
        return self.peer("D")

    @handles(MapSendAuthInfoAck)
    def on_auth_info(self, msg: MapSendAuthInfoAck, src: Node, interface: str) -> None:
        imsi = self._hlr_pending.try_close(msg.invoke_id)
        proc = self._procedures.get(imsi) if imsi is not None else None
        if proc is None:
            return
        if msg.error != 0:
            self._fail_procedure(proc, msg.error)
            return
        record = self.visitors[imsi]
        record.sres_expected = msg.sres
        record.kc = msg.kc
        # Challenge the MS through the (V)MSC.
        self.send(proc.msc_name, AuthenticationRequest(imsi=imsi, rand=msg.rand))

    @handles(AuthenticationResponse)
    def on_auth_response(
        self, msg: AuthenticationResponse, src: Node, interface: str
    ) -> None:
        imsi = msg.imsi
        proc = self._procedures.get(imsi) if imsi is not None else None
        record = self.visitors.get(imsi) if imsi is not None else None
        if proc is None or record is None:
            return
        if msg.sres != record.sres_expected:
            self.sim.metrics.counter(f"{self.name}.auth_failures").inc()
            self._fail_procedure(proc, ERR_SYSTEM_FAILURE)
            return
        self.sim.metrics.counter(f"{self.name}.auth_successes").inc()
        if proc.kind == "lu":
            # Register with the HLR before ciphering + final ack.
            invoke_id = self._invoke_seq.next()
            self._hlr_pending.open_with_id(invoke_id, imsi)
            self.send(
                self._hlr(),
                MapUpdateLocation(
                    invoke_id=invoke_id,
                    imsi=imsi,
                    vlr_number=self.name,
                    msc_number=proc.msc_name,
                ),
            )
        else:
            # Access request: cipher immediately after authentication.
            self.send(proc.msc_name, CipheringModeCommand(imsi=imsi))

    @handles(MapInsertSubsData)
    def on_insert_subs_data(
        self, msg: MapInsertSubsData, src: Node, interface: str
    ) -> None:
        record = self.visitors.get(msg.imsi)
        if record is not None:
            record.msisdn = msg.msisdn
            record.profile = SubscriberProfile(
                international_allowed=msg.international_allowed,
                gprs_allowed=msg.gprs_allowed,
            )
        self.send(src, MapInsertSubsDataAck(invoke_id=msg.invoke_id))

    @handles(MapUpdateLocationAck)
    def on_update_location_ack(
        self, msg: MapUpdateLocationAck, src: Node, interface: str
    ) -> None:
        imsi = self._hlr_pending.try_close(msg.invoke_id)
        proc = self._procedures.get(imsi) if imsi is not None else None
        if proc is None:
            return
        if msg.error != 0:
            self._fail_procedure(proc, msg.error)
            return
        # "The VLR then sets up the standard GSM ciphering with the MS."
        self.send(proc.msc_name, CipheringModeCommand(imsi=imsi))

    @handles(CipheringModeComplete)
    def on_ciphering_complete(
        self, msg: CipheringModeComplete, src: Node, interface: str
    ) -> None:
        imsi = msg.imsi
        proc = self._procedures.pop(imsi, None) if imsi is not None else None
        record = self.visitors.get(imsi) if imsi is not None else None
        if proc is None or record is None:
            return
        record.ciphered = True
        if proc.kind == "lu":
            if record.tmsi is None:
                record.tmsi = self._tmsi_seq.next()
                self._by_tmsi[record.tmsi] = imsi
            record.attached = True
            self.send(
                proc.msc_name,
                MapUpdateLocationAreaAck(
                    invoke_id=proc.invoke_id,
                    imsi=imsi,
                    new_tmsi=record.tmsi,
                    msisdn=record.msisdn,
                ),
            )
        else:
            self.send(
                proc.msc_name,
                MapProcessAccessRequestAck(invoke_id=proc.invoke_id, imsi=imsi),
            )

    def _fail_procedure(self, proc: _Procedure, error: int) -> None:
        self._procedures.pop(proc.imsi, None)
        if proc.kind == "lu":
            self.send(
                proc.msc_name,
                MapUpdateLocationAreaAck(invoke_id=proc.invoke_id, error=error),
            )
        else:
            self.send(
                proc.msc_name,
                MapProcessAccessRequestAck(
                    invoke_id=proc.invoke_id, imsi=proc.imsi, error=error
                ),
            )

    # ------------------------------------------------------------------
    # Access requests (steps 2.1 / 4.5)
    # ------------------------------------------------------------------
    @handles(MapProcessAccessRequest)
    def on_process_access_request(
        self, msg: MapProcessAccessRequest, src: Node, interface: str
    ) -> None:
        imsi = self._resolve(msg.imsi, msg.tmsi)
        record = self.visitors.get(imsi) if imsi is not None else None
        if record is None:
            fallback = imsi if imsi is not None else IMSI("000000")
            self.send(
                src,
                MapProcessAccessRequestAck(
                    invoke_id=msg.invoke_id,
                    imsi=fallback,
                    error=ERR_UNKNOWN_SUBSCRIBER,
                ),
            )
            return
        if imsi in self._procedures:
            self.sim.metrics.counter(f"{self.name}.procedure_collisions").inc()
            self.send(
                src,
                MapProcessAccessRequestAck(
                    invoke_id=msg.invoke_id, imsi=imsi, error=ERR_SYSTEM_FAILURE
                ),
            )
            return
        self._procedures[imsi] = _Procedure(
            kind="access",
            imsi=imsi,
            msc_name=src.name,
            invoke_id=msg.invoke_id,
            access_type=msg.access_type,
        )
        self._request_auth_info(imsi)

    # ------------------------------------------------------------------
    # Outgoing-call authorisation (step 2.2)
    # ------------------------------------------------------------------
    @handles(MapSendInfoForOutgoingCall)
    def on_send_info_for_outgoing_call(
        self, msg: MapSendInfoForOutgoingCall, src: Node, interface: str
    ) -> None:
        imsi = self._resolve(msg.imsi, msg.tmsi)
        record = self.visitors.get(imsi) if imsi is not None else None
        if record is None or not record.attached:
            self.send(
                src,
                MapSendInfoForOutgoingCallAck(
                    invoke_id=msg.invoke_id,
                    allowed=False,
                    error=ERR_UNKNOWN_SUBSCRIBER,
                ),
            )
            return
        international = msg.called.is_international_from(self.country_code)
        allowed = record.profile.international_allowed or not international
        self.send(
            src,
            MapSendInfoForOutgoingCallAck(
                invoke_id=msg.invoke_id,
                allowed=allowed,
                error=0 if allowed else ERR_CALL_BARRED,
            ),
        )

    # ------------------------------------------------------------------
    # Incoming calls / roaming numbers (classic GSM delivery, Figure 7)
    # ------------------------------------------------------------------
    @handles(MapProvideRoamingNumber)
    def on_provide_roaming_number(
        self, msg: MapProvideRoamingNumber, src: Node, interface: str
    ) -> None:
        record = self.visitors.get(msg.imsi)
        if record is None or not record.attached:
            self.send(
                src,
                MapProvideRoamingNumberAck(
                    invoke_id=msg.invoke_id, error=ERR_ABSENT_SUBSCRIBER
                ),
            )
            return
        msrn = E164Number(
            self.country_code, f"{self.msrn_prefix}{self._msrn_seq.next():04d}"
        )
        self._by_msrn[msrn] = msg.imsi
        self.send(
            src,
            MapProvideRoamingNumberAck(invoke_id=msg.invoke_id, msrn=msrn),
        )

    @handles(MapSendInfoForIncomingCall)
    def on_send_info_for_incoming_call(
        self, msg: MapSendInfoForIncomingCall, src: Node, interface: str
    ) -> None:
        imsi = msg.imsi
        if imsi is None and msg.msrn is not None:
            imsi = self._by_msrn.pop(msg.msrn, None)
        record = self.visitors.get(imsi) if imsi is not None else None
        if record is None or not record.attached:
            self.send(
                src,
                MapSendInfoForIncomingCallAck(
                    invoke_id=msg.invoke_id,
                    reachable=False,
                    error=ERR_ABSENT_SUBSCRIBER,
                ),
            )
            return
        self.send(
            src,
            MapSendInfoForIncomingCallAck(
                invoke_id=msg.invoke_id, imsi=imsi, reachable=True
            ),
        )

    @handles(MapDetachImsi)
    def on_detach_imsi(self, msg: MapDetachImsi, src: Node, interface: str) -> None:
        imsi = self._resolve(msg.imsi, msg.tmsi)
        record = self.visitors.get(imsi) if imsi is not None else None
        if record is not None:
            record.attached = False
            record.ciphered = False
        # IMSI detach is unacknowledged (the MS is powering off).

    # ------------------------------------------------------------------
    # Departure (MAP_Cancel_Location from the HLR)
    # ------------------------------------------------------------------
    @handles(MapCancelLocation)
    def on_cancel_location(
        self, msg: MapCancelLocation, src: Node, interface: str
    ) -> None:
        record = self.visitors.pop(msg.imsi, None)
        if record is not None and record.tmsi is not None:
            self._by_tmsi.pop(record.tmsi, None)
        self.send(src, MapCancelLocationAck(invoke_id=msg.invoke_id))
