"""Classic GSM MSC — the circuit-switched baseline the VMSC replaces.

Network side: ISUP trunks toward the PSTN/GMSC.  MO calls become IAMs;
incoming IAMs (addressed to an MSRN allocated by the co-operating VLR)
page the MS and bridge the trunk to the radio leg.  Voice crosses the
MSC as PCM, with no transcoding — this is the box whose trunk usage
produces the Figure 7 tromboning.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.gsm.msc_base import MscBase, RadioConn
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer, Transactions
from repro.packets.bssap import ASetup, TchFrame, CAUSE_NORMAL
from repro.packets.isup import (
    CAUSE_UNALLOCATED_NUMBER,
    IsupAcm,
    IsupAnm,
    IsupIam,
    IsupRel,
    IsupRlc,
    PcmFrame,
)
from repro.packets.map import (
    MapSendInfoForIncomingCall,
    MapSendInfoForIncomingCallAck,
)


class _TrunkCall:
    """State of one trunk-to-radio bridged call."""

    def __init__(self, cic: int, peer: str, conn: Optional[RadioConn], direction: str) -> None:
        self.cic = cic
        self.peer = peer            # node the trunk leg goes to/came from
        self.conn = conn
        self.direction = direction  # "mo" | "mt"
        self.answered = False


class GsmMsc(MscBase):
    """A standard GSM mobile switching centre."""

    def __init__(self, sim, name: str = "MSC", cic_start: int = 500000) -> None:
        super().__init__(sim, name)
        self._cic_seq = Sequencer(start=cic_start)
        self._calls_by_cic: Dict[int, _TrunkCall] = {}
        self._calls_by_imsi: Dict[object, _TrunkCall] = {}
        self._sifc_pending = Transactions()

    def _pstn(self) -> Node:
        return self.peer(Interface.ISUP)

    # ------------------------------------------------------------------
    # MO: radio -> trunk
    # ------------------------------------------------------------------
    def route_mo_call(self, conn: RadioConn, setup: ASetup) -> None:
        cic = self._cic_seq.next()
        call = _TrunkCall(cic, self._pstn().name, conn, "mo")
        self._calls_by_cic[cic] = call
        self._calls_by_imsi[conn.imsi] = call
        self.send(
            call.peer,
            IsupIam(cic=cic, called=setup.called, calling=setup.calling),
            interface=Interface.ISUP,
        )

    @handles(IsupAcm)
    def on_isup_acm(self, msg: IsupAcm, src: Node, interface: str) -> None:
        call = self._calls_by_cic.get(msg.cic)
        if call is not None and call.conn is not None:
            self.send_alerting_to_ms(call.conn)

    # ------------------------------------------------------------------
    # MT: trunk -> radio
    # ------------------------------------------------------------------
    def on_isup_iam(self, msg: IsupIam, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_isup_iam(msg, src, interface)
            return
        # The IAM's called number is an MSRN; ask the VLR who it is.
        invoke_id = self._invoke_seq.next()
        self._sifc_pending.open_with_id(invoke_id, (msg, src.name))
        self.send(
            self._vlr(),
            MapSendInfoForIncomingCall(invoke_id=invoke_id, msrn=msg.called),
        )

    @handles(MapSendInfoForIncomingCallAck)
    def on_incoming_call_info(
        self, msg: MapSendInfoForIncomingCallAck, src: Node, interface: str
    ) -> None:
        iam, trunk_peer = self._sifc_pending.close(msg.invoke_id)
        if not msg.reachable or msg.imsi is None:
            self.send(
                trunk_peer,
                IsupRel(cic=iam.cic, cause=CAUSE_UNALLOCATED_NUMBER),
                interface=Interface.ISUP,
            )
            return
        call = _TrunkCall(iam.cic, trunk_peer, None, "mt")
        self._calls_by_cic[iam.cic] = call

        def on_ready(conn: RadioConn) -> None:
            call.conn = conn
            self._calls_by_imsi[conn.imsi] = call
            self.send_setup_to_ms(conn, iam.calling)

        def on_failed(conn: RadioConn) -> None:
            self._calls_by_cic.pop(iam.cic, None)
            self.send(
                trunk_peer,
                IsupRel(cic=iam.cic, cause=CAUSE_UNALLOCATED_NUMBER),
                interface=Interface.ISUP,
            )

        self.page(msg.imsi, on_ready, on_failed)

    def on_ms_alerting(self, conn: RadioConn) -> None:
        call = self._calls_by_imsi.get(conn.imsi)
        if call is not None and call.direction == "mt":
            self.send(call.peer, IsupAcm(cic=call.cic), interface=Interface.ISUP)

    def on_ms_connect(self, conn: RadioConn) -> None:
        call = self._calls_by_imsi.get(conn.imsi)
        if call is not None and call.direction == "mt":
            call.answered = True
            self.send(call.peer, IsupAnm(cic=call.cic), interface=Interface.ISUP)

    @handles(IsupAnm)
    def on_isup_anm(self, msg: IsupAnm, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_isup_anm(msg, src, interface)
            return
        call = self._calls_by_cic.get(msg.cic)
        if call is not None and call.conn is not None:
            call.answered = True
            self.send_connect_to_ms(call.conn)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def on_ms_disconnect(self, conn: RadioConn, cause: int) -> None:
        call = self._calls_by_imsi.pop(conn.imsi, None)
        if call is not None:
            self._calls_by_cic.pop(call.cic, None)
            self.send(
                call.peer, IsupRel(cic=call.cic, cause=CAUSE_NORMAL),
                interface=Interface.ISUP,
            )

    def on_isup_rel(self, msg: IsupRel, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_isup_rel(msg, src, interface)
            return
        self.send(src, IsupRlc(cic=msg.cic), interface=Interface.ISUP)
        call = self._calls_by_cic.pop(msg.cic, None)
        if call is not None and call.conn is not None:
            self._calls_by_imsi.pop(call.conn.imsi, None)
            self.disconnect_ms(call.conn, cause=msg.cause)

    # ------------------------------------------------------------------
    # Voice bridging (PCM <-> TCH, no transcoding)
    # ------------------------------------------------------------------
    def on_uplink_voice(self, conn: RadioConn, frame: TchFrame) -> None:
        call = self._calls_by_imsi.get(conn.imsi)
        if call is None or not call.answered:
            return
        self.send(
            call.peer,
            PcmFrame(cic=call.cic, seq=frame.seq, gen_time_us=frame.gen_time_us),
            interface=Interface.ISUP,
        )

    def on_pcm_frame(self, frame: PcmFrame, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_pcm_frame(frame, src, interface)
            return
        call = self._calls_by_cic.get(frame.cic)
        if call is None or call.conn is None:
            return
        tch = TchFrame(
            ti=call.conn.ti or 0,
            imsi=call.conn.imsi,
            seq=frame.seq,
            gen_time_us=frame.gen_time_us,
        )
        self.send_voice_to_ms(call.conn, tch)
