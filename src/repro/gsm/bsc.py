"""Base Station Controller (with PCU).

Per the paper (§2): "The BSC forwards circuit-switched calls to the MSC,
and packet-switched data (through the PCU) to the SGSN.  A BSC can only
connect to one SGSN."  The BSC therefore has three faces:

* Abis toward its BTSs (circuit signalling renamed per the figures);
* A toward its (V)MSC;
* Gb toward the SGSN, used only by GPRS handsets (3G TR baseline) — in
  vGPRS the packet side lives inside the VMSC instead.

The BSC also manages the traffic-channel pool: assignments beyond
``tch_capacity`` fail with ``A_Assignment_Failure``, giving the circuit
approach its blocking behaviour under load (experiment E9).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.identities import IMSI
from repro.gprs.gb import GbUnitdata
from repro.gsm.relay import rename_packet, subscriber_keys
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.packets.base import Packet
from repro.packets.bssap import (
    AAlerting,
    AHandoverComplete,
    AHandoverRequest,
    AHandoverRequestAck,
    AHandoverRequired,
    UmHandoverComplete,
    AAssignmentComplete,
    AAssignmentFailure,
    AAssignmentRequest,
    AClearCommand,
    AClearComplete,
    AConnect,
    ADisconnect,
    ALocationUpdate,
    ALocationUpdateAccept,
    APaging,
    APagingResponse,
    ASetup,
    AbisAlerting,
    AbisChannelActivation,
    AbisConnect,
    AbisDisconnect,
    AbisLocationUpdate,
    AbisLocationUpdateAccept,
    AbisPaging,
    AbisPagingResponse,
    AbisSetup,
    GsmMessage,
    UmAssignmentComplete,
)
from repro.packets.gmm import GprsMessage

#: Uplink renames: Abis class -> A class.
UPLINK_RENAMES: Dict[Type[Packet], Type[Packet]] = {
    AbisLocationUpdate: ALocationUpdate,
    AbisSetup: ASetup,
    AbisAlerting: AAlerting,
    AbisConnect: AConnect,
    AbisDisconnect: ADisconnect,
    AbisPagingResponse: APagingResponse,
    UmAssignmentComplete: AAssignmentComplete,
    UmHandoverComplete: AHandoverComplete,
}

#: Downlink renames: A class -> Abis class.
DOWNLINK_RENAMES: Dict[Type[Packet], Type[Packet]] = {
    ALocationUpdateAccept: AbisLocationUpdateAccept,
    ASetup: AbisSetup,
    AAlerting: AbisAlerting,
    AConnect: AbisConnect,
    ADisconnect: AbisDisconnect,
    APaging: AbisPaging,
}


class Bsc(Node):
    """A base station controller."""

    def __init__(self, sim, name: str, tch_capacity: int = 32) -> None:
        super().__init__(sim, name)
        self._bts_by_key: Dict[tuple, str] = {}
        self.tch_capacity = tch_capacity
        self.tch_in_use = 0
        self._tch_holders: Dict[IMSI, bool] = {}

    def _msc(self) -> Node:
        return self.peer(Interface.A)

    def _sgsn(self) -> Optional[Node]:
        links = self.links_on(Interface.GB)
        return links[0].peer_of(self) if links else None

    # ------------------------------------------------------------------
    # Traffic-channel pool
    # ------------------------------------------------------------------
    @handles(AAssignmentRequest)
    def on_assignment_request(
        self, msg: AAssignmentRequest, src: Node, interface: str
    ) -> None:
        imsi = msg.imsi
        if self.tch_in_use >= self.tch_capacity:
            self.sim.metrics.counter(f"{self.name}.tch_blocked").inc()
            self.send(src, AAssignmentFailure(imsi=imsi))
            return
        self.tch_in_use += 1
        if imsi is not None:
            self._tch_holders[imsi] = True
        self.sim.metrics.gauge(f"{self.name}.tch_in_use").set(self.tch_in_use)
        self._downlink(rename_packet(msg, AbisChannelActivation))

    @handles(AHandoverRequest)
    def on_handover_request(
        self, msg: AHandoverRequest, src: Node, interface: str
    ) -> None:
        """Target-side handoff: reserve a channel and acknowledge."""
        if self.tch_in_use >= self.tch_capacity:
            self.sim.metrics.counter(f"{self.name}.tch_blocked").inc()
            self.send(src, AAssignmentFailure(imsi=msg.imsi))
            return
        self.tch_in_use += 1
        if msg.imsi is not None:
            self._tch_holders[msg.imsi] = True
        self.send(src, AHandoverRequestAck(ti=msg.ti))

    def report_handover_required(self, imsi, ti: int, target_cell: str) -> None:
        """Radio-measurement trigger (scenario-driven): tell the MSC the
        MS must move to *target_cell*."""
        self.send(self._msc(), AHandoverRequired(imsi=imsi, ti=ti, target_cell=target_cell))

    @handles(AClearCommand)
    def on_clear_command(self, msg: AClearCommand, src: Node, interface: str) -> None:
        imsi = msg.imsi
        if imsi is not None and self._tch_holders.pop(imsi, False):
            self.tch_in_use = max(0, self.tch_in_use - 1)
            self.sim.metrics.gauge(f"{self.name}.tch_in_use").set(self.tch_in_use)
        self.send(src, AClearComplete())

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------
    @handles(GsmMessage)
    def on_gsm(self, packet: GsmMessage, src: Node, interface: str) -> None:
        if interface == Interface.ABIS:
            self._uplink(packet, src)
        elif interface == Interface.A:
            self._downlink_from_a(packet)
        else:
            self.on_unhandled(packet, src, interface)

    @handles(GprsMessage)
    def on_gprs(self, packet: GprsMessage, src: Node, interface: str) -> None:
        """PCU function: packet-switched traffic shuttles between the
        BTSs and the SGSN without touching the MSC."""
        self._relay_packet_switched(packet, src, interface)

    @handles(GbUnitdata)
    def on_gb_unitdata(self, packet: GbUnitdata, src: Node, interface: str) -> None:
        self._relay_packet_switched(packet, src, interface)

    def _relay_packet_switched(self, packet: Packet, src: Node, interface: str) -> None:
        if interface == Interface.ABIS:
            self._note_imsi(packet, src)
            sgsn = self._sgsn()
            if sgsn is None:
                self.sim.metrics.counter(f"{self.name}.no_sgsn").inc()
                return
            self.send(sgsn, packet)
        else:  # downlink from the SGSN
            bts = self._bts_for(packet)
            if bts is not None:
                self.send(bts, packet)

    def _uplink(self, packet: GsmMessage, src: Node) -> None:
        self._note_imsi(packet, src)
        target = UPLINK_RENAMES.get(type(packet))
        out = rename_packet(packet, target) if target is not None else packet
        self.send(self._msc(), out)

    def _downlink_from_a(self, packet: GsmMessage) -> None:
        if isinstance(packet, APaging):
            page = rename_packet(packet, AbisPaging)
            for bts in self.peers(Interface.ABIS):
                self.send(bts, page.copy())
            return
        target = DOWNLINK_RENAMES.get(type(packet))
        out = rename_packet(packet, target) if target is not None else packet
        self._downlink(out)

    def _downlink(self, packet: Packet) -> None:
        bts = self._bts_for(packet)
        if bts is None:
            self.sim.metrics.counter(f"{self.name}.downlink_unroutable").inc()
            return
        self.send(bts, packet)

    def _note_imsi(self, packet: Packet, src: Node) -> None:
        for key in subscriber_keys(packet):
            self._bts_by_key[key] = src.name

    def _bts_for(self, packet: Packet) -> Optional[str]:
        for key in subscriber_keys(packet):
            name = self._bts_by_key.get(key)
            if name is not None:
                return name
        return None
