"""GSM circuit-switched substrate.

Network elements from Figure 1 — MS, BTS, BSC, MSC, GMSC, HLR, VLR — plus
the authentication centre and the radio-channel models.  The VMSC (the
paper's contribution) lives in :mod:`repro.core` and reuses
:class:`~repro.gsm.msc_base.MscBase` for the radio-facing half, which is
"exactly the same as that of an MSC" by the paper's design (§2).
"""

from repro.gsm.security import AuthTriplet, a3_sres, a8_kc, generate_triplet
from repro.gsm.subscriber import SubscriberProfile, SubscriberRecord
from repro.gsm.hlr import Hlr
from repro.gsm.vlr import Vlr
from repro.gsm.bts import Bts
from repro.gsm.bsc import Bsc
from repro.gsm.ms import MobileStation
from repro.gsm.msc_base import MscBase
from repro.gsm.msc import GsmMsc
from repro.gsm.gmsc import Gmsc

__all__ = [
    "AuthTriplet",
    "a3_sres",
    "a8_kc",
    "generate_triplet",
    "SubscriberProfile",
    "SubscriberRecord",
    "Hlr",
    "Vlr",
    "Bts",
    "Bsc",
    "MobileStation",
    "MscBase",
    "GsmMsc",
    "Gmsc",
]
