"""Base Transceiver Station.

The BTS bridges the Um radio interface and the Abis link to its BSC.
Circuit-switched signalling is renamed per the paper's figures
(``Um_Setup`` -> ``Abis_Setup``), DTAP is relayed transparently, and
paging is broadcast on the air interface.

For the 3G TR baseline the BTS also carries GPRS traffic on a **shared
packet channel** with finite capacity: every GPRS-bound PDU queues for
its serialisation time, which is the physical origin of the jitter and
delay measured in experiment E9 (the paper's "non-real-time packet
switching nature in the radio interface", §6).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.identities import IMSI
from repro.gprs.gb import GbUnitdata
from repro.gsm.relay import rename_packet, subscriber_keys
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.packets.base import Packet
from repro.packets.bssap import (
    AHandoverCommand,
    AbisAlerting,
    AbisChannelActivation,
    AbisConnect,
    AbisDisconnect,
    AbisLocationUpdate,
    AbisLocationUpdateAccept,
    AbisPaging,
    AbisPagingResponse,
    AbisSetup,
    GsmMessage,
    UmAlerting,
    UmAssignmentCommand,
    UmChannelRequest,
    UmConnect,
    UmDisconnect,
    UmHandoverCommand,
    UmImmediateAssignment,
    UmLocationUpdateAccept,
    UmLocationUpdateRequest,
    UmPaging,
    UmPagingResponse,
    UmSetup,
)
from repro.packets.gmm import GprsMessage

#: Uplink renames: Um message class -> Abis message class.
UPLINK_RENAMES: Dict[Type[Packet], Type[Packet]] = {
    UmLocationUpdateRequest: AbisLocationUpdate,
    UmSetup: AbisSetup,
    UmAlerting: AbisAlerting,
    UmConnect: AbisConnect,
    UmDisconnect: AbisDisconnect,
    UmPagingResponse: AbisPagingResponse,
}

#: Downlink renames: Abis message class -> Um message class.
DOWNLINK_RENAMES: Dict[Type[Packet], Type[Packet]] = {
    AbisLocationUpdateAccept: UmLocationUpdateAccept,
    AbisSetup: UmSetup,
    AbisAlerting: UmAlerting,
    AbisConnect: UmConnect,
    AbisDisconnect: UmDisconnect,
    AbisChannelActivation: UmAssignmentCommand,
    AHandoverCommand: UmHandoverCommand,
}


class Bts(Node):
    """A base transceiver station serving the MSs on its Um links.

    Parameters
    ----------
    packet_channel_bps:
        Capacity of the shared GPRS packet channel (both directions
        modelled independently).  ``None`` disables queueing (signalling
        studies where radio load is not the subject).
    """

    def __init__(
        self,
        sim,
        name: str,
        packet_channel_bps: Optional[float] = 4 * 13_400.0,
    ) -> None:
        super().__init__(sim, name)
        self._ms_by_key: Dict[tuple, str] = {}
        self.packet_channel_bps = packet_channel_bps
        self._pch_busy_until = {"up": 0.0, "down": 0.0}

    # ------------------------------------------------------------------
    # Radio presence
    # ------------------------------------------------------------------
    def learn(self, imsi: IMSI, ms_name: str) -> None:
        self._ms_by_key[("imsi", imsi)] = ms_name

    def forget(self, imsi: IMSI) -> None:
        self._ms_by_key.pop(("imsi", imsi), None)

    def serves(self, imsi: IMSI) -> bool:
        return ("imsi", imsi) in self._ms_by_key

    def _bsc(self) -> Node:
        return self.peer(Interface.ABIS)

    # ------------------------------------------------------------------
    # Shared packet channel (GPRS / 3G TR baseline)
    # ------------------------------------------------------------------
    def _packet_channel_delay(self, packet: Packet, direction: str) -> float:
        """FIFO queueing + serialisation delay on the shared channel."""
        if self.packet_channel_bps is None:
            return 0.0
        size_bits = len(packet.build()) * 8
        service = size_bits / self.packet_channel_bps
        start = max(self.sim.now, self._pch_busy_until[direction])
        self._pch_busy_until[direction] = start + service
        delay = (start + service) - self.sim.now
        self.sim.metrics.histogram(f"{self.name}.pch_delay_{direction}").observe(delay)
        return delay

    def _send_gprs(self, dst, packet: Packet, direction: str) -> None:
        delay = self._packet_channel_delay(packet, direction)
        if delay > 0:
            self.sim.schedule(delay, self.send, dst, packet)
        else:
            self.send(dst, packet)

    # ------------------------------------------------------------------
    # Local radio procedures
    # ------------------------------------------------------------------
    @handles(UmChannelRequest)
    def on_channel_request(self, msg: UmChannelRequest, src: Node, interface: str) -> None:
        self.send(src, UmImmediateAssignment(channel=1))

    # ------------------------------------------------------------------
    # Catch-all relaying
    # ------------------------------------------------------------------
    @handles(GsmMessage)
    def on_gsm(self, packet: GsmMessage, src: Node, interface: str) -> None:
        if interface == Interface.UM:
            self._uplink(packet, src)
        else:
            self._downlink(packet)

    @handles(GprsMessage)
    def on_gprs(self, packet: GprsMessage, src: Node, interface: str) -> None:
        """GPRS GMM/SM signalling (3G TR handsets) rides the packet
        channel in both directions."""
        if interface == Interface.UM:
            self._note_imsi(packet, src)
            self._send_gprs(self._bsc(), packet, "up")
        else:
            ms = self._ms_for(packet)
            if ms is not None:
                self._send_gprs(ms, packet, "down")

    @handles(GbUnitdata)
    def on_gb_unitdata(self, packet: GbUnitdata, src: Node, interface: str) -> None:
        if interface == Interface.UM:
            self._note_imsi(packet, src)
            self._send_gprs(self._bsc(), packet, "up")
        else:
            ms = self._ms_for(packet)
            if ms is not None:
                self._send_gprs(ms, packet, "down")

    def _uplink(self, packet: GsmMessage, src: Node) -> None:
        self._note_imsi(packet, src)
        target = UPLINK_RENAMES.get(type(packet))
        out = rename_packet(packet, target) if target is not None else packet
        self.send(self._bsc(), out)

    def _downlink(self, packet: GsmMessage) -> None:
        if isinstance(packet, AbisPaging):
            # Paging is broadcast on the air interface; MSs filter by
            # identity.
            page = rename_packet(packet, UmPaging)
            for ms in self.peers(Interface.UM):
                self.send(ms, page.copy())
            return
        target = DOWNLINK_RENAMES.get(type(packet))
        out = rename_packet(packet, target) if target is not None else packet
        ms = self._ms_for(out)
        if ms is None:
            self.sim.metrics.counter(f"{self.name}.downlink_unroutable").inc()
            return
        self.send(ms, out)

    def _note_imsi(self, packet: Packet, src: Node) -> None:
        for key in subscriber_keys(packet):
            self._ms_by_key[key] = src.name

    def _ms_for(self, packet: Packet):
        for key in subscriber_keys(packet):
            name = self._ms_by_key.get(key)
            if name is not None:
                return name
        return None
