"""Helpers for BTS/BSC message relaying.

The BTS and BSC mostly *rename* messages between interfaces (``Um_Setup``
becomes ``Abis_Setup`` becomes ``A_Setup``) or relay DTAP transparently.
:func:`rename_packet` rebuilds a message as its sibling class on the next
interface, copying every field the target class shares; :func:`find_imsi`
extracts the subscriber identity used for downlink routing.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.identities import IMSI
from repro.packets.base import Packet


def rename_packet(packet: Packet, target: Type[Packet]) -> Packet:
    """Rebuild *packet* as *target*, copying the fields both classes
    declare (the interface-sibling classes share field tuples by
    construction) and carrying the payload chain unchanged."""
    if "_lazy" in packet.__dict__:
        packet._materialize()
    target_names = {f.name for f in target.fields}
    values = {
        name: value
        for name, value in packet._values.items()
        if name in target_names and value is not None
    }
    clone = target(**values)
    clone.payload = packet.payload
    return clone


def find_imsi(packet: Packet) -> Optional[IMSI]:
    """The IMSI carried by any layer of *packet*, if present."""
    for layer in packet.layers():
        imsi = layer.get_field("imsi")
        if isinstance(imsi, IMSI):
            return imsi
    return None


def subscriber_keys(packet: Packet) -> list:
    """Routing keys for *packet*: ``("imsi", IMSI)`` and/or
    ``("tmsi", int)`` — TMSI-only messages (movement registration, the
    end-of-§3 variant) stay routable without disclosing the IMSI."""
    keys = []
    for layer in packet.layers():
        imsi = layer.get_field("imsi")
        if isinstance(imsi, IMSI):
            keys.append(("imsi", imsi))
        tmsi = layer.get_field("tmsi")
        if isinstance(tmsi, int):
            keys.append(("tmsi", tmsi))
    return keys
