"""Subscriber records, as stored in the HLR.

The paper's step 1.2 has the VLR obtain "the subscription profile of the
MS (the profile indicates, e.g., if the MS is allowed to make
international calls)" — :class:`SubscriberProfile` carries exactly those
authorisation bits, and the VLR enforces them in
``MAP_Send_Info_For_Outgoing_Call`` (step 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.identities import IMSI, E164Number, IPv4Address
from repro.gsm.security import derive_ki


@dataclass
class SubscriberProfile:
    """Service authorisations downloaded to the VLR."""

    international_allowed: bool = True
    gprs_allowed: bool = True


@dataclass
class SubscriberRecord:
    """The HLR's master record for one subscriber.

    ``vlr_name``/``msc_name`` track the current registration (updated by
    MAP_Update_Location); ``static_pdp_address`` is only set for
    subscribers provisioned for network-requested PDP activation (the
    3G TR baseline's MT-call requirement)."""

    imsi: IMSI
    msisdn: E164Number
    ki: bytes = b""
    profile: SubscriberProfile = field(default_factory=SubscriberProfile)
    vlr_name: Optional[str] = None
    msc_name: Optional[str] = None
    sgsn_name: Optional[str] = None
    static_pdp_address: Optional[IPv4Address] = None

    def __post_init__(self) -> None:
        if not self.ki:
            self.ki = derive_ki(self.imsi.digits)

    @property
    def registered(self) -> bool:
        return self.vlr_name is not None
