"""GSM authentication and ciphering primitives.

Functional stand-ins for the A3/A8 algorithms: deterministic, keyed and
collision-resistant (SHA-256 based), with the real output widths (SRES is
32 bits, Kc is 64 bits).  The security *protocol* — challenge/response
with triplets generated at the AuC, SRES comparison at the VLR, ciphering
start — is modelled faithfully; only the cipher mathematics is replaced,
which none of the paper's procedures depend on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class AuthTriplet:
    """One (RAND, SRES, Kc) authentication vector (GSM 03.20)."""

    rand: bytes
    sres: bytes
    kc: bytes

    def __post_init__(self) -> None:
        if len(self.rand) != 16:
            raise ValueError("RAND must be 128 bits")
        if len(self.sres) != 4:
            raise ValueError("SRES must be 32 bits")
        if len(self.kc) != 8:
            raise ValueError("Kc must be 64 bits")


def a3_sres(ki: bytes, rand: bytes) -> bytes:
    """A3: signed response for a challenge."""
    return hashlib.sha256(b"A3" + ki + rand).digest()[:4]


def a8_kc(ki: bytes, rand: bytes) -> bytes:
    """A8: session cipher key."""
    return hashlib.sha256(b"A8" + ki + rand).digest()[:8]


def generate_triplet(ki: bytes, rand: bytes) -> AuthTriplet:
    """AuC operation: derive a triplet for a subscriber key and challenge."""
    return AuthTriplet(rand=rand, sres=a3_sres(ki, rand), kc=a8_kc(ki, rand))


def derive_ki(imsi_digits: str) -> bytes:
    """Deterministic per-subscriber test key used by network builders, so
    scenarios need no key-provisioning boilerplate."""
    return hashlib.sha256(b"Ki" + imsi_digits.encode()).digest()[:16]
