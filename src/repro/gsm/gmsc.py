"""Gateway MSC — home-network entry point for calls to mobile numbers.

The GMSC is a PSTN switch that, on a call to one of its home MSISDNs,
interrogates the HLR (``MAP_Send_Routing_Information``) for a roaming
number and re-routes the call there.  When the subscriber roams abroad,
the re-routed leg is a *second* international trunk back out of the home
country — the tromboning of Figure 7 that vGPRS eliminates.
"""

from __future__ import annotations

from typing import Set

from repro.identities import E164Number
from repro.net.node import Node, handles
from repro.net.transactions import Transactions, Sequencer
from repro.pstn.switch import PstnSwitch, _Bridge
from repro.packets.isup import CAUSE_UNALLOCATED_NUMBER, IsupIam, IsupRel
from repro.packets.map import (
    MapSendRoutingInformation,
    MapSendRoutingInformationAck,
)


class Gmsc(PstnSwitch):
    """A gateway MSC for one home PLMN."""

    def __init__(
        self,
        sim,
        name: str,
        country_code: str,
        ledger=None,
        cic_start: int = 300000,
    ) -> None:
        super().__init__(sim, name, country_code, ledger=ledger, cic_start=cic_start)
        #: MSISDN prefixes owned by this PLMN, e.g. "+44790".
        self.home_prefixes: Set[str] = set()
        self._sri_pending = Transactions()
        self._sri_seq = Sequencer(start=7000)

    def add_home_prefix(self, prefix: str) -> None:
        self.home_prefixes.add(prefix)

    def _is_home_number(self, called: E164Number) -> bool:
        text = str(called)
        return any(text.startswith(p) for p in self.home_prefixes)

    def _hlr(self) -> Node:
        return self.peer("C")

    # ------------------------------------------------------------------
    # Incoming calls: interrogate the HLR for home numbers
    # ------------------------------------------------------------------
    @handles(IsupIam)
    def on_iam(self, msg: IsupIam, src: Node, interface: str) -> None:
        if not self._is_home_number(msg.called):
            super().on_iam(msg, src, interface)
            return
        bridge = _Bridge(called=msg.called, calling=msg.calling, up=(src.name, msg.cic))
        self._legs[bridge.up] = bridge
        invoke_id = self._sri_seq.next()
        self._sri_pending.open_with_id(invoke_id, bridge)
        self.send(
            self._hlr(),
            MapSendRoutingInformation(invoke_id=invoke_id, msisdn=msg.called),
        )

    @handles(MapSendRoutingInformationAck)
    def on_sri_ack(
        self, msg: MapSendRoutingInformationAck, src: Node, interface: str
    ) -> None:
        bridge: _Bridge = self._sri_pending.close(msg.invoke_id)
        if msg.error != 0 or msg.msrn is None:
            self.sim.metrics.counter(f"{self.name}.absent_subscribers").inc()
            self._send_up(bridge, IsupRel(cic=0, cause=CAUSE_UNALLOCATED_NUMBER))
            self._legs.pop(bridge.up, None)
            return
        # Re-route toward the roaming number.  When the subscriber roams
        # abroad this re-dial seizes the second international trunk of
        # Figure 7.
        bridge.called = msg.msrn
        bridge.routes_left = self._candidate_routes(msg.msrn)
        self._try_next_route(bridge)
