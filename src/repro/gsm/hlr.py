"""Home Location Register (with an embedded authentication centre).

The HLR owns the master subscriber database.  It serves:

* ``MAP_Update_Location`` from VLRs (paper step 1.2), downloading the
  subscription profile via ``MAP_Insert_Subs_Data`` and cancelling any
  previous registration with ``MAP_Cancel_Location``;
* ``MAP_Send_Auth_Info`` — triplet generation (AuC function);
* ``MAP_Send_Routing_Information`` from a GMSC, interrogating the
  serving VLR with ``MAP_Provide_Roaming_Number`` — the classic GSM call
  delivery of Figure 7 whose tromboning vGPRS eliminates.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SubscriberError
from repro.identities import IMSI, E164Number
from repro.gsm.security import generate_triplet
from repro.gsm.subscriber import SubscriberRecord
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer, Transactions
from repro.packets.map import (
    ERR_ABSENT_SUBSCRIBER,
    ERR_UNKNOWN_SUBSCRIBER,
    MapCancelLocation,
    MapCancelLocationAck,
    MapInsertSubsData,
    MapInsertSubsDataAck,
    MapProvideRoamingNumber,
    MapProvideRoamingNumberAck,
    MapSendAuthInfo,
    MapSendAuthInfoAck,
    MapSendRoutingInformation,
    MapSendRoutingInformationAck,
    MapUpdateLocation,
    MapUpdateLocationAck,
)


class Hlr(Node):
    """The home location register."""

    def __init__(self, sim, name: str = "HLR") -> None:
        super().__init__(sim, name)
        self.subscribers: Dict[IMSI, SubscriberRecord] = {}
        self._by_msisdn: Dict[E164Number, IMSI] = {}
        self._invoke_seq = Sequencer()
        self._pending = Transactions()

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def add_subscriber(self, record: SubscriberRecord) -> None:
        if record.imsi in self.subscribers:
            raise SubscriberError(f"duplicate IMSI {record.imsi}")
        if record.msisdn in self._by_msisdn:
            raise SubscriberError(f"duplicate MSISDN {record.msisdn}")
        self.subscribers[record.imsi] = record
        self._by_msisdn[record.msisdn] = record.imsi

    def subscriber(self, imsi: IMSI) -> SubscriberRecord:
        try:
            return self.subscribers[imsi]
        except KeyError:
            raise SubscriberError(f"unknown IMSI {imsi}") from None

    def imsi_for_msisdn(self, msisdn: E164Number) -> Optional[IMSI]:
        return self._by_msisdn.get(msisdn)

    # ------------------------------------------------------------------
    # Location management
    # ------------------------------------------------------------------
    @handles(MapUpdateLocation)
    def on_update_location(
        self, msg: MapUpdateLocation, src: Node, interface: str
    ) -> None:
        record = self.subscribers.get(msg.imsi)
        if record is None:
            self.send(
                src,
                MapUpdateLocationAck(
                    invoke_id=msg.invoke_id, error=ERR_UNKNOWN_SUBSCRIBER
                ),
            )
            return
        old_vlr = record.vlr_name
        record.vlr_name = msg.vlr_number
        record.msc_name = msg.msc_number
        if old_vlr is not None and old_vlr != msg.vlr_number:
            self.send(
                old_vlr,
                MapCancelLocation(
                    invoke_id=self._invoke_seq.next(), imsi=msg.imsi
                ),
            )
        # Download the profile; the final Update_Location ack follows the
        # Insert_Subs_Data ack, matching the step 1.2 message order.
        insert_id = self._invoke_seq.next()
        self._pending.open_with_id(insert_id, {
            "vlr": src.name,
            "ul_invoke_id": msg.invoke_id,
        })
        self.send(
            src,
            MapInsertSubsData(
                invoke_id=insert_id,
                imsi=record.imsi,
                msisdn=record.msisdn,
                international_allowed=record.profile.international_allowed,
                gprs_allowed=record.profile.gprs_allowed,
            ),
        )

    @handles(MapInsertSubsDataAck)
    def on_insert_subs_data_ack(
        self, msg: MapInsertSubsDataAck, src: Node, interface: str
    ) -> None:
        pending = self._pending.try_close(msg.invoke_id)
        if pending is None:
            return
        self.send(
            pending["vlr"], MapUpdateLocationAck(invoke_id=pending["ul_invoke_id"])
        )

    @handles(MapCancelLocationAck)
    def on_cancel_location_ack(
        self, msg: MapCancelLocationAck, src: Node, interface: str
    ) -> None:
        self.sim.metrics.counter(f"{self.name}.cancel_acks").inc()

    # ------------------------------------------------------------------
    # Authentication centre
    # ------------------------------------------------------------------
    @handles(MapSendAuthInfo)
    def on_send_auth_info(
        self, msg: MapSendAuthInfo, src: Node, interface: str
    ) -> None:
        record = self.subscribers.get(msg.imsi)
        if record is None:
            self.send(
                src,
                MapSendAuthInfoAck(
                    invoke_id=msg.invoke_id,
                    rand=b"\x00" * 16,
                    sres=b"\x00" * 4,
                    kc=b"\x00" * 8,
                    error=ERR_UNKNOWN_SUBSCRIBER,
                ),
            )
            return
        rand = self.sim.rng.getrandbits("auc.rand", 128).to_bytes(16, "big")
        triplet = generate_triplet(record.ki, rand)
        self.send(
            src,
            MapSendAuthInfoAck(
                invoke_id=msg.invoke_id,
                rand=triplet.rand,
                sres=triplet.sres,
                kc=triplet.kc,
            ),
        )

    # ------------------------------------------------------------------
    # Call delivery interrogation (classic GSM, Figure 7)
    # ------------------------------------------------------------------
    @handles(MapSendRoutingInformation)
    def on_send_routing_information(
        self, msg: MapSendRoutingInformation, src: Node, interface: str
    ) -> None:
        imsi = self._by_msisdn.get(msg.msisdn)
        record = self.subscribers.get(imsi) if imsi is not None else None
        if record is None:
            self.send(
                src,
                MapSendRoutingInformationAck(
                    invoke_id=msg.invoke_id, error=ERR_UNKNOWN_SUBSCRIBER
                ),
            )
            return
        if record.vlr_name is None:
            self.send(
                src,
                MapSendRoutingInformationAck(
                    invoke_id=msg.invoke_id, error=ERR_ABSENT_SUBSCRIBER
                ),
            )
            return
        prn_id = self._invoke_seq.next()
        self._pending.open_with_id(prn_id, {
            "gmsc": src.name,
            "sri_invoke_id": msg.invoke_id,
        })
        self.send(
            record.vlr_name,
            MapProvideRoamingNumber(invoke_id=prn_id, imsi=record.imsi),
        )

    @handles(MapProvideRoamingNumberAck)
    def on_provide_roaming_number_ack(
        self, msg: MapProvideRoamingNumberAck, src: Node, interface: str
    ) -> None:
        pending = self._pending.try_close(msg.invoke_id)
        if pending is None:
            return
        self.send(
            pending["gmsc"],
            MapSendRoutingInformationAck(
                invoke_id=pending["sri_invoke_id"],
                msrn=msg.msrn,
                error=msg.error,
            ),
        )
