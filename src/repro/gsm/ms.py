"""The standard GSM mobile station.

This is the handset the paper's whole design exists to serve unmodified:
no vocoder changes, no H.323 stack, no IP address — just GSM 04.08
signalling over the air interface.  The state machine covers power-on
registration (Figure 4 steps 1.1/1.6), MO calls (Figure 5), MT calls
(Figure 6), release, movement between location areas and inter-system
handoff (Figure 9).

During a call the MS can generate 20 ms vocoder frames
(:class:`~repro.packets.bssap.TchFrame`) stamped with their generation
time, which downstream nodes use to measure mouth-to-ear delay
(experiment E9).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.errors import ProtocolError
from repro.identities import IMSI, E164Number, as_e164
from repro.gsm.security import a3_sres
from repro.net.node import Node, handles
from repro.sim.process import Signal, spawn
from repro.packets.bssap import (
    AuthenticationRequest,
    ImsiDetachIndication,
    AuthenticationResponse,
    CipheringModeCommand,
    CipheringModeComplete,
    CmServiceAccept,
    CmServiceReject,
    CmServiceRequest,
    TchFrame,
    UmAlerting,
    UmAssignmentCommand,
    UmAssignmentComplete,
    UmChannelRequest,
    UmConnect,
    UmDisconnect,
    UmHandoverAccess,
    UmHandoverCommand,
    UmHandoverComplete,
    UmImmediateAssignment,
    UmLocationUpdateAccept,
    UmLocationUpdateRequest,
    UmPaging,
    UmPagingResponse,
    UmRelease,
    UmReleaseComplete,
    UmSetup,
)


class MobileStation(Node):
    """A standard GSM handset.

    Parameters
    ----------
    imsi, msisdn, ki:
        Subscriber identity and authentication key (must match the HLR
        provisioning).
    serving_bts:
        Node name of the BTS whose cell the MS camps on.
    lai:
        Location area identity string reported in location updates.
    answer_delay:
        Seconds between ringing and the (simulated) user answering.
    cells:
        Cell-name -> BTS-name map used to retune on handover commands.
    """

    def __init__(
        self,
        sim,
        name: str,
        imsi: IMSI,
        msisdn: E164Number,
        ki: bytes,
        serving_bts: str,
        lai: str = "LAI-1",
        answer_delay: float = 1.0,
        use_tmsi_for_updates: bool = False,
    ) -> None:
        super().__init__(sim, name)
        self.imsi = imsi
        self.msisdn = msisdn
        self.ki = ki
        self.serving_bts = serving_bts
        self.lai = lai
        self.answer_delay = answer_delay
        self.use_tmsi_for_updates = use_tmsi_for_updates
        self.cells: Dict[str, str] = {}
        self.tmsi: Optional[int] = None
        self.registered = False
        #: Fired after every call-state transition; workloads and
        #: scenarios block on this instead of polling ``state``.
        self.state_changed = Signal(f"{name}.state")
        self._state = "off"
        self._access_purpose = ""
        self.ti: Optional[int] = None
        self._ti_seq = int(imsi.digits[-6:]) * 100
        self._pending_called: Optional[E164Number] = None
        self._voice_proc = None
        self._fluid_flow = None
        self._voice_seq = 0
        self.frames_sent = 0
        self.frames_received = 0
        self._last_rx_time: Optional[float] = None
        # Histogram handles, resolved lazily on first observation so the
        # registry's contents match runs that never receive a frame.
        self._m2e_hist = None
        self._jitter_hist = None
        # Procedure spans (repro.obs.spans); opened/closed alongside the
        # state machine so a run renders as a per-call tree.
        self._reg_span = None
        self._call_span = None
        self._setup_span = None
        self._talk_span = None
        self._release_span = None
        # Event callbacks for scenarios/tests.
        self.on_registered: Optional[Callable[[], None]] = None
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_alerting: Optional[Callable[[], None]] = None
        self.on_released: Optional[Callable[[], None]] = None
        self.on_incoming: Optional[Callable[[Optional[E164Number]], None]] = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @state.setter
    def state(self, value: str) -> None:
        if value != self._state:
            self._state = value
            self.state_changed.fire()

    def _tx(self, packet) -> None:
        self.send(self.serving_bts, packet)

    def _new_ti(self) -> int:
        self._ti_seq += 1
        return self._ti_seq

    # ------------------------------------------------------------------
    # Registration (steps 1.1 / 1.6)
    # ------------------------------------------------------------------
    def power_on(self) -> None:
        """Step 1.1: 'An MS is turned on.'"""
        if self.state != "off":
            raise ProtocolError(f"{self.name}: power_on in state {self.state}")
        self._reg_span = self.sim.spans.open(
            "registration",
            keys={"imsi": self.imsi, "alias": self.msisdn},
            node=self.name,
            kind="power-on",
        )
        self.state = "accessing"
        self._access_purpose = "lu"
        self._tx(UmChannelRequest(establishment_cause=1))

    def power_off(self) -> None:
        """IMSI detach (GSM 04.08): announce power-off and go dark.
        Any active call must be released first."""
        if self.state == "in-call":
            raise ProtocolError(f"{self.name}: hang up before power_off")
        if self.state != "off":
            self._tx(ImsiDetachIndication(imsi=self.imsi, tmsi=self.tmsi))
        if self._reg_span is not None:
            self._reg_span.close(status="aborted")
            self._reg_span = None
        self.registered = False
        self.state = "off"

    def move_to(self, bts_name: str, lai: str) -> None:
        """Movement registration (end of §3): camp on a new cell and run
        a location update, using the TMSI when one was allocated."""
        self.serving_bts = bts_name
        self.lai = lai
        self._reg_span = self.sim.spans.open(
            "registration",
            keys={"imsi": self.imsi, "alias": self.msisdn},
            node=self.name,
            kind="movement",
            lai=lai,
        )
        self.state = "accessing"
        self._access_purpose = "lu"
        self._tx(UmChannelRequest(establishment_cause=1))

    @handles(UmImmediateAssignment)
    def on_immediate_assignment(
        self, msg: UmImmediateAssignment, src: Node, interface: str
    ) -> None:
        if self._access_purpose == "lu":
            use_tmsi = self.use_tmsi_for_updates and self.tmsi is not None
            self._tx(
                UmLocationUpdateRequest(
                    imsi=None if use_tmsi else self.imsi,
                    tmsi=self.tmsi if use_tmsi else None,
                    lai=self.lai,
                )
            )
            self.state = "registering"
        elif self._access_purpose == "mo":
            self._tx(CmServiceRequest(imsi=self.imsi, tmsi=self.tmsi))
            self.state = "mo-access"
        elif self._access_purpose == "mt":
            self._tx(UmPagingResponse(imsi=self.imsi, tmsi=self.tmsi))
            self.state = "mt-access"

    @handles(UmLocationUpdateAccept)
    def on_location_update_accept(
        self, msg: UmLocationUpdateAccept, src: Node, interface: str
    ) -> None:
        if msg.new_tmsi is not None:
            self.tmsi = msg.new_tmsi
        self.registered = True
        self.state = "idle"
        if self._reg_span is not None:
            self._reg_span.close(status="ok")
            self._reg_span = None
        self.sim.metrics.counter(f"{self.name}.registrations").inc()
        if self.on_registered is not None:
            self.on_registered()

    # ------------------------------------------------------------------
    # Security
    # ------------------------------------------------------------------
    @handles(AuthenticationRequest)
    def on_authentication_request(
        self, msg: AuthenticationRequest, src: Node, interface: str
    ) -> None:
        sres = a3_sres(self.ki, msg.rand)
        self._tx(AuthenticationResponse(imsi=self.imsi, sres=sres))

    @handles(CipheringModeCommand)
    def on_ciphering_command(
        self, msg: CipheringModeCommand, src: Node, interface: str
    ) -> None:
        self._tx(CipheringModeComplete(imsi=self.imsi))

    # ------------------------------------------------------------------
    # MO call (Figure 5)
    # ------------------------------------------------------------------
    def place_call(self, called: Union[E164Number, str]) -> None:
        """Dial *called* (step 2.1)."""
        called = as_e164(called)
        if self.state != "idle":
            raise ProtocolError(f"{self.name}: place_call in state {self.state}")
        self._call_span = self.sim.spans.open(
            "call",
            keys={"imsi": self.imsi},
            node=self.name,
            direction="mo",
            called=str(called),
        )
        self._setup_span = self.sim.spans.open(
            "setup", keys={"imsi": self.imsi}, parent=self._call_span
        )
        self._pending_called = called
        self.state = "accessing"
        self._access_purpose = "mo"
        self._tx(UmChannelRequest(establishment_cause=2))

    @handles(CmServiceAccept)
    def on_cm_service_accept(self, msg: CmServiceAccept, src: Node, interface: str) -> None:
        self.state = "mo-awaiting-channel"

    @handles(CmServiceReject)
    def on_cm_service_reject(self, msg: CmServiceReject, src: Node, interface: str) -> None:
        """The network could not serve the call attempt (e.g. radio
        congestion): give up and return to idle."""
        self._pending_called = None
        if self._setup_span is not None:
            self._setup_span.close(status="rejected")
        if self._call_span is not None:
            self._call_span.close(status="rejected")
        self.sim.metrics.counter(f"{self.name}.calls_rejected").inc()
        self._released()

    @handles(UmAssignmentCommand)
    def on_assignment_command(
        self, msg: UmAssignmentCommand, src: Node, interface: str
    ) -> None:
        self._tx(UmAssignmentComplete(imsi=self.imsi))
        if self._access_purpose == "mo" and self._pending_called is not None:
            # Step 2.1: "the digits dialed by the MS are sent to the BTS
            # in a Um_Setup message."
            self.ti = self._new_ti()
            if self._call_span is not None:
                self._call_span.bind("ti", self.ti)
            self._tx(
                UmSetup(
                    ti=self.ti,
                    imsi=self.imsi,
                    called=self._pending_called,
                    calling=self.msisdn,
                )
            )
            self._pending_called = None
            self.state = "mo-setup"

    @handles(UmAlerting)
    def on_alerting_msg(self, msg: UmAlerting, src: Node, interface: str) -> None:
        # Step 2.7: ringback tone at the MS.
        self.state = "mo-alerting"
        if self.on_alerting is not None:
            self.on_alerting()

    @handles(UmConnect)
    def on_connect(self, msg: UmConnect, src: Node, interface: str) -> None:
        self.state = "in-call"
        self.ti = msg.ti
        if self._setup_span is not None:
            self._setup_span.attrs["setup_delay"] = (
                self.sim.now - self._setup_span.start
            )
            self._setup_span.close(status="ok")
            self._setup_span = None
        self.sim.metrics.counter(f"{self.name}.calls_connected").inc()
        if self.on_connected is not None:
            self.on_connected()

    # ------------------------------------------------------------------
    # MT call (Figure 6)
    # ------------------------------------------------------------------
    @handles(UmPaging)
    def on_paging(self, msg: UmPaging, src: Node, interface: str) -> None:
        if msg.imsi != self.imsi and (msg.tmsi is None or msg.tmsi != self.tmsi):
            return  # page for someone else in the cell
        if self.state != "idle":
            return  # busy; the network's paging timer will expire
        self.state = "accessing"
        self._access_purpose = "mt"
        self._tx(UmChannelRequest(establishment_cause=3))

    @handles(UmSetup)
    def on_setup(self, msg: UmSetup, src: Node, interface: str) -> None:
        # Step 4.5 tail / 4.6: the MS rings, then the user answers.
        self.ti = msg.ti
        self._call_span = self.sim.spans.open(
            "call",
            keys={"imsi": self.imsi, "ti": msg.ti},
            node=self.name,
            direction="mt",
            calling=str(msg.calling) if msg.calling is not None else None,
        )
        self._setup_span = self.sim.spans.open(
            "setup", keys={"imsi": self.imsi}, parent=self._call_span
        )
        self.state = "mt-ringing"
        if self.on_incoming is not None:
            self.on_incoming(msg.calling)
        self._tx(UmAlerting(ti=msg.ti, imsi=self.imsi))
        self.sim.schedule(self.answer_delay, self._answer, msg.ti)

    def _answer(self, ti: int) -> None:
        if self.state != "mt-ringing":
            return
        self.state = "in-call"
        if self._setup_span is not None:
            self._setup_span.close(status="ok")
            self._setup_span = None
        self.sim.metrics.counter(f"{self.name}.calls_connected").inc()
        self._tx(UmConnect(ti=ti, imsi=self.imsi))
        if self.on_connected is not None:
            self.on_connected()

    # ------------------------------------------------------------------
    # Release (steps 3.1 / network initiated)
    # ------------------------------------------------------------------
    def hangup(self) -> None:
        """Step 3.1: the user hangs up."""
        if self.state not in ("in-call", "mo-alerting", "mt-ringing"):
            raise ProtocolError(f"{self.name}: hangup in state {self.state}")
        self.stop_talking()
        if self._call_span is not None:
            self._release_span = self.sim.spans.open(
                "release",
                keys={"imsi": self.imsi},
                parent=self._call_span,
                initiator=self.name,
            )
        self.state = "releasing"
        self._tx(UmDisconnect(ti=self.ti or 0, imsi=self.imsi))

    @handles(UmDisconnect)
    def on_disconnect(self, msg: UmDisconnect, src: Node, interface: str) -> None:
        # Network-initiated release: answer with Um_Release.
        self.stop_talking()
        if self._call_span is not None and self._release_span is None:
            self._release_span = self.sim.spans.open(
                "release",
                keys={"imsi": self.imsi},
                parent=self._call_span,
                initiator="network",
            )
        self.state = "releasing"
        self._tx(UmRelease(ti=msg.ti, imsi=self.imsi))

    @handles(UmRelease)
    def on_release(self, msg: UmRelease, src: Node, interface: str) -> None:
        self._tx(UmReleaseComplete(ti=msg.ti, imsi=self.imsi))
        self._released()

    @handles(UmReleaseComplete)
    def on_release_complete(self, msg: UmReleaseComplete, src: Node, interface: str) -> None:
        self._released()

    def _released(self) -> None:
        self.stop_talking()
        for span in (self._release_span, self._setup_span, self._call_span):
            if span is not None:
                span.close(status="ok")
        self._release_span = self._setup_span = self._call_span = None
        self.state = "idle"
        self.ti = None
        if self.on_released is not None:
            self.on_released()

    # ------------------------------------------------------------------
    # Inter-system handoff (Figure 9)
    # ------------------------------------------------------------------
    @handles(UmHandoverCommand)
    def on_handover_command(
        self, msg: UmHandoverCommand, src: Node, interface: str
    ) -> None:
        target_bts = self.cells.get(msg.target_cell)
        if target_bts is None:
            self.sim.metrics.counter(f"{self.name}.handover_no_cell").inc()
            return
        self.serving_bts = target_bts
        self._tx(UmHandoverAccess(ti=msg.ti, imsi=self.imsi))
        self._tx(UmHandoverComplete(ti=msg.ti, imsi=self.imsi))

    # ------------------------------------------------------------------
    # Voice
    # ------------------------------------------------------------------
    def start_talking(self, frame_interval: float = 0.020, duration: Optional[float] = None) -> None:
        """Generate vocoder frames until :meth:`stop_talking` (or for
        *duration* seconds)."""
        if self.state != "in-call":
            raise ProtocolError(f"{self.name}: start_talking in state {self.state}")
        self.stop_talking()
        if self._call_span is not None:
            self._talk_span = self.sim.spans.open(
                "talk",
                keys={"imsi": self.imsi},
                parent=self._call_span,
                interval=frame_interval,
            )
        media = self.sim.media
        if media is not None and duration is not None:
            self._fluid_flow = self._start_fluid(media, frame_interval, duration)
        else:
            self._voice_proc = spawn(self.sim, self._talk(frame_interval, duration))

    def _talk(self, interval: float, duration: Optional[float]):
        started = self.sim.now
        payload = b"\x00" * 33  # one GSM FR frame, reused for the spurt
        while self.state == "in-call":
            if duration is not None and self.sim.now - started >= duration:
                break
            self._voice_seq += 1
            self.frames_sent += 1
            self._tx(
                TchFrame(
                    ti=self.ti or 0,
                    imsi=self.imsi,
                    seq=self._voice_seq,
                    gen_time_us=int(self.sim.now * 1e6),
                    voice=payload,
                )
            )
            yield interval

    def _start_fluid(self, media, interval: float, duration: float):
        """Register an analytic flow and send only the calibration probe
        (frame 0) through the event path; see :mod:`repro.media.fluid`.
        The circuit TCH has no contention queue, so the flow needs no
        channel model — the probe's arrival captures the whole path."""
        now = self.sim.now
        self._voice_seq += 1
        self.frames_sent += 1
        gen_us = int(now * 1e6)
        flow = media.start_flow(
            key=gen_us, start=now, interval=interval, duration=duration,
            on_frames=self._fluid_frames_sent,
        )
        self._tx(
            TchFrame(
                ti=self.ti or 0,
                imsi=self.imsi,
                seq=self._voice_seq,
                gen_time_us=gen_us,
                voice=b"\x00" * 33,
            )
        )
        return flow

    def _fluid_frames_sent(self, n: int) -> None:
        self._voice_seq += n
        self.frames_sent += n

    def stop_talking(self) -> None:
        if self._voice_proc is not None:
            self._voice_proc.interrupt()
            self._voice_proc = None
        if self._fluid_flow is not None:
            flow, self._fluid_flow = self._fluid_flow, None
            self.sim.media.end_flow(flow)
        if self._talk_span is not None:
            self._talk_span.attrs["frames_sent"] = self.frames_sent
            self._talk_span.close(status="ok")
            self._talk_span = None

    @handles(TchFrame)
    def on_voice(self, frame: TchFrame, src: Node, interface: str) -> None:
        self.frames_received += 1
        now = self.sim.now
        delay = now - frame.gen_time_us / 1e6
        m2e = self._m2e_hist
        if m2e is None:
            m2e = self._m2e_hist = self.sim.metrics.histogram(
                f"{self.name}.mouth_to_ear"
            )
        m2e.observe(delay)
        if self._last_rx_time is not None:
            jit = self._jitter_hist
            if jit is None:
                jit = self._jitter_hist = self.sim.metrics.histogram(
                    f"{self.name}.jitter"
                )
            jit.observe(abs((now - self._last_rx_time) - 0.020))
        self._last_rx_time = now
        media = self.sim.media
        if media is not None:
            media.on_frame(frame.gen_time_us, self)
