"""Event objects and the deterministic event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
instant fire in the order they were scheduled, independent of callback
identity.  Determinism matters here because the integration tests compare
simulated message traces against the paper's figures step by step.

The heap stores plain ``(time, priority, seq, event)`` tuples rather than
:class:`Event` objects, so sift comparisons run as C-level tuple
comparisons instead of Python ``__lt__`` calls — the single hottest
operation in soak runs.  The unique sequence number guarantees the
``event`` element is never compared.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code normally only keeps a reference in order to :meth:`cancel`.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "kwargs",
        "cancelled",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        queue: "Optional[EventQueue]" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped.

        Accounting is handled here: the owning queue's live count drops
        exactly once however the cancellation is reached (directly, or
        via :meth:`repro.sim.kernel.Simulator.cancel`)."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Flattened tuple comparison — no property call on the hot path.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        priority: int = 0,
    ) -> Event:
        """Schedule *callback* at absolute *time* and return the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, args, kwargs or {}, self)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next non-cancelled event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def pop_next(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def pop_due(self, limit: float) -> Optional[Event]:
        """Remove and return the next live event with ``time <= limit``.

        Returns ``None`` without popping when the queue is empty or the
        next live event lies beyond *limit*.  This fuses the kernel's
        peek-then-pop sequence into one heap access per executed event.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                continue
            if entry[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return entry[3]
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def _note_cancel(self) -> None:
        if self._live > 0:
            self._live -= 1

    def note_cancelled(self) -> None:
        """Deprecated compatibility shim.

        Live-count accounting now happens inside :meth:`Event.cancel`
        itself, so every cancellation path (direct or via the simulator)
        is counted exactly once; calling this is a no-op."""

    def clear(self) -> None:
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0
