"""Event objects and the deterministic event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
instant fire in the order they were scheduled, independent of callback
identity.  Determinism matters here because the integration tests compare
simulated message traces against the paper's figures step by step.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code normally only keeps a reference in order to :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "kwargs", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped."""
        self.cancelled = True

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        priority: int = 0,
    ) -> Event:
        """Schedule *callback* at absolute *time* and return the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time, priority, next(self._counter), callback, args, kwargs or {})
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next non-cancelled event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Account for an event cancelled via :meth:`Event.cancel`."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
