"""Restartable protocol timers.

GSM/GPRS/H.323 procedures are full of guard timers (T3210, T3310, RAS
time-to-live, ...).  :class:`Timer` wraps the kernel's event API with the
start/stop/restart semantics those specs assume.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.kernel import Simulator


class Timer:
    """A named one-shot timer bound to a simulator.

    The callback receives no arguments; bind context with a closure or
    ``functools.partial``.  Restarting a running timer cancels the pending
    expiry first, matching the "restart Txxxx" language of the GSM specs.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        duration: float,
        callback: Callable[[], Any],
    ) -> None:
        self.sim = sim
        self.name = name
        self.duration = duration
        self.callback = callback
        self._event: Optional[Event] = None
        self.expiries = 0

    @property
    def running(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, duration: Optional[float] = None) -> None:
        """(Re)start the timer; an already running instance is cancelled."""
        self.stop()
        self._event = self.sim.schedule(
            self.duration if duration is None else duration, self._fire
        )

    # GSM specs say "restart"; provide the alias for readable call sites.
    restart = start

    def stop(self) -> None:
        """Cancel the pending expiry, if any."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.expiries += 1
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"<Timer {self.name} {self.duration}s {state}>"


class PeriodicTimer:
    """A timer that re-arms itself after every expiry until stopped."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        period: float,
        callback: Callable[[], Any],
    ) -> None:
        self.sim = sim
        self.name = name
        self.period = period
        self.callback = callback
        self._event: Optional[Event] = None
        self.ticks = 0

    @property
    def running(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        self.stop()
        self._event = self.sim.schedule(self.period, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self.ticks += 1
        self._event = self.sim.schedule(self.period, self._fire)
        self.callback()
