"""Discrete-event simulation kernel.

This package provides the substrate every network element runs on:

* :class:`~repro.sim.kernel.Simulator` — the event loop and virtual clock;
* :class:`~repro.sim.events.EventQueue` — deterministic priority queue;
* :class:`~repro.sim.timers.Timer` — restartable protocol timers;
* :class:`~repro.sim.rng.RandomStreams` — named deterministic RNG streams;
* :class:`~repro.sim.process.Signal` / :class:`~repro.sim.process.Condition`
  — event-driven waits for generator processes (no polling loops);
* :class:`~repro.sim.trace.TraceRecorder` — message-sequence capture used
  to validate the paper's figures;
* :mod:`~repro.sim.metrics` — counters, histograms and time-weighted
  gauges for the experiments;
* :mod:`~repro.sim.sweep` — parameter sweeps fanned across worker
  processes with deterministic, input-order result merging.

All timestamps are floats in **seconds** of simulated time.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.process import Condition, Process, Signal, spawn, wait_for
from repro.sim.rng import RandomStreams
from repro.sim.sweep import SweepPoint, SweepResult, run_sweep, sweep_grid
from repro.sim.timers import Timer
from repro.sim.trace import TraceEntry, TraceRecorder

__all__ = [
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "sweep_grid",
    "Event",
    "EventQueue",
    "Simulator",
    "Timer",
    "RandomStreams",
    "TraceEntry",
    "TraceRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Process",
    "Signal",
    "Condition",
    "wait_for",
    "spawn",
]
