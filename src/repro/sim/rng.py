"""Deterministic named random streams.

Each subsystem draws from its own ``random.Random`` stream, derived from a
master seed and the stream name.  Adding a new consumer therefore never
perturbs the draws seen by existing consumers — essential for keeping the
golden-trace tests stable while the system grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

    def getrandbits(self, name: str, bits: int) -> int:
        return self.stream(name).getrandbits(bits)
