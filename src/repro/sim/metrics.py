"""Counters, histograms and time-weighted gauges.

The Section-6 experiments need three measurement shapes:

* :class:`Counter` — signalling-message counts per node;
* :class:`Histogram` — latency distributions (setup delay, mouth-to-ear
  delay, jitter);
* :class:`Gauge` — time-weighted residency, e.g. "PDP contexts held at the
  SGSN × seconds", the quantity behind the paper's idle-deactivation
  trade-off discussion.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

#: Keys of a histogram summary dict, in emission order — shared by
#: :meth:`MetricsRegistry.histograms`, the time-series sampler and the
#: snapshot merger, so every summary anywhere has the same shape.
HISTOGRAM_SUMMARY_KEYS = (
    "count", "mean", "min", "max", "stdev", "p50", "p95", "p99",
)


def _quantile_sorted(data: Sequence[float], q: float) -> float:
    """Exact quantile of pre-sorted *data* by linear interpolation."""
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(data) - 1)
    if data[lo] == data[hi]:
        # Avoid float wobble when interpolating equal samples.
        return data[lo]
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def summarize_samples(samples: Sequence[float]) -> Dict[str, float]:
    """Summary dict (``HISTOGRAM_SUMMARY_KEYS``) of raw *samples*.

    Used for both whole-run histogram dumps and the per-window buckets
    of :class:`repro.obs.series.SeriesSampler`; the quantile
    interpolation is byte-identical to :meth:`Histogram.quantile`.
    """
    n = len(samples)
    if n == 0:
        empty: Dict[str, float] = dict.fromkeys(HISTOGRAM_SUMMARY_KEYS, 0.0)
        empty["count"] = 0
        return empty
    # Sum in observation order (not sorted order): float summation is
    # order-dependent and these values must match the pre-existing
    # Histogram.mean/stdev properties byte for byte.
    data = sorted(samples)
    mean = sum(samples) / n
    if n < 2:
        stdev = 0.0
    else:
        stdev = math.sqrt(sum((x - mean) ** 2 for x in samples) / (n - 1))
    return {
        "count": n,
        "mean": mean,
        "min": data[0],
        "max": data[-1],
        "stdev": stdev,
        "p50": _quantile_sorted(data, 0.50),
        "p95": _quantile_sorted(data, 0.95),
        "p99": _quantile_sorted(data, 0.99),
    }


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Stores raw samples; small simulations make exact quantiles cheap."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []
        # Sorted view, built lazily on the first quantile read and
        # reused until the next observe(); reports ask for several
        # quantiles in a row and must not re-sort per call.
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self._sorted = None

    def observe_many(self, values: Sequence[float]) -> None:
        """Append a batch of samples in order — equivalent to calling
        :meth:`observe` per value; the fluid media model's flush path."""
        self.samples.extend(values)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def quantile(self, q: float) -> float:
        """Exact quantile by linear interpolation; ``q`` in [0, 1]."""
        if not self.samples:
            return 0.0
        data = self._sorted
        if data is None:
            data = self._sorted = sorted(self.samples)
        return _quantile_sorted(data, q)

    def summary(self) -> Dict[str, float]:
        """Whole-run summary dict (``HISTOGRAM_SUMMARY_KEYS``).

        Works over a sliced copy of the samples: the slice is one atomic
        C-level copy, so a scrape thread summarising a live histogram
        sees a consistent set even while the simulation thread appends.
        """
        return summarize_samples(self.samples[:])

    def window_summary(self, start: int) -> Dict[str, float]:
        """Summary of the samples observed since index *start* — the
        time-series sampler's per-bucket view.  Samples are append-only,
        so ``(start, len(samples))`` delimits one sampling window."""
        return summarize_samples(self.samples[start:])

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below *threshold* (e.g. the share
        of voice frames meeting a delay budget)."""
        if not self.samples:
            return 0.0
        return sum(1 for x in self.samples if x < threshold) / len(self.samples)


class Gauge:
    """A time-weighted level (e.g. number of active PDP contexts).

    ``integral()`` returns the level integrated over simulated time, i.e.
    *context-seconds of residency*.
    """

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self._clock = clock
        self.value = 0.0
        self._last_change = clock()
        self._integral = 0.0
        self.peak = 0.0

    def _accumulate(self) -> None:
        now = self._clock()
        self._integral += self.value * (now - self._last_change)
        self._last_change = now

    def set(self, value: float) -> None:
        self._accumulate()
        self.value = value
        self.peak = max(self.peak, value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def integral(self) -> float:
        self._accumulate()
        return self._integral

    def peek_integral(self) -> float:
        """The integral up to the current clock *without* settling any
        state — numerically identical to :meth:`integral`, but a pure
        read, so a live scrape thread can call it while the simulation
        thread is mutating the gauge."""
        return self._integral + self.value * (self._clock() - self._last_change)

    def time_average(self) -> float:
        now = self._clock()
        if now <= 0:
            return self.value
        return self.integral() / now

    def peek_time_average(self) -> float:
        """Non-mutating twin of :meth:`time_average` (scrape thread)."""
        now = self._clock()
        if now <= 0:
            return self.value
        return self.peek_integral() / now


class MetricsRegistry:
    """Per-simulation registry; metrics are created on first access."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, self._clock)
        return g

    def counters(self, prefix: str = "") -> Dict[str, int]:
        # ``list(dict.items())`` materialises in one C call — atomic
        # under the GIL — so a scrape thread dumping a live registry
        # never races a simulation thread registering a new metric.
        return {
            name: c.value
            for name, c in sorted(list(self._counters.items()))
            if name.startswith(prefix)
        }

    def gauges(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Name -> summary dict for every gauge, mirroring
        :meth:`counters`.  ``integral`` and ``time_average`` are settled
        up to the current clock via the non-mutating ``peek_*`` reads —
        numerically identical to the settling forms, but safe for a
        scrape thread dumping mid-run."""
        return {
            name: {
                "value": g.value,
                "peak": g.peak,
                "integral": g.peek_integral(),
                "time_average": g.peek_time_average(),
            }
            for name, g in sorted(list(self._gauges.items()))
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Name -> summary dict for every histogram, mirroring
        :meth:`counters`."""
        return {
            name: h.summary()
            for name, h in sorted(list(self._histograms.items()))
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, object]:
        """A plain-data dump of every metric plus the clock, suitable for
        JSON serialisation, cross-process transfer (sweep workers) and
        deterministic merging (:func:`repro.obs.export.merge_snapshots`).
        Safe to call from a scrape thread against an in-progress run:
        every metric family is snapshot-copied before iteration and no
        read mutates registry state."""
        return {
            "sim_time": self._clock(),
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def counter_items(self) -> List["Counter"]:
        """Live counters in sorted-name order (series sampling)."""
        return [c for _, c in sorted(self._counters.items())]

    def gauge_items(self) -> List["Gauge"]:
        """Live gauges in sorted-name order (series sampling)."""
        return [g for _, g in sorted(self._gauges.items())]

    def histogram_items(self) -> List["Histogram"]:
        """Live histograms in sorted-name order (series sampling)."""
        return [h for _, h in sorted(self._histograms.items())]

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)

    def get_histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def get_gauge(self, name: str) -> Optional[Gauge]:
        return self._gauges.get(name)
