"""Generator-based simulation processes.

Workload generators (call arrival processes, talkspurt models) are easier
to read as sequential code than as callback chains.  :func:`spawn` runs a
generator as a process: every ``yield <float>`` suspends it for that many
simulated seconds.

Example
-------
>>> from repro.sim import Simulator, spawn
>>> sim = Simulator()
>>> ticks = []
>>> def proc():
...     for i in range(3):
...         ticks.append((sim.now, i))
...         yield 1.0
>>> _ = spawn(sim, proc())
>>> sim.run()
>>> ticks
[(0.0, 0), (1.0, 1), (2.0, 2)]
"""

from __future__ import annotations

from typing import Generator

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Process:
    """Handle to a spawned generator process."""

    def __init__(self, sim: Simulator, gen: Generator) -> None:
        self.sim = sim
        self.gen = gen
        self.finished = False
        self._event = None

    def _advance(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self.gen)
        except StopIteration:
            self.finished = True
            self._event = None
            return
        if not isinstance(delay, (int, float)):
            raise SimulationError(
                f"process yielded {delay!r}; processes must yield delays in seconds"
            )
        self._event = self.sim.schedule(float(delay), self._advance)

    def interrupt(self) -> None:
        """Stop the process; its generator is closed."""
        if self.finished:
            return
        self.finished = True
        self.sim.cancel(self._event)
        self._event = None
        self.gen.close()


def spawn(sim: Simulator, gen: Generator, delay: float = 0.0) -> Process:
    """Start *gen* as a process after *delay* seconds; returns its handle."""
    proc = Process(sim, gen)
    proc._event = sim.schedule(delay, proc._advance)
    return proc
