"""Generator-based simulation processes.

Workload generators (call arrival processes, talkspurt models) are easier
to read as sequential code than as callback chains.  :func:`spawn` runs a
generator as a process: every ``yield <float>`` suspends it for that many
simulated seconds.

Processes can also block on *state changes* instead of polling: a
:class:`Signal` is a zero-cost pulse that state machines fire whenever
something observable happens, and ``yield wait_for(signal, predicate,
timeout)`` suspends the process until the predicate holds (re-checked on
every pulse) or the timeout elapses.  This removes the wake-up-and-poll
events that otherwise dominate soak-run event counts.

Example
-------
>>> from repro.sim import Simulator, spawn
>>> sim = Simulator()
>>> ticks = []
>>> def proc():
...     for i in range(3):
...         ticks.append((sim.now, i))
...         yield 1.0
>>> _ = spawn(sim, proc())
>>> sim.run()
>>> ticks
[(0.0, 0), (1.0, 1), (2.0, 2)]
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Union

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Signal:
    """A broadcast pulse that processes can wait on.

    State machines create one per observable aspect (e.g. an MS's
    ``state_changed``) and call :meth:`fire` after every transition.
    Firing with no subscribers costs one truth test, so instrumenting a
    state machine is free until somebody actually waits.

    Subscribers are notified in subscription order, and woken processes
    are rescheduled through the simulator's event queue, so wake-up
    ordering is deterministic for a given seed.
    """

    __slots__ = ("name", "_subscribers", "fires")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._subscribers: List[Callable[[], None]] = []
        self.fires = 0

    def subscribe(self, callback: Callable[[], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def fire(self) -> None:
        """Notify every subscriber that the guarded state changed."""
        if not self._subscribers:
            return
        self.fires += 1
        # Snapshot: waking a process may re-subscribe or unsubscribe.
        for callback in tuple(self._subscribers):
            if callback in self._subscribers:
                callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name or id(self)} subs={len(self._subscribers)}>"


class Condition:
    """A predicate over mutable state paired with the :class:`Signal`
    that announces changes to that state."""

    __slots__ = ("signal", "predicate")

    def __init__(self, signal: Signal, predicate: Callable[[], bool]) -> None:
        self.signal = signal
        self.predicate = predicate

    def wait(self, timeout: Optional[float] = None) -> "Wait":
        return Wait(self.signal, self.predicate, timeout)


class Wait:
    """Yieldable wait request: suspend until *predicate* holds (checked
    at each *signal* pulse) or *timeout* simulated seconds elapse.

    Built by :func:`wait_for`; processes yield the instance."""

    __slots__ = ("signal", "predicate", "timeout")

    def __init__(
        self,
        signal: Signal,
        predicate: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.signal = signal
        self.predicate = predicate
        self.timeout = timeout


def wait_for(
    condition: Union[Signal, Condition],
    predicate: Optional[Callable[[], bool]] = None,
    timeout: Optional[float] = None,
) -> Wait:
    """Build a wait request for ``yield`` inside a process.

    *condition* is a :class:`Signal` (optionally with a *predicate* to
    re-check on each pulse) or a :class:`Condition`.  Without a
    predicate the process wakes on the next pulse."""
    if isinstance(condition, Condition):
        if predicate is not None:
            raise SimulationError("Condition already carries a predicate")
        return Wait(condition.signal, condition.predicate, timeout)
    return Wait(condition, predicate, timeout)


class Process:
    """Handle to a spawned generator process."""

    def __init__(self, sim: Simulator, gen: Generator) -> None:
        self.sim = sim
        self.gen = gen
        self.finished = False
        self._event = None
        self._wait: Optional[Wait] = None

    def _advance(self) -> None:
        if self.finished:
            return
        self._event = None
        try:
            item = next(self.gen)
        except StopIteration:
            self.finished = True
            return
        if isinstance(item, Wait):
            self._begin_wait(item)
        elif isinstance(item, (int, float)):
            self._event = self.sim.schedule(float(item), self._advance)
        else:
            raise SimulationError(
                f"process yielded {item!r}; processes must yield delays in "
                "seconds or wait_for(...) requests"
            )

    def _begin_wait(self, wait: Wait) -> None:
        predicate = wait.predicate
        if predicate is not None and predicate():
            # Already satisfied: resume via the event queue (never
            # synchronously) so execution order stays deterministic.
            self._event = self.sim.call_soon(self._advance)
            return
        self._wait = wait
        wait.signal.subscribe(self._on_signal)
        if wait.timeout is not None:
            self._event = self.sim.schedule(wait.timeout, self._on_wait_timeout)

    def _on_signal(self) -> None:
        wait = self._wait
        if wait is None:
            return
        predicate = wait.predicate
        if predicate is not None and not predicate():
            return  # spurious pulse: keep waiting
        self._end_wait()
        self._event = self.sim.call_soon(self._advance)

    def _on_wait_timeout(self) -> None:
        # The timeout event itself is the resumption; the process
        # re-checks its predicate and handles the timeout case.
        wait = self._wait
        if wait is None:
            return
        self._wait = None
        wait.signal.unsubscribe(self._on_signal)
        self._event = None
        self._advance()

    def _end_wait(self) -> None:
        wait = self._wait
        if wait is None:
            return
        self._wait = None
        wait.signal.unsubscribe(self._on_signal)
        self.sim.cancel(self._event)  # pending timeout, if any
        self._event = None

    def interrupt(self) -> None:
        """Stop the process; its generator is closed."""
        if self.finished:
            return
        self.finished = True
        self._end_wait()
        self.sim.cancel(self._event)
        self._event = None
        self.gen.close()


def spawn(sim: Simulator, gen: Generator, delay: float = 0.0) -> Process:
    """Start *gen* as a process after *delay* seconds; returns its handle."""
    proc = Process(sim, gen)
    proc._event = sim.schedule(delay, proc._advance)
    return proc
