"""The discrete-event simulator.

A :class:`Simulator` owns the virtual clock, the event queue, a
deterministic random-stream factory, a trace recorder and a metrics
registry.  Network elements never read wall-clock time; everything is
driven through :meth:`Simulator.schedule`.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "hello")
>>> sim.run()
>>> (sim.now, fired)
(1.5, ['hello'])
"""

from __future__ import annotations

import heapq
import time as _time
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.profiler import KernelProfiler
from repro.obs.spans import SpanTracker
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hops import HopRecorder


class _Allocator:
    """Simulation-wide monotonically increasing id source.

    H.225 call references must be unique per gatekeeper; deriving them
    per endpoint invites collisions, so every endpoint draws from this
    shared allocator instead."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams.  Two simulators built
        with the same seed and workload produce byte-identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.rng = RandomStreams(seed)
        self.trace = TraceRecorder(clock=lambda: self._now)
        self.metrics = MetricsRegistry(clock=lambda: self._now)
        #: Correlated procedure spans; fed by the trace recorder's sink.
        self.spans = SpanTracker(clock=lambda: self._now)
        self.trace.sink = self.spans.on_entry
        #: Globally unique H.225 call references for this simulation.
        self.call_refs = _Allocator(start=1001)
        #: Total events executed across all run() calls.  Maintained per
        #: event only by the instrumented loop (heartbeats read it live);
        #: the fast loop settles it once per run() return.
        self.events_executed = 0
        #: Set by observers (heartbeat) that need per-event accounting;
        #: forces the instrumented loop even without a profiler.
        self.count_events = False
        #: Per-link hop recorder (``None`` when latency attribution is
        #: off; the link layer pays one attribute load for the check).
        self.hops: Optional["HopRecorder"] = None
        #: Fluid media session (``None`` = event-per-frame media; see
        #: :mod:`repro.media.fluid`).  Media endpoints pay one attribute
        #: load per received frame for the check.
        self.media = None
        self._profiler: Optional[KernelProfiler] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule *callback(\\*args, \\*\\*kwargs)* after *delay* seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        # Inlined EventQueue.push — this is the hottest call in the
        # simulator and the extra frame is measurable in soak runs.
        time = self._now + delay
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        queue = self._queue
        seq = next(queue._counter)
        event = Event(time, priority, seq, callback, args, kwargs, queue)
        heapq.heappush(queue._heap, (time, priority, seq, event))
        queue._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        return self._queue.push(time, callback, args, kwargs, priority)

    def call_soon(self, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule *callback* at the current instant (after pending events
        already scheduled for this instant)."""
        return self._queue.push(self._now, callback, args, kwargs, 0)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event.  Cancelling ``None`` or an already
        cancelled event is a no-op, which simplifies timer handling."""
        if event is None:
            return
        event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remain."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        event.callback(*event.args, **event.kwargs)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run until the queue drains, *until* is reached, or :meth:`stop`.

        Returns the number of events executed.  ``max_events`` is a guard
        against runaway feedback loops in protocol state machines.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if self._profiler is not None or self.count_events:
            return self._run_instrumented(until, max_events)
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        heap = queue._heap
        pop = heapq.heappop
        limit = float("inf") if until is None else until
        try:
            # The scheduler's innermost loop, inlined: one peek plus one
            # C-level heappop of a plain tuple per executed event.
            while not self._stopped:
                if not heap:
                    break
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    pop(heap)
                    continue
                if entry[0] > limit:
                    break
                pop(heap)
                queue._live -= 1
                now = entry[0]
                self._now = now
                event.callback(*event.args, **event.kwargs)
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "probable protocol message loop"
                    )
                # Batch the run of events sharing this timestamp: the
                # clock cannot move, so the limit check and the clock
                # store are redundant until the timestamp changes.
                # Ordering is untouched — the heap pops the same total
                # (time, priority, seq) order either way — and stop()
                # still takes effect after the current event.
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        pop(heap)
                        continue
                    if entry[0] != now or self._stopped:
                        break
                    pop(heap)
                    queue._live -= 1
                    event.callback(*event.args, **event.kwargs)
                    executed += 1
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "probable protocol message loop"
                        )
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return executed

    def run_paced(
        self,
        until: Optional[float],
        quantum: float,
        hook: Callable[["Simulator"], Any],
        max_events: int = 10_000_000,
    ) -> int:
        """Run in *quantum*-sized sim-time slices, yielding to *hook*
        between slices — the kernel half of live service mode.

        Event order and clock behaviour are identical to a single
        ``run(until=...)`` call: slicing only decides how often control
        returns to the caller, never which event runs next, so a seeded
        run stays byte-identical whether it is paced or batch.  The hook
        runs *outside* the event loop (it may sleep against the wall
        clock, publish snapshots, or request a stop by returning
        ``False``) and must not schedule events in the past.

        With ``until=None`` the loop runs until the hook stops it or
        :meth:`stop` is called; the clock still advances through idle
        quanta (``run(until=...)`` settles the clock forward even when
        the queue is empty), so a drained queue idles forward at pace
        instead of spinning.  Returns the number of events executed.
        """
        if quantum <= 0:
            raise SimulationError(
                f"pacing quantum must be > 0, got {quantum!r}"
            )
        executed = 0
        while True:
            target = self._now + quantum
            if until is not None and target > until:
                target = until
            executed += self.run(until=target, max_events=max_events)
            if hook(self) is False or self._stopped:
                break
            if until is not None and self._now >= until:
                break
        return executed

    def _run_instrumented(
        self, until: Optional[float], max_events: int
    ) -> int:
        """The observable twin of :meth:`run`'s inlined loop.

        Identical event ordering and clock behaviour, plus per-event
        accounting: ``events_executed`` advances per event (heartbeats
        read it mid-run) and, when a profiler is enabled, each callback
        is timed under its qualified name.  Kept separate so the default
        path pays nothing for any of this.
        """
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        heap = queue._heap
        pop = heapq.heappop
        clock = _time.perf_counter
        profiler = self._profiler
        limit = float("inf") if until is None else until
        try:
            while not self._stopped:
                if not heap:
                    break
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    pop(heap)
                    continue
                if entry[0] > limit:
                    break
                pop(heap)
                queue._live -= 1
                now = entry[0]
                self._now = now
                while True:
                    if profiler is not None:
                        callback = event.callback
                        key = getattr(callback, "__qualname__", None)
                        if key is None:
                            key = type(callback).__name__
                        t0 = clock()
                        callback(*event.args, **event.kwargs)
                        profiler.record(key, clock() - t0)
                    else:
                        event.callback(*event.args, **event.kwargs)
                    executed += 1
                    self.events_executed += 1
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "probable protocol message loop"
                        )
                    # Same-timestamp batch, mirroring run() so both
                    # loops execute identical event order.
                    while heap and heap[0][3].cancelled:
                        pop(heap)
                    if not heap:
                        break
                    entry = heap[0]
                    if entry[0] != now or self._stopped:
                        break
                    pop(heap)
                    queue._live -= 1
                    event = entry[3]
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return executed

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> Optional[KernelProfiler]:
        return self._profiler

    def enable_profiler(self) -> KernelProfiler:
        """Switch subsequent :meth:`run` calls to the instrumented loop
        and return the (new or existing) profiler."""
        if self._profiler is None:
            self._profiler = KernelProfiler()
        return self._profiler

    def disable_profiler(self) -> Optional[KernelProfiler]:
        """Return to the fast loop; returns the detached profiler so its
        accumulated stats can still be reported."""
        profiler, self._profiler = self._profiler, None
        if profiler is not None:
            profiler.stopped_at = _time.perf_counter()
        return profiler

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or ``None``."""
        return self._queue.peek_time()

    def run_until_true(
        self, predicate: Callable[[], bool], timeout: float = 30.0
    ) -> bool:
        """Run events until *predicate* holds or *timeout* simulated
        seconds elapse; returns the predicate's final value.  The main
        driver loop for scenario code and tests."""
        deadline = self._now + timeout
        pop_due = self._queue.pop_due
        while not predicate():
            event = pop_due(deadline)
            if event is None:
                if self._queue.peek_time() is not None:
                    self._now = deadline
                break
            self._now = event.time
            event.callback(*event.args, **event.kwargs)
        return predicate()
