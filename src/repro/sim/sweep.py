"""Parallel parameter-sweep runner.

Experiments E8/E9/E11 evaluate the same scenario at many parameter
points (core-latency factor, offered load, call rate ...).  Each point
builds its own :class:`~repro.sim.kernel.Simulator`, so points are fully
independent and embarrassingly parallel.  :func:`run_sweep` fans the
points across a :class:`concurrent.futures.ProcessPoolExecutor` and
merges the results **in input order**, so a parallel sweep returns
byte-identical results to a serial one — determinism is preserved
because every point still runs its own seeded simulator and the merge
never depends on completion order.

Worker functions must be picklable (defined at module top level) and are
called as ``fn(**point.params)``.

Example
-------
>>> from repro.sim.sweep import run_sweep, sweep_grid
>>> points = sweep_grid(x=(1, 2), y=("a", "b"))
>>> [p.key for p in points]
[(('x', 1), ('y', 'a')), (('x', 1), ('y', 'b')), (('x', 2), ('y', 'a')), (('x', 2), ('y', 'b'))]

The worker count defaults to the ``REPRO_SWEEP_JOBS`` environment
variable (unset or ``1`` means in-process serial execution, which is
also the fallback whenever a pool cannot be created).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["SweepError", "SweepPoint", "SweepResult", "resolve_jobs",
           "run_sweep", "sweep_grid"]


class SweepError(SimulationError):
    """A sweep point failed; carries the point for context."""


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep.

    Attributes
    ----------
    key:
        Canonical ``((axis, value), ...)`` identity, in axis order.  The
        deterministic merge key — results are reported in input order
        and tagged with this key regardless of which worker process
        finished first.
    params:
        Keyword arguments passed to the sweep worker.
    """

    key: Tuple[Tuple[str, Any], ...]
    params: Dict[str, Any] = field(compare=False)

    @classmethod
    def from_params(cls, **params: Any) -> "SweepPoint":
        return cls(tuple(sorted(params.items())), dict(params))

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={v!r}" for k, v in self.key)
        return f"SweepPoint({inner})"


@dataclass(frozen=True)
class SweepResult:
    """A sweep point paired with its worker's return value."""

    point: SweepPoint
    value: Any

    def snapshots(self) -> List[Dict[str, Any]]:
        """Metric snapshots embedded anywhere in ``value`` — workers
        build their own simulators, so snapshots travel inside the
        return value (see :func:`repro.obs.export.find_snapshots`)."""
        from repro.obs.export import find_snapshots

        return find_snapshots(self.value)

    def series(self) -> List[Dict[str, Any]]:
        """Serialised time series embedded anywhere in ``value``, the
        windowed companion of :meth:`snapshots` (see
        :func:`repro.obs.series.find_series`)."""
        from repro.obs.series import find_series

        return find_series(self.value)

    def incidents(self) -> List[Dict[str, Any]]:
        """Flight-recorder incident bundles embedded anywhere in
        ``value`` (see :func:`repro.obs.recorder.find_incidents`) —
        merged into ``--incident-dir`` with deterministic numbering."""
        from repro.obs.recorder import find_incidents

        return find_incidents(self.value)


def sweep_grid(**axes: Sequence[Any]) -> List[SweepPoint]:
    """Cartesian product of the given axes as :class:`SweepPoint` list.

    Axis order follows keyword order; the last axis varies fastest
    (row-major), so ``sweep_grid(seed=(0, 1), factor=(1.0, 2.0))``
    enumerates seed 0 at both factors before seed 1.
    """
    if not axes:
        return []
    names = list(axes)
    points = []
    for combo in itertools.product(*(axes[name] for name in names)):
        params = dict(zip(names, combo))
        points.append(SweepPoint(tuple(zip(names, combo)), params))
    return points


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Number of worker processes: the explicit argument if given, else
    the ``REPRO_SWEEP_JOBS`` environment variable, else 1 (serial)."""
    if jobs is None:
        raw = os.environ.get("REPRO_SWEEP_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise SweepError(f"REPRO_SWEEP_JOBS={raw!r} is not an integer")
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs!r}")
    return jobs


def run_sweep(
    fn: Callable[..., Any],
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
) -> List[SweepResult]:
    """Evaluate ``fn(**point.params)`` at every point.

    With ``jobs > 1`` the points run on a process pool; results are
    merged in **input order** (not completion order), so callers see the
    same list a serial run produces.  A failing point raises
    :class:`SweepError` naming the point; remaining points are not
    awaited.  Falls back to serial execution when the platform cannot
    fork a pool (e.g. restricted sandboxes).
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(points) <= 1:
        return [_run_point(fn, point) for point in points]

    from concurrent.futures import ProcessPoolExecutor

    try:
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(points)))
    except (OSError, ValueError):  # pragma: no cover - platform dependent
        return [_run_point(fn, point) for point in points]
    with executor:
        futures = [executor.submit(fn, **point.params) for point in points]
        results = []
        for point, future in zip(points, futures):
            try:
                value = future.result()
            except SweepError:
                raise
            except Exception as exc:
                raise SweepError(f"sweep point {point!r} failed: {exc}") from exc
            results.append(SweepResult(point, value))
    return results


def _run_point(fn: Callable[..., Any], point: SweepPoint) -> SweepResult:
    try:
        return SweepResult(point, fn(**point.params))
    except SweepError:
        raise
    except Exception as exc:
        raise SweepError(f"sweep point {point!r} failed: {exc}") from exc
