"""Message-sequence tracing.

The paper's "results" are message-flow figures.  Every link-level send in
the simulation is recorded as a :class:`TraceEntry`; integration tests and
benches project the recorded trace onto ``(message, src, dst)`` triples and
compare them against the golden flows transcribed from Figures 4–6
(:mod:`repro.core.flows`).

Recorded ``"msg"`` entries are additionally indexed by message name, so
:meth:`TraceRecorder.first` / :meth:`~TraceRecorder.last` /
:meth:`~TraceRecorder.count` — which scenario drivers call once per
executed event while waiting for a flow step — are O(1) instead of
rescanning the entry list.  For soak runs the recorder can be disabled
(``enabled = False``) or bounded (:meth:`TraceRecorder.set_limit`), which
keeps memory flat over hours of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import TraceWindowError


@dataclass(frozen=True)
class TraceEntry:
    """One recorded protocol event.

    Attributes
    ----------
    time:
        Simulated time at which the message was *delivered*.
    kind:
        ``"msg"`` for link-level messages; procedures may record
        ``"note"`` entries for internal milestones (e.g. "PDP context
        created").
    src, dst:
        Node names.
    interface:
        Interface name the message crossed (``Um``, ``Abis``, ``A``,
        ``Gb``, ``Gn``, ``ip``, ...).
    message:
        Message name, e.g. ``"MAP_Update_Location"`` or ``"RAS_RRQ"``.
    info:
        Free-form detail dictionary (call ids, IMSIs, ...).
    """

    time: float
    kind: str
    src: str
    dst: str
    interface: str
    message: str
    info: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def triple(self) -> Tuple[str, str, str]:
        return (self.message, self.src, self.dst)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for JSONL export; info values that are rich
        objects (IMSI, E164Number, ...) are stringified by the exporter's
        JSON encoder, not here, so in-process consumers keep the
        originals."""
        return {
            "t": self.time,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "interface": self.interface,
            "message": self.message,
            "info": self.info,
        }


class TraceRecorder:
    """Accumulates :class:`TraceEntry` records in simulation order."""

    #: Message names never recorded — media frames would otherwise swamp
    #: the signalling trace (they are measured through metrics instead).
    DEFAULT_QUIET = frozenset({"TCH_Frame", "RTP", "PCM_Frame"})

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.entries: List[TraceEntry] = []
        self.enabled = True
        self.quiet_names = set(self.DEFAULT_QUIET)
        # message name -> list of "msg"-kind entries bearing that name,
        # in recording order.
        self._msg_index: Dict[str, List[TraceEntry]] = {}
        self._msg_count = 0
        self._limit: Optional[int] = None
        self.dropped = 0
        # Message names that have lost entries to window trimming; point
        # queries about them raise instead of silently answering from a
        # partial window.
        self._evicted_names: set = set()
        # Called with each recorded entry (after indexing); the span
        # tracker hooks in here.  Kept as a plain attribute so the
        # no-observer case costs one attribute load per record.
        self.sink: Optional[Callable[[TraceEntry], None]] = None

    def set_limit(self, limit: Optional[int]) -> None:
        """Bound the recorder to roughly *limit* entries (``None`` for
        unbounded).  When the bound is exceeded the oldest half of the
        entries is discarded in one batch — amortised O(1) per record —
        so soak runs keep a window of recent history instead of growing
        without bound.  Windowed traces are for monitoring and metrics;
        golden-flow comparisons need the unbounded mode."""
        if limit is not None and limit < 2:
            raise ValueError(f"trace limit must be >= 2, got {limit!r}")
        self._limit = limit
        if limit is not None and len(self.entries) > limit:
            self._trim(limit)

    @property
    def limit(self) -> Optional[int]:
        return self._limit

    def record(
        self,
        kind: str,
        src: str,
        dst: str,
        interface: str,
        message: str,
        **info: Any,
    ) -> None:
        if not self.enabled or message in self.quiet_names:
            return
        entry = TraceEntry(self._clock(), kind, src, dst, interface, message, info)
        self.entries.append(entry)
        if kind == "msg":
            self._msg_count += 1
            bucket = self._msg_index.get(message)
            if bucket is None:
                bucket = self._msg_index[message] = []
            bucket.append(entry)
        if self._limit is not None and len(self.entries) > self._limit:
            self._trim(self._limit)
        sink = self.sink
        if sink is not None:
            sink(entry)

    def _trim(self, limit: int) -> None:
        keep_from = len(self.entries) - limit // 2
        dropped = self.entries[:keep_from]
        del self.entries[:keep_from]
        self.dropped += len(dropped)
        for entry in dropped:
            if entry.kind == "msg":
                self._evicted_names.add(entry.message)
        # Rebuild the index from the surviving window; batch-trimming
        # keeps this amortised O(1) per recorded entry.
        self._msg_index = {}
        self._msg_count = 0
        for entry in self.entries:
            if entry.kind == "msg":
                self._msg_count += 1
                self._msg_index.setdefault(entry.message, []).append(entry)

    def note(self, node: str, text: str, **info: Any) -> None:
        """Record an internal milestone at *node*.  Info keys that would
        shadow the positional fields are suffixed with ``_``."""
        reserved = {"kind", "src", "dst", "interface", "message"}
        safe = {(k + "_" if k in reserved else k): v for k, v in info.items()}
        self.record("note", node, node, "-", text, **safe)

    def clear(self) -> None:
        self.entries.clear()
        self._msg_index.clear()
        self._msg_count = 0
        self.dropped = 0
        # A deliberate clear() resets the eviction bookkeeping too: the
        # caller is starting a fresh measurement window on purpose.
        self._evicted_names.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def messages(
        self,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        interface: Optional[str] = None,
        name: Optional[str] = None,
        since: float = 0.0,
    ) -> List[TraceEntry]:
        """Filtered view of recorded ``"msg"`` entries."""
        # A name filter narrows the scan to that message's index bucket.
        pool = self.entries if name is None else self._msg_index.get(name, [])
        out = []
        for e in pool:
            if e.kind != "msg" or e.time < since:
                continue
            if src is not None and e.src != src:
                continue
            if dst is not None and e.dst != dst:
                continue
            if interface is not None and e.interface != interface:
                continue
            out.append(e)
        return out

    def triples(self, **filters: Any) -> List[Tuple[str, str, str]]:
        """``(message, src, dst)`` projection, the golden-flow comparand."""
        return [e.triple() for e in self.messages(**filters)]

    def contains_subsequence(
        self, expected: Iterable[Tuple[str, str, str]], **filters: Any
    ) -> bool:
        """True when *expected* appears in order (not necessarily
        contiguously) within the recorded message triples."""
        actual = self.triples(**filters)
        it = iter(actual)
        return all(any(step == got for got in it) for step in expected)

    def _check_window(self, name: str) -> None:
        """Soak-mode footgun guard: once entries for *name* have been
        evicted by the retention window, point queries about it would
        silently under-count (or miss the true first occurrence), letting
        flow assertions pass vacuously.  Fail loudly instead."""
        if name in self._evicted_names:
            raise TraceWindowError(
                f"trace entries for {name!r} were evicted by the retention "
                f"window (limit={self._limit!r}, dropped={self.dropped}); "
                "first()/last()/count() would answer from partial history. "
                "Raise the limit, or clear() to start a fresh window."
            )

    def first(self, name: str) -> Optional[TraceEntry]:
        self._check_window(name)
        bucket = self._msg_index.get(name)
        return bucket[0] if bucket else None

    def last(self, name: str) -> Optional[TraceEntry]:
        self._check_window(name)
        bucket = self._msg_index.get(name)
        return bucket[-1] if bucket else None

    def count(self, name: Optional[str] = None) -> int:
        if name is None:
            return self._msg_count
        self._check_window(name)
        return len(self._msg_index.get(name, ()))

    def span(self, first_name: str, last_name: str) -> Optional[float]:
        """Elapsed simulated time between the first occurrence of
        *first_name* and the last occurrence of *last_name*."""
        a = self.first(first_name)
        b = self.last(last_name)
        if a is None or b is None:
            return None
        return b.time - a.time
