"""Message-sequence tracing.

The paper's "results" are message-flow figures.  Every link-level send in
the simulation is recorded as a :class:`TraceEntry`; integration tests and
benches project the recorded trace onto ``(message, src, dst)`` triples and
compare them against the golden flows transcribed from Figures 4–6
(:mod:`repro.core.flows`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEntry:
    """One recorded protocol event.

    Attributes
    ----------
    time:
        Simulated time at which the message was *delivered*.
    kind:
        ``"msg"`` for link-level messages; procedures may record
        ``"note"`` entries for internal milestones (e.g. "PDP context
        created").
    src, dst:
        Node names.
    interface:
        Interface name the message crossed (``Um``, ``Abis``, ``A``,
        ``Gb``, ``Gn``, ``ip``, ...).
    message:
        Message name, e.g. ``"MAP_Update_Location"`` or ``"RAS_RRQ"``.
    info:
        Free-form detail dictionary (call ids, IMSIs, ...).
    """

    time: float
    kind: str
    src: str
    dst: str
    interface: str
    message: str
    info: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def triple(self) -> Tuple[str, str, str]:
        return (self.message, self.src, self.dst)


class TraceRecorder:
    """Accumulates :class:`TraceEntry` records in simulation order."""

    #: Message names never recorded — media frames would otherwise swamp
    #: the signalling trace (they are measured through metrics instead).
    DEFAULT_QUIET = frozenset({"TCH_Frame", "RTP", "PCM_Frame"})

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.entries: List[TraceEntry] = []
        self.enabled = True
        self.quiet_names = set(self.DEFAULT_QUIET)

    def record(
        self,
        kind: str,
        src: str,
        dst: str,
        interface: str,
        message: str,
        **info: Any,
    ) -> None:
        if not self.enabled or message in self.quiet_names:
            return
        self.entries.append(
            TraceEntry(self._clock(), kind, src, dst, interface, message, info)
        )

    def note(self, node: str, text: str, **info: Any) -> None:
        """Record an internal milestone at *node*.  Info keys that would
        shadow the positional fields are suffixed with ``_``."""
        reserved = {"kind", "src", "dst", "interface", "message"}
        safe = {(k + "_" if k in reserved else k): v for k, v in info.items()}
        self.record("note", node, node, "-", text, **safe)

    def clear(self) -> None:
        self.entries.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def messages(
        self,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        interface: Optional[str] = None,
        name: Optional[str] = None,
        since: float = 0.0,
    ) -> List[TraceEntry]:
        """Filtered view of recorded ``"msg"`` entries."""
        out = []
        for e in self.entries:
            if e.kind != "msg" or e.time < since:
                continue
            if src is not None and e.src != src:
                continue
            if dst is not None and e.dst != dst:
                continue
            if interface is not None and e.interface != interface:
                continue
            if name is not None and e.message != name:
                continue
            out.append(e)
        return out

    def triples(self, **filters: Any) -> List[Tuple[str, str, str]]:
        """``(message, src, dst)`` projection, the golden-flow comparand."""
        return [e.triple() for e in self.messages(**filters)]

    def contains_subsequence(
        self, expected: Iterable[Tuple[str, str, str]], **filters: Any
    ) -> bool:
        """True when *expected* appears in order (not necessarily
        contiguously) within the recorded message triples."""
        actual = self.triples(**filters)
        it = iter(actual)
        return all(any(step == got for got in it) for step in expected)

    def first(self, name: str) -> Optional[TraceEntry]:
        for e in self.entries:
            if e.kind == "msg" and e.message == name:
                return e
        return None

    def last(self, name: str) -> Optional[TraceEntry]:
        for e in reversed(self.entries):
            if e.kind == "msg" and e.message == name:
                return e
        return None

    def count(self, name: Optional[str] = None) -> int:
        return len(self.messages(name=name))

    def span(self, first_name: str, last_name: str) -> Optional[float]:
        """Elapsed simulated time between the first occurrence of
        *first_name* and the last occurrence of *last_name*."""
        a = self.first(first_name)
        b = self.last(last_name)
        if a is None or b is None:
            return None
        return b.time - a.time
