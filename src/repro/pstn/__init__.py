"""PSTN substrate: E.164 routing, ISUP switches, phones and the trunk
ledger used to count international circuits (Figures 7-8).
"""

from repro.pstn.numbering import NumberingPlan
from repro.pstn.trunks import TrunkLedger, TrunkRecord
from repro.pstn.switch import PstnSwitch, RouteEntry
from repro.pstn.phone import PstnPhone

__all__ = [
    "NumberingPlan",
    "TrunkLedger",
    "TrunkRecord",
    "PstnSwitch",
    "RouteEntry",
    "PstnPhone",
]
