"""Trunk accounting.

Figure 7's claim is quantitative: a call from Hong Kong to a UK
subscriber roaming in Hong Kong "results in two international calls" in
classic GSM, and zero in vGPRS (Figure 8).  Every switch reports each
circuit it seizes to a :class:`TrunkLedger`; the tromboning experiment
(E6) counts international records per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.identities import E164Number


@dataclass
class TrunkRecord:
    """One seized circuit leg."""

    seized_at: float
    from_switch: str
    to_switch: str
    called: E164Number
    international: bool
    cic: int
    released_at: Optional[float] = None

    @property
    def holding_time(self) -> Optional[float]:
        if self.released_at is None:
            return None
        return self.released_at - self.seized_at


class TrunkLedger:
    """Collects :class:`TrunkRecord` entries across all switches."""

    def __init__(self) -> None:
        self.records: List[TrunkRecord] = []

    def seize(
        self,
        now: float,
        from_switch: str,
        to_switch: str,
        called: E164Number,
        international: bool,
        cic: int,
    ) -> TrunkRecord:
        record = TrunkRecord(now, from_switch, to_switch, called, international, cic)
        self.records.append(record)
        return record

    def release(self, now: float, from_switch: str, cic: int) -> None:
        for record in self.records:
            if (
                record.from_switch == from_switch
                and record.cic == cic
                and record.released_at is None
            ):
                record.released_at = now
                return

    # ------------------------------------------------------------------
    # Queries for the experiments
    # ------------------------------------------------------------------
    def international_count(self, since: float = 0.0) -> int:
        return sum(
            1
            for r in self.records
            if r.international and r.seized_at >= since
        )

    def total_count(self, since: float = 0.0) -> int:
        return sum(1 for r in self.records if r.seized_at >= since)

    def active(self, now: float) -> List[TrunkRecord]:
        return [r for r in self.records if r.released_at is None]

    def clear(self) -> None:
        self.records.clear()
