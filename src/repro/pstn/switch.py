"""ISUP circuit switches.

A :class:`PstnSwitch` routes calls by longest-prefix match on the dialled
E.164 number, bridges circuit legs, forwards PCM voice along established
bridges and reports every seized trunk to the :class:`TrunkLedger`.

Route entries are *ordered within a prefix*: when the preferred next hop
releases an unanswered call with a routing cause, the switch falls back
to the next entry.  This is how Figure 8's Hong Kong exchange tries the
H.323 gateway first ("many local telephone companies are evolving into
this configuration") and only uses the international trunk when the
gatekeeper does not know the called roamer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.identities import E164Number
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer
from repro.pstn.trunks import TrunkLedger
from repro.packets.isup import (
    CAUSE_NO_ROUTE,
    CAUSE_UNALLOCATED_NUMBER,
    IsupAcm,
    IsupAnm,
    IsupIam,
    IsupMessage,
    IsupRel,
    IsupRlc,
    PcmFrame,
)

#: Release causes that trigger fallback to the next route entry.
REROUTE_CAUSES = (CAUSE_NO_ROUTE, CAUSE_UNALLOCATED_NUMBER)


@dataclass
class RouteEntry:
    """One routing-table row."""

    prefix: str            # matched against str(called), e.g. "+852"
    next_hop: str          # node name of the next switch / gateway / MSC
    international: bool = False

    def matches(self, called: E164Number) -> bool:
        return str(called).startswith(self.prefix)


@dataclass
class _Bridge:
    """One transit call: an upstream leg and (once routed) a downstream
    leg, plus the fallback routes not yet tried."""

    called: E164Number
    calling: Optional[E164Number]
    up: Tuple[str, int]
    down: Optional[Tuple[str, int]] = None
    routes_left: List[RouteEntry] = field(default_factory=list)
    answered: bool = False


class PstnSwitch(Node):
    """A local exchange / transit switch."""

    def __init__(
        self,
        sim,
        name: str,
        country_code: str,
        ledger: Optional[TrunkLedger] = None,
        cic_start: int = 1,
    ) -> None:
        super().__init__(sim, name)
        self.country_code = country_code
        self.ledger = ledger if ledger is not None else TrunkLedger()
        self.routes: List[RouteEntry] = []
        self.local_numbers: Dict[E164Number, str] = {}
        self._cic_seq = Sequencer(start=cic_start)
        self._legs: Dict[Tuple[str, int], _Bridge] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_route(self, prefix: str, next_hop: str, international: bool = False) -> None:
        self.routes.append(RouteEntry(prefix, next_hop, international))

    def add_local(self, number: E164Number, node_name: str) -> None:
        """Attach a directly served subscriber (phone or gateway port)."""
        self.local_numbers[number] = node_name

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _candidate_routes(self, called: E164Number) -> List[RouteEntry]:
        matches = [r for r in self.routes if r.matches(called)]
        # Longest prefix wins; equal prefixes keep configuration order
        # (that order encodes "try the VoIP gateway first").
        matches.sort(key=lambda r: len(r.prefix), reverse=True)
        if not matches:
            return []
        best_len = len(matches[0].prefix)
        return [r for r in matches if len(r.prefix) == best_len]

    @handles(IsupIam)
    def on_iam(self, msg: IsupIam, src: Node, interface: str) -> None:
        bridge = _Bridge(
            called=msg.called, calling=msg.calling, up=(src.name, msg.cic)
        )
        self._legs[bridge.up] = bridge
        local = self.local_numbers.get(msg.called)
        if local is not None:
            bridge.routes_left = [RouteEntry(str(msg.called), local, False)]
        else:
            bridge.routes_left = self._candidate_routes(msg.called)
        self._try_next_route(bridge)

    def _try_next_route(self, bridge: _Bridge) -> None:
        if not bridge.routes_left:
            self.sim.metrics.counter(f"{self.name}.route_failures").inc()
            self._send_up(bridge, IsupRel(cic=0, cause=CAUSE_NO_ROUTE))
            self._legs.pop(bridge.up, None)
            return
        route = bridge.routes_left.pop(0)
        cic = self._cic_seq.next()
        bridge.down = (route.next_hop, cic)
        self._legs[bridge.down] = bridge
        self.ledger.seize(
            self.sim.now,
            self.name,
            route.next_hop,
            bridge.called,
            route.international,
            cic,
        )
        if route.international:
            self.sim.metrics.counter(f"{self.name}.international_seizures").inc()
        self.send(
            route.next_hop,
            IsupIam(cic=cic, called=bridge.called, calling=bridge.calling),
        )

    # ------------------------------------------------------------------
    # Leg helpers
    # ------------------------------------------------------------------
    def _bridge_for(self, src: Node, cic: int) -> Optional[_Bridge]:
        return self._legs.get((src.name, cic))

    def _send_up(self, bridge: _Bridge, msg: IsupMessage) -> None:
        peer, cic = bridge.up
        msg.cic = cic
        self.send(peer, msg)

    def _send_down(self, bridge: _Bridge, msg: IsupMessage) -> None:
        if bridge.down is None:
            return
        peer, cic = bridge.down
        msg.cic = cic
        self.send(peer, msg)

    def _is_downstream(self, bridge: _Bridge, src: Node, cic: int) -> bool:
        return bridge.down is not None and bridge.down == (src.name, cic)

    def _teardown(self, bridge: _Bridge) -> None:
        self._legs.pop(bridge.up, None)
        if bridge.down is not None:
            self._legs.pop(bridge.down, None)
            self.ledger.release(self.sim.now, self.name, bridge.down[1])

    # ------------------------------------------------------------------
    # Call progress
    # ------------------------------------------------------------------
    @handles(IsupAcm)
    def on_acm(self, msg: IsupAcm, src: Node, interface: str) -> None:
        bridge = self._bridge_for(src, msg.cic)
        if bridge is not None and self._is_downstream(bridge, src, msg.cic):
            self._send_up(bridge, IsupAcm(cic=0))

    @handles(IsupAnm)
    def on_anm(self, msg: IsupAnm, src: Node, interface: str) -> None:
        bridge = self._bridge_for(src, msg.cic)
        if bridge is not None and self._is_downstream(bridge, src, msg.cic):
            bridge.answered = True
            self._send_up(bridge, IsupAnm(cic=0))

    @handles(IsupRel)
    def on_rel(self, msg: IsupRel, src: Node, interface: str) -> None:
        bridge = self._bridge_for(src, msg.cic)
        self.send(src, IsupRlc(cic=msg.cic))
        if bridge is None:
            return
        if self._is_downstream(bridge, src, msg.cic):
            self._legs.pop(bridge.down, None)
            self.ledger.release(self.sim.now, self.name, bridge.down[1])
            bridge.down = None
            if not bridge.answered and msg.cause in REROUTE_CAUSES and bridge.routes_left:
                # Fallback routing (Figure 8: roamer not at the local GK).
                self._try_next_route(bridge)
                return
            self._send_up(bridge, IsupRel(cic=0, cause=msg.cause))
            self._legs.pop(bridge.up, None)
        else:
            # Upstream released: clear downstream too.
            self._send_down(bridge, IsupRel(cic=0, cause=msg.cause))
            self._teardown(bridge)

    @handles(IsupRlc)
    def on_rlc(self, msg: IsupRlc, src: Node, interface: str) -> None:
        self.sim.metrics.counter(f"{self.name}.rlc").inc()

    # ------------------------------------------------------------------
    # Voice
    # ------------------------------------------------------------------
    @handles(PcmFrame)
    def on_pcm(self, frame: PcmFrame, src: Node, interface: str) -> None:
        bridge = self._bridge_for(src, frame.cic)
        if bridge is None:
            return
        out = PcmFrame(cic=0, seq=frame.seq, gen_time_us=frame.gen_time_us)
        if self._is_downstream(bridge, src, frame.cic):
            self._send_up(bridge, out)
        else:
            self._send_down(bridge, out)
