"""A plain telephone attached to a local exchange.

The Figure 7/8 caller ("y in Hong Kong") is one of these.  It originates
ISUP calls through its exchange, answers incoming ones after a
configurable delay and can exchange PCM voice for end-to-end delay
measurements across the circuit path.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.errors import ProtocolError
from repro.identities import E164Number, as_e164
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer
from repro.sim.process import spawn
from repro.packets.isup import (
    CAUSE_NORMAL,
    IsupAcm,
    IsupAnm,
    IsupIam,
    IsupRel,
    IsupRlc,
    PcmFrame,
)


class PstnPhone(Node):
    """A POTS subscriber line."""

    def __init__(
        self,
        sim,
        name: str,
        number: E164Number,
        answer_delay: float = 1.0,
        cic_start: int = 700000,
    ) -> None:
        super().__init__(sim, name)
        self.number = number
        self.answer_delay = answer_delay
        self.state = "idle"
        self.active_cic: Optional[int] = None
        self._cic_seq = Sequencer(start=cic_start)
        self._voice_proc = None
        self._voice_seq = 0
        self.frames_received = 0
        self.alerted_at: Optional[float] = None
        self.answered_at: Optional[float] = None
        self.released_at: Optional[float] = None
        self.release_cause: Optional[int] = None
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_released: Optional[Callable[[], None]] = None

    def _exchange(self) -> Node:
        return self.peer("isup")

    # ------------------------------------------------------------------
    # Origination
    # ------------------------------------------------------------------
    def place_call(self, called: Union[E164Number, str]) -> None:
        called = as_e164(called)
        if self.state != "idle":
            raise ProtocolError(f"{self.name}: place_call in state {self.state}")
        self.state = "calling"
        self.active_cic = self._cic_seq.next()
        self.send(
            self._exchange(),
            IsupIam(cic=self.active_cic, called=called, calling=self.number),
        )

    @handles(IsupAcm)
    def on_acm(self, msg: IsupAcm, src: Node, interface: str) -> None:
        if self.state == "calling":
            self.state = "ringing-remote"
            self.alerted_at = self.sim.now

    @handles(IsupAnm)
    def on_anm(self, msg: IsupAnm, src: Node, interface: str) -> None:
        if self.state == "ringing-remote":
            self.state = "in-call"
            self.answered_at = self.sim.now
            if self.on_connected is not None:
                self.on_connected()

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    @handles(IsupIam)
    def on_iam(self, msg: IsupIam, src: Node, interface: str) -> None:
        if self.state != "idle":
            self.send(src, IsupRel(cic=msg.cic, cause=17))  # user busy
            return
        self.state = "ringing"
        self.active_cic = msg.cic
        self.send(src, IsupAcm(cic=msg.cic))
        self.sim.schedule(self.answer_delay, self._answer, msg.cic)

    def _answer(self, cic: int) -> None:
        if self.state != "ringing" or self.active_cic != cic:
            return
        self.state = "in-call"
        self.answered_at = self.sim.now
        self.send(self._exchange(), IsupAnm(cic=cic))
        if self.on_connected is not None:
            self.on_connected()

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def hangup(self) -> None:
        if self.state not in ("in-call", "ringing-remote", "calling"):
            raise ProtocolError(f"{self.name}: hangup in state {self.state}")
        self.stop_talking()
        if self.active_cic is not None:
            self.send(self._exchange(), IsupRel(cic=self.active_cic))
        self._release(CAUSE_NORMAL)

    @handles(IsupRel)
    def on_rel(self, msg: IsupRel, src: Node, interface: str) -> None:
        self.send(src, IsupRlc(cic=msg.cic))
        self._release(msg.cause)

    @handles(IsupRlc)
    def on_rlc(self, msg: IsupRlc, src: Node, interface: str) -> None:
        pass

    def _release(self, cause: int) -> None:
        self.stop_talking()
        self.state = "idle"
        self.active_cic = None
        self.released_at = self.sim.now
        self.release_cause = cause
        if self.on_released is not None:
            self.on_released()

    # ------------------------------------------------------------------
    # Voice
    # ------------------------------------------------------------------
    def start_talking(self, frame_interval: float = 0.020, duration: Optional[float] = None) -> None:
        if self.state != "in-call":
            raise ProtocolError(f"{self.name}: start_talking in state {self.state}")
        self.stop_talking()
        self._voice_proc = spawn(self.sim, self._talk(frame_interval, duration))

    def _talk(self, interval: float, duration: Optional[float]):
        started = self.sim.now
        while self.state == "in-call":
            if duration is not None and self.sim.now - started >= duration:
                break
            if self.active_cic is None:
                break
            self._voice_seq += 1
            self.send(
                self._exchange(),
                PcmFrame(
                    cic=self.active_cic,
                    seq=self._voice_seq,
                    gen_time_us=int(self.sim.now * 1e6),
                ),
            )
            yield interval

    def stop_talking(self) -> None:
        if self._voice_proc is not None:
            self._voice_proc.interrupt()
            self._voice_proc = None

    @handles(PcmFrame)
    def on_pcm(self, frame: PcmFrame, src: Node, interface: str) -> None:
        self.frames_received += 1
        delay = self.sim.now - frame.gen_time_us / 1e6
        self.sim.metrics.histogram(f"{self.name}.mouth_to_ear").observe(delay)
