"""E.164 numbering plan helpers.

The tromboning scenario spans two countries (the paper uses the UK and
Hong Kong); the plan tracks which country codes exist and classifies
calls as local or international — the property the trunk ledger and the
Figure 7/8 experiment count.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.errors import AddressError
from repro.identities import E164Number

#: Country codes used by the shipped scenarios.
UK = "44"
HONG_KONG = "852"
TAIWAN = "886"
USA = "1"

DEFAULT_COUNTRY_CODES: Tuple[str, ...] = (USA, UK, HONG_KONG, TAIWAN)


class NumberingPlan:
    """A registry of known country codes with parsing and classification."""

    def __init__(self, country_codes: Iterable[str] = DEFAULT_COUNTRY_CODES) -> None:
        self._codes = tuple(sorted(set(country_codes), key=len, reverse=True))
        if not self._codes:
            raise AddressError("numbering plan needs at least one country code")
        self._names: Dict[str, str] = {
            USA: "USA",
            UK: "United Kingdom",
            HONG_KONG: "Hong Kong",
            TAIWAN: "Taiwan",
        }

    @property
    def country_codes(self) -> Tuple[str, ...]:
        return self._codes

    def parse(self, text: str) -> E164Number:
        return E164Number.parse(text, known_ccs=self._codes)

    def country_name(self, cc: str) -> str:
        return self._names.get(cc, f"+{cc}")

    def is_international(self, caller_cc: str, called: E164Number) -> bool:
        return called.country_code != caller_cc

    def number(self, cc: str, national: str) -> E164Number:
        if cc not in self._codes:
            raise AddressError(f"country code {cc!r} not in plan")
        return E164Number(cc, national)
