"""ASCII message-sequence charts.

Renders a recorded trace in the style of the paper's Figures 4-6: one
column per node, one line per message, arrows between the columns.  The
E2-E5 benches print these so the reproduced figures can be compared to
the paper by eye.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.trace import TraceEntry


def render_msc(
    entries: Iterable[TraceEntry],
    nodes: Sequence[str],
    include: Optional[Iterable[str]] = None,
    max_label: int = 38,
    col_width: int = 12,
) -> str:
    """Render *entries* as a message-sequence chart over *nodes*.

    Parameters
    ----------
    nodes:
        Column order, left to right.
    include:
        Optional whitelist of message names; others are skipped (used to
        project a full trace onto a figure's alphabet).
    """
    allowed = set(include) if include is not None else None
    index = {name: i for i, name in enumerate(nodes)}
    lines: List[str] = []

    header = "".join(name.center(col_width) for name in nodes)
    lines.append(" " * 9 + header)
    ruler = "".join("|".center(col_width) for _ in nodes)

    for entry in entries:
        if entry.kind != "msg":
            continue
        if allowed is not None and entry.message not in allowed:
            continue
        if entry.src not in index or entry.dst not in index:
            continue
        src_i, dst_i = index[entry.src], index[entry.dst]
        if src_i == dst_i:
            continue
        lines.append(" " * 9 + ruler)
        lo, hi = sorted((src_i, dst_i))
        left_pad = lo * col_width + col_width // 2
        span = (hi - lo) * col_width
        label = entry.message[:max_label]
        inner = span - 2
        if src_i < dst_i:
            body = label.center(inner, "-")[:inner] + ">"
            arrow = "|" + body
        else:
            body = label.center(inner, "-")[:inner]
            arrow = "<" + body + "|"
        lines.append(f"{entry.time:8.3f} " + " " * left_pad + arrow)
    lines.append(" " * 9 + ruler)
    return "\n".join(lines)
