"""Analysis and reporting helpers.

* :mod:`~repro.analysis.msc_chart` — ASCII message-sequence charts from
  recorded traces (how the benches print the paper's figures);
* :mod:`~repro.analysis.latency` — setup-delay decomposition;
* :mod:`~repro.analysis.report` — aligned-table printing for the
  experiment harnesses.
"""

from repro.analysis.msc_chart import render_msc
from repro.analysis.latency import SetupBreakdown, breakdown_registration
from repro.analysis.report import format_table

__all__ = [
    "render_msc",
    "SetupBreakdown",
    "breakdown_registration",
    "format_table",
]
