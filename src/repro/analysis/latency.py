"""Latency decomposition of the vGPRS procedures.

Breaks a registration or call-setup trace into the phases the paper's
Section 6 reasons about: GSM signalling, GPRS attach/PDP activation and
H.323 signalling — the decomposition behind the claim that keeping the
PDP context alive removes per-call activation latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.trace import TraceRecorder


@dataclass
class SetupBreakdown:
    """Phase durations (seconds) of one procedure."""

    total: float
    gsm_phase: float
    gprs_phase: float
    h323_phase: float

    def as_millis(self) -> dict:
        return {
            "total_ms": round(self.total * 1000, 2),
            "gsm_ms": round(self.gsm_phase * 1000, 2),
            "gprs_ms": round(self.gprs_phase * 1000, 2),
            "h323_ms": round(self.h323_phase * 1000, 2),
        }


def _first_time(trace: TraceRecorder, name: str, since: float) -> Optional[float]:
    for e in trace.messages(name=name, since=since):
        return e.time
    return None


def _last_time(trace: TraceRecorder, name: str, since: float) -> Optional[float]:
    times = [e.time for e in trace.messages(name=name, since=since)]
    return times[-1] if times else None


def breakdown_registration(
    trace: TraceRecorder, since: float = 0.0
) -> Optional[SetupBreakdown]:
    """Decompose a Figure 4 registration.

    * GSM phase: Um_Location_Update_Request -> MAP_Update_Location_Area_ack;
    * GPRS phase: GPRS_Attach_Request -> Activate_PDP_Context_Accept;
    * H.323 phase: RAS_RRQ (first hop) -> RAS_RCF delivered to the VMSC.
    """
    start = _first_time(trace, "Um_Location_Update_Request", since)
    gsm_end = _first_time(trace, "MAP_Update_Location_Area_ack", since)
    gprs_start = _first_time(trace, "GPRS_Attach_Request", since)
    gprs_end = _first_time(trace, "Activate_PDP_Context_Accept", since)
    h323_start = _first_time(trace, "RAS_RRQ", since)
    h323_end = _last_time(trace, "RAS_RCF", since)
    end = _first_time(trace, "Um_Location_Update_Accept", since)
    if None in (start, gsm_end, gprs_start, gprs_end, h323_start, h323_end, end):
        return None
    return SetupBreakdown(
        total=end - start,
        gsm_phase=gsm_end - start,
        gprs_phase=gprs_end - gprs_start,
        h323_phase=h323_end - h323_start,
    )


def post_dial_delay(trace: TraceRecorder, since: float = 0.0) -> Optional[float]:
    """Figure 5: Um_Setup to Um_Alerting at the MS (ringback delay)."""
    start = _first_time(trace, "Um_Setup", since)
    end = _first_time(trace, "Um_Alerting", since)
    if start is None or end is None:
        return None
    return end - start
