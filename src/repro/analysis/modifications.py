"""Experiment E10: the Section-6 "modifications to the existing
networks" comparison, derived from the implementation itself.

Rather than restating the paper's table, each row is *checked against
the code*: e.g. "standard MSs suffice in vGPRS" is verified by
inspecting that :class:`~repro.gsm.ms.MobileStation` carries no H.323
machinery, and "the gatekeeper is standard" by verifying the
:class:`~repro.h323.gatekeeper.Gatekeeper` handler table contains no MAP
operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.baseline_3gtr import H323MobileStation
from repro.core.vmsc import Vmsc
from repro.gsm.ms import MobileStation
from repro.gsm.msc import GsmMsc
from repro.gsm.msc_base import MscBase
from repro.h323.gatekeeper import Gatekeeper
from repro.packets.map import MapMessage


@dataclass
class ModificationRow:
    component: str
    vgprs: str
    tgtr: str
    check: str
    verified: bool


def _handles_any(node_cls: type, message_base: type) -> bool:
    """Does *node_cls* register a handler for any subclass of
    *message_base*?"""
    return any(
        issubclass(ptype, message_base) for ptype in node_cls._handlers()
    )


def _has_h323_stack(ms_cls: type) -> bool:
    """An MS 'is an H.323 terminal' iff it crafts RAS/Q.931 itself."""
    return any(
        callable(getattr(ms_cls, name, None))
        for name in ("_send_h323", "_send_arq", "_send_rrq")
    )


def modification_matrix() -> List[ModificationRow]:
    """The Section-6 comparison, each row verified against the code."""
    rows = [
        ModificationRow(
            component="Mobile station",
            vgprs="standard GSM/GPRS MS",
            tgtr="must be an H.323 terminal with vocoder",
            check="MobileStation has no H.323 stack; H323MobileStation does",
            verified=(
                not _has_h323_stack(MobileStation)
                and _has_h323_stack(H323MobileStation)
            ),
        ),
        ModificationRow(
            component="Gatekeeper",
            vgprs="standard H.323 gatekeeper",
            tgtr="needs GSM MAP toward the HLR (knows IMSIs)",
            check="Gatekeeper handles no MAP operation",
            verified=not _handles_any(Gatekeeper, MapMessage),
        ),
        ModificationRow(
            component="MSC",
            vgprs="replaced by VMSC (router-based softswitch)",
            tgtr="bypassed (no role in VoIP calls)",
            check="Vmsc presents the full MSC radio interface",
            verified=issubclass(Vmsc, MscBase) and issubclass(GsmMsc, MscBase),
        ),
        ModificationRow(
            component="VMSC GSM interfaces",
            vgprs="identical to a standard MSC (A/B/C/E)",
            tgtr="n/a",
            check="every A/B/E handler of GsmMsc is inherited by Vmsc "
                  "from the shared MscBase",
            verified=_shared_radio_interface(),
        ),
        ModificationRow(
            component="SGSN / GGSN",
            vgprs="unmodified",
            tgtr="unmodified",
            check="both networks instantiate the same Sgsn/Ggsn classes",
            verified=_same_gprs_classes(),
        ),
        ModificationRow(
            component="VMSC H.323 side",
            vgprs="speaks standard RAS/Q.931 (terminal behaviour)",
            tgtr="n/a",
            check="Vmsc emits only standard RAS message classes",
            verified=_vmsc_uses_standard_ras(),
        ),
    ]
    return rows


def _shared_radio_interface() -> bool:
    """All radio-side (A/B interface) handlers of the classic MSC resolve
    to MscBase methods in the VMSC too."""
    base_handlers = MscBase._handlers()
    vmsc_handlers = Vmsc._handlers()
    for ptype, attr in base_handlers.items():
        if vmsc_handlers.get(ptype) is None:
            return False
    return True


def _same_gprs_classes() -> bool:
    from repro.core import baseline_3gtr, network
    import inspect

    vgprs_src = inspect.getsource(network)
    tgtr_src = inspect.getsource(baseline_3gtr)
    return (
        "Sgsn(sim" in vgprs_src
        and "Sgsn(sim" in tgtr_src
        and "Ggsn(sim" in vgprs_src
        and "Ggsn(sim" in tgtr_src
    )


def _vmsc_uses_standard_ras() -> bool:
    import inspect

    from repro.core import vmsc as vmsc_module

    src = inspect.getsource(vmsc_module)
    return "RasRrq(" in src and "RasArq(" in src and "RasDrq(" in src
