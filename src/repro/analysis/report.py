"""Plain-text experiment reporting.

The benches print paper-shaped tables with these helpers; keeping the
formatting in one place makes ``bench_output.txt`` consistent across all
eleven experiments.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    text_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_experiment(exp_id: str, claim: str, table: str, verdict: str) -> None:
    """Standard experiment banner used by every bench."""
    bar = "#" * 72
    print(f"\n{bar}")
    print(f"# Experiment {exp_id}")
    print(f"# Paper claim: {claim}")
    print(bar)
    print(table)
    print(f"VERDICT: {verdict}")
