"""Point-to-point links.

A :class:`Link` joins two nodes over a named interface with a one-way
latency.  Delivery is scheduled on the simulator; at delivery time the
message is recorded in the trace (so trace order equals arrival order,
matching how the paper's message-sequence figures read) and handed to the
receiver's dispatch method.

With ``wire_fidelity`` enabled the packet is serialised to bytes on
transmit and re-parsed at the receiver, so encode/decode bugs surface in
every integration test rather than only in codec unit tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.packets.base import Packet


class LinkImpairment:
    """Seeded random loss/jitter installed on a link by the fault
    injector (``repro.faults``).

    Draws come from a dedicated per-link RNG stream so impairing one
    link never perturbs any other consumer's randomness; lost frames are
    counted (``link.<iface>.dropped_loss``) but not traced — loss under
    load would otherwise swamp the trace.
    """

    __slots__ = ("loss", "jitter", "rng", "drops")

    def __init__(self, loss: float, jitter: float, rng, drops) -> None:
        self.loss = loss
        self.jitter = jitter
        self.rng = rng
        self.drops = drops


class Link:
    """A bidirectional link between nodes *a* and *b*.

    Parameters
    ----------
    latency:
        One-way propagation plus processing delay, seconds.
    bit_rate:
        Optional serialisation rate in bits/second; when set, the built
        packet length adds transmission delay.
    wire_fidelity:
        Serialise packets to bytes and re-parse on delivery.
    """

    def __init__(
        self,
        sim,
        a: "Node",
        b: "Node",
        interface: str,
        latency: float,
        bit_rate: Optional[float] = None,
        wire_fidelity: bool = False,
    ) -> None:
        if a is b:
            raise TopologyError(f"cannot link node {a.name!r} to itself")
        if latency < 0:
            raise TopologyError(f"negative latency {latency!r}")
        self.sim = sim
        self.a = a
        self.b = b
        self.interface = interface
        self.latency = latency
        self.bit_rate = bit_rate
        self.wire_fidelity = wire_fidelity
        self.up = True
        #: Optional :class:`LinkImpairment`; ``None`` keeps the hot path
        #: at a single attribute load (same pattern as ``sim.hops``).
        self.impairment: Optional[LinkImpairment] = None
        self.tx_count = 0
        self.tx_bytes = 0
        # Per-transmit counters, resolved once: three registry lookups
        # per message otherwise show up in soak profiles.
        metrics = sim.metrics
        self._ctr_iface = metrics.counter(f"msgs.iface.{interface}")
        self._ctr_drop_down = metrics.counter(f"link.{interface}.dropped_down")
        self._ctr_tx = {
            a.name: metrics.counter(f"msgs.tx.{a.name}"),
            b.name: metrics.counter(f"msgs.tx.{b.name}"),
        }
        self._ctr_rx = {
            a.name: metrics.counter(f"msgs.rx.{a.name}"),
            b.name: metrics.counter(f"msgs.rx.{b.name}"),
        }

    def peer_of(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise TopologyError(f"{node.name!r} is not an endpoint of {self!r}")

    def transmit(self, src: "Node", packet: "Packet") -> None:
        """Send *packet* from *src* to the other endpoint."""
        # Inlined peer_of: one branch instead of a call per message.
        if src is self.a:
            dst = self.b
        elif src is self.b:
            dst = self.a
        else:
            raise TopologyError(f"{src.name!r} is not an endpoint of {self!r}")
        if not self.up:
            # A downed link must not vanish packets silently: count the
            # drop and leave a trace entry so failure tests can assert on
            # exactly what was lost.
            self._ctr_drop_down.inc()
            trace = self.sim.trace
            if trace.enabled:
                name = packet.flow_name()
                if name not in trace.quiet_names:
                    trace.record(
                        "drop", src.name, dst.name, self.interface, name,
                        reason="link_down",
                    )
            return
        imp = self.impairment
        if imp is not None and imp.loss > 0.0 and imp.rng.random() < imp.loss:
            imp.drops.inc()
            return
        delay = self.latency
        payload = packet
        if self.wire_fidelity or self.bit_rate:
            wire = packet.build()
            self.tx_bytes += len(wire)
            if self.bit_rate:
                delay += len(wire) * 8.0 / self.bit_rate
            if self.wire_fidelity:
                # Lazy parse: boundaries are scanned (so truncation and
                # length bugs still surface on every hop) but field
                # values materialise only when the receiver reads them.
                payload = type(packet).parse(wire, lazy=True)
        if imp is not None and imp.jitter > 0.0:
            delay += imp.rng.random() * imp.jitter
        self.tx_count += 1
        self._ctr_iface.inc()
        self._ctr_tx[src.name].inc()
        self._ctr_rx[dst.name].inc()
        hops = self.sim.hops
        if hops is not None:
            hops.on_transmit(src, dst, self.interface, packet, delay)
        self.sim.schedule(delay, self._deliver, payload, src, dst)

    def _deliver(self, packet: "Packet", src: "Node", dst: "Node") -> None:
        trace = self.sim.trace
        if trace.enabled:
            # Resolve the flow name before building the (comparatively
            # expensive) info dict, so quiet messages pay almost nothing.
            name = packet.flow_name()
            if name not in trace.quiet_names:
                trace.record(
                    "msg",
                    src.name,
                    dst.name,
                    self.interface,
                    name,
                    **packet.trace_info(),
                )
        dst.receive(packet, src, self.interface)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.a.name}<->{self.b.name} iface={self.interface} "
            f"latency={self.latency}>"
        )
