"""Base class for IP endpoints (gatekeeper, H.323 terminals, gateway).

An :class:`IpHost` owns an IPv4 address, strips transport layers from
arriving IP packets and re-dispatches the application message through the
normal handler table, keeping the source address/port available through
:attr:`rx_ip` / :meth:`rx_reply_addr` for the duration of the handler.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.identities import IPv4Address
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.packets.base import Packet
from repro.packets.ip import IPv4, TCPLite, UDP


class IpHost(Node):
    """A host attached to the IP cloud."""

    def __init__(self, sim, name: str, ip: IPv4Address) -> None:
        super().__init__(sim, name)
        self.ip = ip
        self.rx_ip: Optional[IPv4] = None
        self.rx_sport: int = 0

    def _cloud(self) -> Node:
        return self.peer(Interface.IP)

    def attach_to_cloud(self) -> None:
        """Register this host's address with the cloud (idempotent)."""
        self._cloud().register(self.ip, self)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    @handles(IPv4)
    def on_ip(self, packet: IPv4, src: Node, interface: str) -> None:
        inner: Optional[Packet] = packet.payload
        sport = 0
        while isinstance(inner, (UDP, TCPLite)):
            sport = inner.sport
            inner = inner.payload
        if inner is None:
            self.sim.metrics.counter(f"{self.name}.empty_ip").inc()
            return
        prev_ip, prev_sport = self.rx_ip, self.rx_sport
        self.rx_ip, self.rx_sport = packet, sport
        try:
            self.receive(inner, src, interface)
        finally:
            self.rx_ip, self.rx_sport = prev_ip, prev_sport

    def rx_reply_addr(self) -> Tuple[IPv4Address, int]:
        """Source address/port of the message currently being handled."""
        assert self.rx_ip is not None, "rx_reply_addr outside a handler"
        return self.rx_ip.src, self.rx_sport

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send_ip(
        self,
        dst: IPv4Address,
        message: Packet,
        dport: int,
        sport: int = 0,
        tcp: bool = False,
    ) -> None:
        transport = (
            TCPLite(sport=sport or dport, dport=dport)
            if tcp
            else UDP(sport=sport or dport, dport=dport)
        )
        self.send(self._cloud(), IPv4(src=self.ip, dst=dst) / transport / message)
