"""Named network interfaces and their protocol stacks.

Figure 2(a) of the paper enumerates the VMSC's interfaces (A, B, C, E to
the GSM side, Gb to the SGSN, ISUP to the PSTN) and Figure 3 gives the
protocol stack on each of the ten numbered links between an H.323 terminal
and a GSM MS.  Both figures are reproduced programmatically (experiment
E1) from the metadata in this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


class Interface:
    """Interface-name constants used throughout the simulation."""

    UM = "Um"        # MS <-> BTS radio interface (GSM 04.08)
    ABIS = "Abis"    # BTS <-> BSC (GSM 08.5x)
    A = "A"          # BSC <-> (V)MSC (BSSAP, GSM 08.08)
    B = "B"          # (V)MSC <-> VLR (MAP)
    C = "C"          # (V)MSC <-> HLR (MAP)
    D = "D"          # VLR <-> HLR (MAP)
    E = "E"          # MSC <-> MSC, inter-system handoff (MAP-E)
    GB = "Gb"        # (V)MSC-PCU / BSC-PCU <-> SGSN (GSM 08.14)
    GN = "Gn"        # SGSN <-> GGSN (GTP, GSM 09.60)
    GI = "Gi"        # GGSN <-> external packet network
    GR = "Gr"        # SGSN <-> HLR (MAP)
    IP = "ip"        # generic IP backbone hop
    ISUP = "isup"    # SS7 ISUP trunk signalling
    TRUNK = "trunk"  # circuit-switched voice trunk
    MEDIA = "media"  # RTP voice path over IP


@dataclass(frozen=True)
class InterfaceSpec:
    """Descriptive metadata for an interface: its endpoints and stack."""

    name: str
    endpoints: Tuple[str, str]
    stack: Tuple[str, ...]
    description: str


INTERFACE_SPECS: Dict[str, InterfaceSpec] = {
    spec.name: spec
    for spec in (
        InterfaceSpec(
            Interface.UM,
            ("MS", "BTS"),
            ("GSM RR/MM/CC", "LAPDm", "TDMA radio"),
            "GSM air interface; circuit-switched TCH keeps voice real-time",
        ),
        InterfaceSpec(
            Interface.ABIS,
            ("BTS", "BSC"),
            ("GSM RR/MM/CC", "LAPD", "E1"),
            "BTS to BSC signalling and traffic",
        ),
        InterfaceSpec(
            Interface.A,
            ("BSC", "MSC"),
            ("BSSMAP/DTAP", "SCCP", "MTP"),
            "BSC to (V)MSC; identical for MSC and VMSC by design",
        ),
        InterfaceSpec(
            Interface.B,
            ("MSC", "VLR"),
            ("MAP", "TCAP", "SCCP", "MTP"),
            "(V)MSC to VLR subscriber-data signalling",
        ),
        InterfaceSpec(
            Interface.C,
            ("MSC", "HLR"),
            ("MAP", "TCAP", "SCCP", "MTP"),
            "(V)MSC to HLR routing interrogation",
        ),
        InterfaceSpec(
            Interface.D,
            ("VLR", "HLR"),
            ("MAP", "TCAP", "SCCP", "MTP"),
            "VLR to HLR location registration",
        ),
        InterfaceSpec(
            Interface.E,
            ("MSC", "MSC"),
            ("MAP-E", "TCAP", "SCCP", "MTP"),
            "inter-(V)MSC handoff signalling and trunk",
        ),
        InterfaceSpec(
            Interface.GB,
            ("PCU", "SGSN"),
            ("BSSGP", "NS", "Frame Relay"),
            "GPRS Gb interface (GSM 08.14); the VMSC's packet side",
        ),
        InterfaceSpec(
            Interface.GN,
            ("SGSN", "GGSN"),
            ("GTP", "UDP", "IP"),
            "GPRS tunnelling (GSM 09.60)",
        ),
        InterfaceSpec(
            Interface.GI,
            ("GGSN", "PSDN"),
            ("IP",),
            "GGSN to external packet data network",
        ),
        InterfaceSpec(
            Interface.GR,
            ("SGSN", "HLR"),
            ("MAP", "TCAP", "SCCP", "MTP"),
            "SGSN to HLR for GPRS attach",
        ),
        InterfaceSpec(
            Interface.IP,
            ("host", "host"),
            ("TCP/UDP", "IP"),
            "IP backbone hop (H.323 network)",
        ),
        InterfaceSpec(
            Interface.ISUP,
            ("switch", "switch"),
            ("ISUP", "MTP"),
            "SS7 trunk signalling toward the PSTN",
        ),
        InterfaceSpec(
            Interface.TRUNK,
            ("switch", "switch"),
            ("PCM voice",),
            "64 kbit/s circuit-switched voice trunk",
        ),
        InterfaceSpec(
            Interface.MEDIA,
            ("host", "host"),
            ("RTP", "UDP", "IP"),
            "packetised voice path",
        ),
    )
}


# Figure 3 of the paper: the ten numbered links between an H.323 terminal
# (left) and a GSM MS (right), with the protocols exercised on each.
# Experiment E1 prints this table from the constructed topology and this
# metadata; tests assert consistency.
FIGURE3_LINKS: Tuple[Tuple[int, str, str, str, Tuple[str, ...]], ...] = (
    (1, "H.323 terminal", "H.323 network", Interface.IP, ("H.323", "TCP/IP")),
    (2, "H.323 network", "GGSN", Interface.GI, ("H.323", "TCP/IP")),
    (3, "GGSN", "SGSN", Interface.GN, ("GTP", "UDP", "IP")),
    (4, "SGSN", "VMSC", Interface.GB, ("BSSGP", "NS", "Frame Relay")),
    (5, "VMSC", "BSC", Interface.A, ("BSSMAP/DTAP", "SCCP", "MTP")),
    (6, "BSC", "BTS", Interface.ABIS, ("GSM RR/MM/CC", "LAPD")),
    (7, "BTS", "MS", Interface.UM, ("GSM RR/MM/CC", "LAPDm")),
    (8, "GGSN", "H.323 terminal", Interface.GI, ("H.323", "TCP/IP")),
    (9, "VMSC", "VLR", Interface.B, ("MAP", "TCAP", "SCCP", "MTP")),
    (10, "VLR", "HLR", Interface.D, ("MAP", "TCAP", "SCCP", "MTP")),
)
