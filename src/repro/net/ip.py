"""The IP backbone.

:class:`IPCloud` models the packet data network of Figure 1 (PSDN) and the
H.323 network of Figure 2(b): hosts (GGSN, gatekeeper, H.323 terminals,
the H.323/PSTN gateway) connect to the cloud and register the IPv4
addresses they answer for; the cloud forwards IPv4 packets to the owner
of the destination address.

The GGSN registers every PDP address it allocates so that downlink
packets for mobile subscribers (e.g. the Q.931 Setup of paper step 4.2)
are routed back into the GPRS network.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import RoutingError
from repro.identities import IPv4Address
from repro.net.node import Node, handles
from repro.packets.ip import IPv4


class IPCloud(Node):
    """A one-hop abstraction of an IP backbone with a fixed transit
    latency (the latency lives on the attached links)."""

    def __init__(self, sim, name: str = "IPNET") -> None:
        super().__init__(sim, name)
        self._owners: Dict[IPv4Address, str] = {}

    def register(self, address: IPv4Address, owner: Node) -> None:
        """Declare that packets for *address* go to *owner* (which must be
        directly attached to the cloud)."""
        self._owners[address] = owner.name

    def unregister(self, address: IPv4Address) -> None:
        self._owners.pop(address, None)

    def owner_of(self, address: IPv4Address) -> str:
        try:
            return self._owners[address]
        except KeyError:
            raise RoutingError(f"no host owns {address}") from None

    @handles(IPv4)
    def on_ip(self, packet: IPv4, src: Node, interface: str) -> None:
        owner = self._owners.get(packet.dst)
        if owner is None:
            self.sim.metrics.counter("ip.no_route").inc()
            self.sim.trace.note(self.name, "IP_NO_ROUTE", dst=str(packet.dst))
            return
        if packet.ttl <= 1:
            self.sim.metrics.counter("ip.ttl_expired").inc()
            return
        # Re-header without deep-copying the payload chain (packets are
        # treated as immutable by receivers; wire-fidelity links re-parse
        # anyway).  Media-heavy simulations cross here per RTP frame.
        fwd = IPv4(
            src=packet.src, dst=packet.dst,
            ttl=packet.ttl - 1, protocol=packet.protocol,
        )
        fwd.payload = packet.payload
        self.send(owner, fwd)
