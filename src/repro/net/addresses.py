"""Identity types, re-exported from :mod:`repro.identities`.

The implementations live in a top-level module so that the packet-field
layer can use them without importing the ``repro.net`` package (which
itself depends on packets for IP routing).
"""

from repro.identities import (
    IMSI,
    LAI,
    MSISDN,
    TMSI,
    CellId,
    E164Number,
    IPv4Address,
    SubscriberId,
    TunnelId,
)

__all__ = [
    "IMSI",
    "TMSI",
    "MSISDN",
    "E164Number",
    "IPv4Address",
    "TunnelId",
    "LAI",
    "CellId",
    "SubscriberId",
]
