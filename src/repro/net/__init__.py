"""Network fabric: identities, interfaces, links and the node base class.

The fabric is deliberately explicit: every hop in the paper's figures is a
real :class:`~repro.net.link.Link` between two :class:`~repro.net.node.Node`
objects, so the recorded trace *is* the message-sequence chart.
"""

from repro.identities import (
    IMSI,
    LAI,
    MSISDN,
    TMSI,
    CellId,
    E164Number,
    IPv4Address,
    TunnelId,
)
from repro.net.interfaces import Interface, InterfaceSpec, INTERFACE_SPECS
from repro.net.link import Link
from repro.net.node import Network, Node, handles
from repro.net.ip import IPCloud

__all__ = [
    "IMSI",
    "TMSI",
    "MSISDN",
    "E164Number",
    "IPv4Address",
    "TunnelId",
    "LAI",
    "CellId",
    "Interface",
    "InterfaceSpec",
    "INTERFACE_SPECS",
    "Link",
    "Node",
    "Network",
    "handles",
    "IPCloud",
]
