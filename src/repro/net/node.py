"""Node base class, handler dispatch and the network container.

Every network element (MS, BTS, BSC, VMSC, SGSN, GGSN, gatekeeper, ...)
subclasses :class:`Node` and declares message handlers with the
:func:`handles` decorator::

    class Vlr(Node):
        @handles(MapUpdateLocationArea)
        def on_update_location_area(self, msg, src, iface):
            ...

Dispatch walks the packet class's MRO, so a handler registered for a base
message class catches subclasses as well.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import TopologyError
from repro.net.link import Link
from repro.sim.kernel import Simulator


def handles(*packet_types: type) -> Callable:
    """Mark a method as the handler for the given packet classes."""

    def decorate(fn: Callable) -> Callable:
        existing = list(getattr(fn, "_handles_types", ()))
        existing.extend(packet_types)
        fn._handles_types = tuple(existing)
        return fn

    return decorate


class Node:
    """A network element: owns links and dispatches received messages."""

    _handler_cache: Dict[type, Dict[type, str]] = {}

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        # interface -> list of links (a BSC has one A link but a PSTN
        # switch may have several trunks on the same interface name)
        self._links: Dict[str, List[Link]] = {}
        self.network: Optional["Network"] = None
        # (peer name, interface) -> Link, filled on first send; cleared
        # whenever topology changes.  Route resolution is per-message on
        # the hot path.
        self._route_cache: Dict[Tuple[str, Optional[str]], Link] = {}
        # packet type -> bound handler (or None for unhandled), filled on
        # first receive of each type; avoids the MRO walk per message.
        self._dispatch_cache: Dict[type, Optional[Callable]] = {}

    # ------------------------------------------------------------------
    # Handler registry
    # ------------------------------------------------------------------
    @classmethod
    def _handlers(cls) -> Dict[type, str]:
        table = Node._handler_cache.get(cls)
        if table is None:
            table = {}
            for klass in reversed(cls.__mro__):
                for attr_name, attr in vars(klass).items():
                    for ptype in getattr(attr, "_handles_types", ()):
                        table[ptype] = attr_name
            Node._handler_cache[cls] = table
        return table

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        self._links.setdefault(link.interface, []).append(link)
        self._route_cache.clear()

    def links_on(self, interface: str) -> List[Link]:
        return self._links.get(interface, [])

    def all_links(self) -> List[Link]:
        """Every link attached to this node, in attach order."""
        return [link for links in self._links.values() for link in links]

    def link_to(self, peer: Union["Node", str], interface: Optional[str] = None) -> Link:
        """Find the link toward *peer*, optionally constrained to an
        interface name.  Raises :class:`TopologyError` if absent."""
        peer_name = peer if isinstance(peer, str) else peer.name
        link = self._route_cache.get((peer_name, interface))
        if link is not None:
            return link
        candidates = (
            self._links.get(interface, [])
            if interface is not None
            else [l for links in self._links.values() for l in links]
        )
        for link in candidates:
            if link.peer_of(self).name == peer_name:
                self._route_cache[(peer_name, interface)] = link
                return link
        raise TopologyError(
            f"{self.name!r} has no link to {peer_name!r}"
            + (f" on interface {interface!r}" if interface else "")
        )

    def peer(self, interface: str) -> "Node":
        """The single peer on *interface*; raises if none or ambiguous."""
        links = self.links_on(interface)
        if len(links) != 1:
            raise TopologyError(
                f"{self.name!r} has {len(links)} links on {interface!r}, expected 1"
            )
        return links[0].peer_of(self)

    def peers(self, interface: str) -> List["Node"]:
        return [l.peer_of(self) for l in self.links_on(interface)]

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        dst: Union["Node", str],
        packet,
        interface: Optional[str] = None,
    ) -> None:
        """Transmit *packet* to the directly connected node *dst*."""
        self.link_to(dst, interface).transmit(self, packet)

    def receive(self, packet, src: "Node", interface: str) -> None:
        """Dispatch an arriving packet to the registered handler."""
        ptype = type(packet)
        cache = self._dispatch_cache
        if ptype in cache:
            handler = cache[ptype]
            if handler is None:
                self.on_unhandled(packet, src, interface)
            else:
                handler(packet, src, interface)
            return
        table = type(self)._handlers()
        for klass in ptype.__mro__:
            attr_name = table.get(klass)
            if attr_name is not None:
                handler = getattr(self, attr_name)
                cache[ptype] = handler
                handler(packet, src, interface)
                return
        cache[ptype] = None
        self.on_unhandled(packet, src, interface)

    def on_crash(self) -> None:
        """Fault-injection hook: the node lost power.  The injector has
        already flipped the node's links down; subclasses discard the
        volatile state a real restart would lose (the SGSN drops its
        MM/PDP contexts, for example).  Default: stateless node."""

    def on_restart(self) -> None:
        """Fault-injection hook: the node came back (links restored by
        the injector just before this call).  Default: nothing —
        recovery is the *peers'* job (retransmission, re-registration),
        which is exactly what the fault scenarios measure."""

    def on_unhandled(self, packet, src: "Node", interface: str) -> None:
        """Default: count and trace-note unhandled packets.

        Procedures that *must not* lose messages assert on this counter in
        tests; silently dropping would hide protocol wiring bugs.
        """
        self.sim.metrics.counter(f"unhandled.{self.name}").inc()
        self.sim.trace.note(
            self.name,
            f"UNHANDLED {packet.flow_name()}",
            src=src.name,
            interface=interface,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Network:
    """Container of nodes and links; the topology factory."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.network = self
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def connect(
        self,
        a: Union[Node, str],
        b: Union[Node, str],
        interface: str,
        latency: float,
        bit_rate: Optional[float] = None,
        wire_fidelity: bool = False,
    ) -> Link:
        """Create a bidirectional link and register it on both endpoints."""
        node_a = self.node(a) if isinstance(a, str) else a
        node_b = self.node(b) if isinstance(b, str) else b
        link = Link(
            self.sim,
            node_a,
            node_b,
            interface,
            latency,
            bit_rate=bit_rate,
            wire_fidelity=wire_fidelity,
        )
        node_a.attach_link(link)
        node_b.attach_link(link)
        self.links.append(link)
        return link

    def inventory(self) -> List[Tuple[str, str]]:
        """``(name, type)`` for every node — used by experiment E1."""
        return [(name, type(node).__name__) for name, node in sorted(self.nodes.items())]

    def link_table(self) -> List[Tuple[str, str, str, float]]:
        """``(a, b, interface, latency)`` for every link."""
        return [(l.a.name, l.b.name, l.interface, l.latency) for l in self.links]
