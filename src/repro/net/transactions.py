"""Request/response correlation for MAP-style invoke ids.

Nodes issuing MAP (or RAS) requests register a continuation under a fresh
invoke id; the response handler pops the continuation and resumes the
procedure.  This keeps multi-step procedures (registration, call setup)
readable as a chain of small callbacks while supporting any number of
concurrent transactions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ProtocolError
from repro.sim.timers import Timer


class Transactions:
    """Allocates invoke ids and stores per-transaction context."""

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._pending: Dict[int, Any] = {}

    def open(self, context: Any) -> int:
        """Store *context* (usually a callback or a small dict) and return
        a fresh invoke id."""
        invoke_id = self._next
        self._next += 1
        self._pending[invoke_id] = context
        return invoke_id

    def open_with_id(self, invoke_id: int, context: Any) -> int:
        """Store *context* under an externally chosen id (e.g. a protocol
        sequence number the peer will echo back)."""
        if invoke_id in self._pending:
            raise ProtocolError(f"invoke id {invoke_id} already pending")
        self._pending[invoke_id] = context
        return invoke_id

    def close(self, invoke_id: int) -> Any:
        """Pop and return the context; raises on unknown ids so protocol
        wiring mistakes fail loudly."""
        try:
            return self._pending.pop(invoke_id)
        except KeyError:
            raise ProtocolError(f"unknown invoke id {invoke_id}") from None

    def try_close(self, invoke_id: int) -> Optional[Any]:
        """Pop and return the context, or ``None`` if absent (for
        responses that may legitimately race with a cancel)."""
        return self._pending.pop(invoke_id, None)

    def __len__(self) -> int:
        return len(self._pending)


class ReliableTransaction:
    """One request retried with exponential backoff until answered.

    ``send(attempt)`` transmits the request (attempt numbers start at 1);
    if :meth:`complete` is not called within the timeout the request is
    resent with the timeout scaled by ``backoff`` each try, up to
    ``max_retries`` resends, then ``on_give_up()`` runs.  Everything is
    driven by a :class:`repro.sim.timers.Timer`, so retry schedules are
    part of the deterministic event stream.

    Counters under ``counter_prefix`` (default ``txn.<name>``):
    ``.retries`` per resend and ``.giveups`` on abandonment.
    """

    def __init__(
        self,
        sim: Any,
        name: str,
        send: Callable[[int], None],
        timeout: float = 2.0,
        backoff: float = 2.0,
        max_retries: int = 5,
        on_give_up: Optional[Callable[[], None]] = None,
        counter_prefix: Optional[str] = None,
    ) -> None:
        if timeout <= 0 or backoff < 1.0 or max_retries < 0:
            raise ProtocolError(
                f"bad retry policy for {name!r}: timeout={timeout!r} "
                f"backoff={backoff!r} max_retries={max_retries!r}"
            )
        self.sim = sim
        self.name = name
        self.timeout = timeout
        self.backoff = backoff
        self.max_retries = max_retries
        self.state = "idle"  # idle | pending | done | failed
        self.attempts = 0
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._send = send
        self._on_give_up = on_give_up
        prefix = counter_prefix if counter_prefix is not None else f"txn.{name}"
        self._retries_ctr = sim.metrics.counter(f"{prefix}.retries")
        self._giveups_ctr = sim.metrics.counter(f"{prefix}.giveups")
        self._timer = Timer(sim, f"txn:{name}", timeout, self._expired)

    def start(self) -> None:
        """(Re)issue the request and arm the first timeout."""
        self.state = "pending"
        self.started_at = self.sim.now
        self.completed_at = None
        self.attempts = 0
        self._attempt()

    def _attempt(self) -> None:
        self.attempts += 1
        self._send(self.attempts)
        self._timer.start(self.timeout * self.backoff ** (self.attempts - 1))

    def _expired(self) -> None:
        if self.state != "pending":
            return
        if self.attempts > self.max_retries:
            self.state = "failed"
            self._giveups_ctr.inc()
            if self._on_give_up is not None:
                self._on_give_up()
            return
        self._retries_ctr.inc()
        self._attempt()

    def complete(self) -> Optional[float]:
        """The response arrived: stop retrying.  Returns the elapsed
        time since :meth:`start`, or ``None`` if nothing was pending
        (late/duplicate responses are legitimate and ignored)."""
        if self.state != "pending":
            return None
        self.state = "done"
        self.completed_at = self.sim.now
        self._timer.stop()
        assert self.started_at is not None
        return self.completed_at - self.started_at

    def cancel(self) -> None:
        """Abandon without counting a give-up (e.g. the subscriber
        detached and the answer no longer matters)."""
        if self.state == "pending":
            self.state = "idle"
            self._timer.stop()


class Sequencer:
    """A plain monotonically increasing id allocator (call refs, CICs,
    RAS sequence numbers, TMSIs)."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value
