"""Request/response correlation for MAP-style invoke ids.

Nodes issuing MAP (or RAS) requests register a continuation under a fresh
invoke id; the response handler pops the continuation and resumes the
procedure.  This keeps multi-step procedures (registration, call setup)
readable as a chain of small callbacks while supporting any number of
concurrent transactions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ProtocolError


class Transactions:
    """Allocates invoke ids and stores per-transaction context."""

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._pending: Dict[int, Any] = {}

    def open(self, context: Any) -> int:
        """Store *context* (usually a callback or a small dict) and return
        a fresh invoke id."""
        invoke_id = self._next
        self._next += 1
        self._pending[invoke_id] = context
        return invoke_id

    def open_with_id(self, invoke_id: int, context: Any) -> int:
        """Store *context* under an externally chosen id (e.g. a protocol
        sequence number the peer will echo back)."""
        if invoke_id in self._pending:
            raise ProtocolError(f"invoke id {invoke_id} already pending")
        self._pending[invoke_id] = context
        return invoke_id

    def close(self, invoke_id: int) -> Any:
        """Pop and return the context; raises on unknown ids so protocol
        wiring mistakes fail loudly."""
        try:
            return self._pending.pop(invoke_id)
        except KeyError:
            raise ProtocolError(f"unknown invoke id {invoke_id}") from None

    def try_close(self, invoke_id: int) -> Optional[Any]:
        """Pop and return the context, or ``None`` if absent (for
        responses that may legitimately race with a cancel)."""
        return self._pending.pop(invoke_id, None)

    def __len__(self) -> int:
        return len(self._pending)


class Sequencer:
    """A plain monotonically increasing id allocator (call refs, CICs,
    RAS sequence numbers, TMSIs)."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value
