"""Subscriber and network identities.

Implements the identifier formats the procedures depend on:

* :class:`IMSI` — International Mobile Subscriber Identity (GSM 23.003):
  MCC (3 digits) + MNC (2 digits here) + MSIN, max 15 digits.
* :class:`TMSI` — 32-bit Temporary Mobile Subscriber Identity.
* :class:`MSISDN` / :class:`E164Number` — telephone numbers with country
  codes; tromboning (Figures 7–8) hinges on international vs. local
  routing decisions made on these.
* :class:`IPv4Address` — dotted-quad, int-backed.
* :class:`TunnelId` — GTP v0 tunnel identifier (GSM 09.60): IMSI + NSAPI.
* :class:`LAI` / :class:`CellId` — location area and cell identities.

All identity types are immutable and hashable so they can key HLR/VLR and
PDP-context tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import AddressError


@dataclass(frozen=True, order=True)
class IMSI:
    """International Mobile Subscriber Identity.

    >>> imsi = IMSI("466920000000001")
    >>> imsi.mcc, imsi.mnc
    ('466', '92')
    """

    digits: str

    def __post_init__(self) -> None:
        if not self.digits.isdigit():
            raise AddressError(f"IMSI must be decimal digits, got {self.digits!r}")
        if not 6 <= len(self.digits) <= 15:
            raise AddressError(f"IMSI must be 6-15 digits, got {len(self.digits)}")

    @property
    def mcc(self) -> str:
        """Mobile country code (first three digits)."""
        return self.digits[:3]

    @property
    def mnc(self) -> str:
        """Mobile network code (two-digit convention)."""
        return self.digits[3:5]

    @property
    def msin(self) -> str:
        """Mobile subscriber identification number."""
        return self.digits[5:]

    def __str__(self) -> str:
        return self.digits


@dataclass(frozen=True, order=True)
class TMSI:
    """32-bit temporary identity allocated by a VLR."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"TMSI must fit in 32 bits, got {self.value:#x}")

    def __str__(self) -> str:
        return f"TMSI:{self.value:08x}"


@dataclass(frozen=True, order=True)
class E164Number:
    """An international telephone number: ``+<cc><national>``.

    >>> n = E164Number("886", "35712121")
    >>> str(n)
    '+88635712121'
    >>> n.is_international_from("44")
    True
    """

    country_code: str
    national: str

    def __post_init__(self) -> None:
        if not self.country_code.isdigit() or not 1 <= len(self.country_code) <= 3:
            raise AddressError(f"bad country code {self.country_code!r}")
        if not self.national.isdigit() or not self.national:
            raise AddressError(f"bad national number {self.national!r}")

    @classmethod
    def parse(cls, text: str, known_ccs: tuple = ("1", "44", "852", "886")) -> "E164Number":
        """Parse ``+<digits>`` by matching the longest known country code."""
        if not text.startswith("+"):
            raise AddressError(f"E.164 numbers start with '+', got {text!r}")
        digits = text[1:]
        for cc in sorted(known_ccs, key=len, reverse=True):
            if digits.startswith(cc):
                return cls(cc, digits[len(cc):])
        raise AddressError(f"no known country code matches {text!r}")

    def is_international_from(self, country_code: str) -> bool:
        """True when dialling this number from *country_code* crosses an
        international boundary — the quantity tromboning is about."""
        return self.country_code != country_code

    def __str__(self) -> str:
        return f"+{self.country_code}{self.national}"


def as_e164(value: "E164Number | str") -> "E164Number":
    """Coerce *value* to an :class:`E164Number` at an API boundary.

    Raises :class:`AddressError` immediately on bad input, so callers
    (``place_call`` and friends) reject misuse before touching any call
    state instead of failing mid-simulation from a field validator.
    """
    if isinstance(value, E164Number):
        return value
    if isinstance(value, str):
        return E164Number.parse(value)
    raise AddressError(
        f"expected E164Number or '+<digits>' string, got {value!r}"
    )


# An MSISDN is the E.164 number of a mobile subscriber; keeping the alias
# makes call sites read like the specs.
MSISDN = E164Number


@dataclass(frozen=True, order=True)
class IPv4Address:
    """Dotted-quad IPv4 address backed by a 32-bit int."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"IPv4 address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"bad IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or not 0 <= int(part) <= 255:
                raise AddressError(f"bad IPv4 octet in {text!r}")
            value = (value << 8) | int(part)
        return cls(value)

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class TunnelId:
    """GTP v0 tunnel identifier: the IMSI plus the NSAPI selecting one of
    the subscriber's PDP contexts (GSM 09.60 §11.1.1)."""

    imsi: IMSI
    nsapi: int

    def __post_init__(self) -> None:
        if not 0 <= self.nsapi <= 15:
            raise AddressError(f"NSAPI must be 0-15, got {self.nsapi}")

    def __str__(self) -> str:
        return f"TID:{self.imsi}/{self.nsapi}"


@dataclass(frozen=True, order=True)
class LAI:
    """Location area identity: MCC + MNC + LAC."""

    mcc: str
    mnc: str
    lac: int

    def __post_init__(self) -> None:
        if not (self.mcc.isdigit() and len(self.mcc) == 3):
            raise AddressError(f"bad MCC {self.mcc!r}")
        if not (self.mnc.isdigit() and 2 <= len(self.mnc) <= 3):
            raise AddressError(f"bad MNC {self.mnc!r}")
        if not 0 <= self.lac <= 0xFFFF:
            raise AddressError(f"LAC must fit in 16 bits, got {self.lac}")

    def __str__(self) -> str:
        return f"LAI:{self.mcc}-{self.mnc}-{self.lac:04x}"


@dataclass(frozen=True, order=True)
class CellId:
    """A cell within a location area."""

    lai: LAI
    ci: int

    def __post_init__(self) -> None:
        if not 0 <= self.ci <= 0xFFFF:
            raise AddressError(f"cell id must fit in 16 bits, got {self.ci}")

    def __str__(self) -> str:
        return f"{self.lai}/ci={self.ci:04x}"


SubscriberId = Union[IMSI, TMSI]
