"""Analytic (fluid) media-flow modelling.

:mod:`repro.media.fluid` replaces the event-per-frame voice path with a
per-spurt analytic model; see that module's docstring for the contract.
"""

from repro.media.fluid import FluidMediaSession, install_fluid

__all__ = ["FluidMediaSession", "install_fluid"]
