"""Fluid (analytic) per-call media-flow model.

The event-per-frame media path simulates every 20 ms vocoder frame as a
discrete event, which dominates soak runs (E9 measures thousands of
frames per call).  This module replaces it with a *probe-calibrated
analytic model* that produces the same ``TERM*.mouth_to_ear`` /
``TERM*.jitter`` histograms and endpoint counters with **zero per-frame
events during talk spurts**:

* ``start_talking`` sends only the spurt's **first frame** through the
  real event path.  That probe traverses every link, relay and vocoder
  the remaining frames would, so its arrival measures the constant part
  of the path delay exactly — including transcoding schedules and any
  residual queueing at spurt start.
* The remaining ``N - 1`` frame times are generated with the same float
  accumulation the generator process would use (``t += interval``), so
  frame counts and generation timestamps match the event path bit for
  bit.
* Shared packet channels (the 3G TR baseline's finite-capacity radio
  channel, :meth:`repro.gsm.bts.Bts._packet_channel_delay`) are modelled
  by :class:`FluidChannel`, a deterministic replica of the same FIFO
  busy-until arithmetic.  At flush time the channel replays the merged
  arrival progression of every overlapping flow, so load-dependent
  queueing delay and jitter — the physical origin of E9's degradation
  curve — reproduce the event path's values, including the unbounded
  backlog growth of an oversubscribed channel.
* One **flush** event per spurt observes every frame that has already
  (analytically) arrived; frames still "in flight" at flush time are
  observed by cheap drain events scheduled at their arrival times, so a
  run cut off mid-delivery observes exactly the frames the event path
  would have.

The model is calibrated entirely from simulated quantities; nothing in
this module may read wall-clock time (``repro lint`` rule R1 enforces
this for the whole package).

Assumptions (documented in EXPERIMENTS.md): the constant part of the
path delay does not change during a spurt (no mid-spurt handoff), and
receivers apply the codec's nominal 20 ms spacing when computing jitter,
mirroring the hard-coded constant in the event-path receivers.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator

__all__ = ["FluidChannel", "FluidFlow", "FluidMediaSession", "install_fluid"]

#: Nominal inter-frame spacing the event-path receivers subtract when
#: observing jitter (hard-coded ``0.020`` in every ``on_rtp``/
#: ``on_voice``); mirrored here so fluid jitter samples match.
NOMINAL_SPACING = 0.020


class _ChannelFlow:
    """One media flow's schedule on a shared packet channel."""

    __slots__ = ("seq", "start", "delta", "interval", "dur", "service", "done")

    def __init__(
        self,
        seq: int,
        start: float,
        delta: float,
        interval: float,
        dur: float,
        service: float,
    ) -> None:
        self.seq = seq
        self.start = start
        #: Constant lag between frame generation and channel arrival
        #: (the radio-link latency in front of the BTS queue).
        self.delta = delta
        self.interval = interval
        self.dur = dur
        self.service = service
        self.done = False


class FluidChannel:
    """Deterministic replica of a shared packet channel's FIFO queue.

    Mirrors :meth:`repro.gsm.bts.Bts._packet_channel_delay`: arrivals
    are served in order, each occupying the channel for its
    serialisation time; a frame's wait is ``max(now, busy_until) - now``.
    Flows register their frame schedules; :meth:`waits` replays the
    merged arrival progression of every registered flow to compute one
    flow's per-frame waits.  Ties (frames of different flows arriving at
    the same instant) are broken by registration order, which matches
    the event kernel's scheduling-order tie-break for simultaneously
    started spurts.
    """

    def __init__(self, bps: float) -> None:
        self.bps = bps
        self._flows: List[_ChannelFlow] = []
        self._next_seq = 0
        #: Residual ``busy_until`` of the real channel when the first
        #: flow of a busy period registered — carries over any backlog
        #: signalling left behind, exactly as the event path would.
        self._busy0 = float("-inf")

    def register(
        self,
        start: float,
        delta: float,
        interval: float,
        dur: float,
        service: float,
        residual_busy: float,
    ) -> _ChannelFlow:
        if all(f.done for f in self._flows):
            # New busy period: earlier flows can no longer interact with
            # this one (their backlog is summarised by *residual_busy*).
            self._flows.clear()
            self._busy0 = residual_busy
        flow = _ChannelFlow(self._next_seq, start, delta, interval, dur, service)
        self._next_seq += 1
        self._flows.append(flow)
        return flow

    def truncate(self, flow: _ChannelFlow, dur: float) -> None:
        if dur < flow.dur:
            flow.dur = dur

    def waits(self, target: _ChannelFlow) -> List[float]:
        """Per-frame queueing waits for *target*, replaying all flows."""
        cursors: List[Tuple[float, int, float, _ChannelFlow]] = []
        for f in self._flows:
            if f.dur > 0 and f.start <= target.start + target.dur:
                cursors.append((f.start + f.delta, f.seq, f.start, f))
        heapq.heapify(cursors)
        busy = self._busy0
        out: List[float] = []
        want = _frame_count(target.start, target.interval, target.dur)
        while cursors and len(out) < want:
            arrival, seq, t, f = heapq.heappop(cursors)
            begin = busy if busy > arrival else arrival
            if f is target:
                out.append(begin - arrival)
            busy = begin + f.service
            t2 = t + f.interval
            if t2 - f.start < f.dur:
                heapq.heappush(cursors, (t2 + f.delta, seq, t2, f))
        return out


def _frame_count(start: float, interval: float, dur: float) -> int:
    """Number of frames a generator loop emits: one at each ``t`` from
    *start* stepping by *interval* while ``t - start < dur``, with the
    same float accumulation the event-path process uses."""
    n = 0
    t = start
    while t - start < dur:
        n += 1
        t += interval
    return n


class FluidFlow:
    """One talk spurt being modelled analytically."""

    __slots__ = (
        "key", "start", "interval", "dur", "on_frames",
        "channel", "cflow", "receiver", "probe_arrival",
        "flushed", "pending_flush", "flush_event",
        "tail", "tail_idx",
    )

    def __init__(
        self,
        key: int,
        start: float,
        interval: float,
        dur: float,
        on_frames: Optional[Callable[[int], None]],
        channel: Optional[FluidChannel],
        cflow: Optional[_ChannelFlow],
    ) -> None:
        self.key = key
        self.start = start
        self.interval = interval
        self.dur = dur
        self.on_frames = on_frames
        self.channel = channel
        self.cflow = cflow
        self.receiver: Optional[object] = None
        self.probe_arrival: Optional[float] = None
        self.flushed = False
        self.pending_flush = False
        self.flush_event: Optional["Event"] = None
        #: ``(arrival, delay, jitter)`` of frames still in flight at
        #: flush time, drained by events at their arrival instants.
        self.tail: List[Tuple[float, float, float]] = []
        self.tail_idx = 0


class FluidMediaSession:
    """Session-wide registry of fluid media flows.

    Installed as ``Simulator.media`` (``None`` keeps the event-per-frame
    path with zero overhead).  Senders register flows from
    ``start_talking``; receivers report every media frame they observe
    via :meth:`on_frame`, which correlates the spurt's calibration probe
    back to its flow by generation timestamp.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Probe key (``gen_time_us``) -> flows awaiting calibration, in
        #: registration order.  Simultaneously started spurts share a
        #: key; their probes arrive in registration order, so FIFO
        #: matching pairs each probe with its own flow (and identical
        #: paths make the pairing immaterial anyway).
        self._awaiting: Dict[int, List[FluidFlow]] = {}
        self._channels: Dict[Tuple[object, str], FluidChannel] = {}

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def channel(self, node: object, direction: str, bps: float) -> FluidChannel:
        """The shared :class:`FluidChannel` mirroring *node*'s packet
        channel in *direction* (created on first use)."""
        ch = self._channels.get((node, direction))
        if ch is None:
            ch = self._channels[(node, direction)] = FluidChannel(bps)
        return ch

    def start_flow(
        self,
        key: int,
        start: float,
        interval: float,
        duration: float,
        on_frames: Optional[Callable[[int], None]] = None,
        channel: Optional[FluidChannel] = None,
        delta: float = 0.0,
        service: float = 0.0,
        residual_busy: float = 0.0,
    ) -> FluidFlow:
        """Register a spurt of frames every *interval* s for *duration* s
        starting at *start*; the caller sends frame 0 (the probe, whose
        ``gen_time_us`` is *key*) through the event path itself."""
        cflow = None
        if channel is not None:
            cflow = channel.register(
                start, delta, interval, duration, service, residual_busy
            )
        flow = FluidFlow(key, start, interval, duration, on_frames, channel, cflow)
        self._awaiting.setdefault(key, []).append(flow)
        flow.flush_event = self.sim.schedule_at(start + duration, self._flush, flow)
        return flow

    def end_flow(self, flow: FluidFlow) -> None:
        """Truncate *flow* at the current instant (early hang-up) and
        flush it; a no-op when the spurt already ran its full duration.
        Frames already in flight keep draining, as they would on the
        event path."""
        if flow.flushed:
            return
        elapsed = self.sim.now - flow.start
        if elapsed < flow.dur:
            flow.dur = elapsed
            if flow.cflow is not None:
                flow.channel.truncate(flow.cflow, elapsed)
        if flow.flush_event is not None:
            flow.flush_event.cancel()
            flow.flush_event = None
        self._flush(flow)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_frame(self, key: int, receiver: object) -> None:
        """Called by media receivers for every frame they observe; pairs
        calibration probes with their flows.  Frames that are not
        pending probes (event-path traffic) fall through untouched."""
        flows = self._awaiting.get(key)
        if not flows:
            return
        flow = flows.pop(0)
        if not flows:
            del self._awaiting[key]
        flow.receiver = receiver
        flow.probe_arrival = self.sim.now
        if flow.pending_flush:
            flow.pending_flush = False
            self._flush(flow)

    # ------------------------------------------------------------------
    # Flush + drain
    # ------------------------------------------------------------------
    def _flush(self, flow: FluidFlow) -> None:
        if flow.flushed:
            return
        if flow.receiver is None:
            # Probe still in flight (spurt shorter than the path delay);
            # finish when it lands.
            flow.pending_flush = True
            return
        flow.flushed = True
        if flow.cflow is not None:
            flow.cflow.done = True
        # Frame generation times, with the generator loop's own float
        # accumulation so counts and timestamps match the event path.
        times: List[float] = []
        t = flow.start
        while t - flow.start < flow.dur:
            times.append(t)
            t += flow.interval
        n = len(times)
        if flow.on_frames is not None and n > 1:
            flow.on_frames(n - 1)
        if n <= 1:
            return
        if flow.cflow is not None:
            waits = flow.channel.waits(flow.cflow)
            w0 = waits[0]
        else:
            waits = None
            w0 = 0.0
        # Every constant along the path (radio latency, serialisation,
        # transcoding, core hops ...) is captured by the probe's arrival;
        # frame k differs only by its generation offset and its queueing
        # wait relative to the probe's.
        base = flow.probe_arrival
        t0 = times[0]
        prev = base
        now = self.sim.now
        imm_delays: List[float] = []
        imm_jitters: List[float] = []
        imm_last: Optional[float] = None
        tail = flow.tail
        for k in range(1, n):
            tk = times[k]
            arrival = base + (tk - t0)
            if waits is not None:
                arrival += waits[k] - w0
            delay = arrival - int(tk * 1e6) / 1e6
            jitter = abs((arrival - prev) - NOMINAL_SPACING)
            prev = arrival
            if arrival <= now and not tail:
                imm_delays.append(delay)
                imm_jitters.append(jitter)
                imm_last = arrival
            else:
                tail.append((arrival, delay, jitter))
        if imm_delays:
            self._observe(flow.receiver, imm_delays, imm_jitters, imm_last)
        if tail:
            self.sim.schedule_at(max(tail[0][0], now), self._drain, flow)

    def _drain(self, flow: FluidFlow) -> None:
        now = self.sim.now
        tail = flow.tail
        i = flow.tail_idx
        delays: List[float] = []
        jitters: List[float] = []
        last = None
        while i < len(tail) and tail[i][0] <= now:
            arrival, delay, jitter = tail[i]
            delays.append(delay)
            jitters.append(jitter)
            last = arrival
            i += 1
        flow.tail_idx = i
        if delays:
            self._observe(flow.receiver, delays, jitters, last)
        if i < len(tail):
            self.sim.schedule_at(tail[i][0], self._drain, flow)

    def _observe(
        self,
        receiver: object,
        delays: List[float],
        jitters: List[float],
        last_arrival: Optional[float],
    ) -> None:
        """Feed a batch of analytic samples into the receiver's metrics,
        using the same cached histogram handles the event path uses."""
        m2e = receiver._m2e_hist
        if m2e is None:
            m2e = receiver._m2e_hist = self.sim.metrics.histogram(
                f"{receiver.name}.mouth_to_ear"
            )
        m2e.observe_many(delays)
        if jitters:
            jit = receiver._jitter_hist
            if jit is None:
                jit = receiver._jitter_hist = self.sim.metrics.histogram(
                    f"{receiver.name}.jitter"
                )
            jit.observe_many(jitters)
        receiver.frames_received += len(delays)
        if last_arrival is not None:
            receiver._last_rx_time = last_arrival


def install_fluid(sim: "Simulator") -> FluidMediaSession:
    """Install (or return the existing) fluid media session on *sim*."""
    if sim.media is None:
        sim.media = FluidMediaSession(sim)
    return sim.media
