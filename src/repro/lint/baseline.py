"""Baseline file and inline suppressions.

Two ways to accept a violation:

* **inline** — append ``# lint: ignore[R1]`` (or a bare
  ``# lint: ignore`` for any rule) to the flagged line;
* **baseline** — check an entry into ``lint-baseline.json`` at the repo
  root.  Entries match by *fingerprint* (rule + file + message hash, no
  line numbers), so unrelated edits to the file do not invalidate them.
  Every entry must carry a ``reason``; the baseline is for *deliberate*
  violations, not a parking lot.

``python -m repro lint --write-baseline`` regenerates the file from the
current violations (reasons of existing entries are preserved), and
``--prune-baseline`` drops entries whose fingerprint no longer matches
any violation, so the file cannot accumulate stale suppressions.

Format history: version 1 entries had no ``occurrence`` field because
fingerprints could collide (same rule+message twice in one file).
Version 2 adds it; version-1 files still load — an absent occurrence
means 0, whose fingerprint input is unchanged.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.model import ProjectModel
from repro.lint.rules import Violation

BASELINE_FILENAME = "lint-baseline.json"

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


def inline_suppressed(model: ProjectModel, violation: Violation) -> bool:
    """True when the flagged source line carries a matching
    ``# lint: ignore`` marker."""
    for module in model.modules:
        if module.relpath != violation.file:
            continue
        match = _IGNORE_RE.search(module.line(violation.line))
        if match is None:
            return False
        rules = match.group("rules")
        if rules is None:
            return True
        return violation.rule in {r.strip() for r in rules.split(",")}
    return False


class Baseline:
    """The checked-in suppression list."""

    def __init__(self, entries: Optional[List[Dict[str, object]]] = None) -> None:
        self.entries: List[Dict[str, object]] = entries or []
        self._by_fingerprint = {
            str(e.get("fingerprint")): e for e in self.entries
        }

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version", 1)
        if version not in (1, 2):
            raise ValueError(f"{path}: unknown baseline version {version!r}")
        entries = data.get("suppressions", [])
        if not isinstance(entries, list):
            raise ValueError(f"{path}: 'suppressions' must be a list")
        return cls(entries)

    def contains(self, violation: Violation) -> bool:
        return violation.fingerprint in self._by_fingerprint

    def reason(self, violation: Violation) -> Optional[str]:
        entry = self._by_fingerprint.get(violation.fingerprint)
        if entry is None:
            return None
        return str(entry.get("reason", ""))

    def stale_entries(
        self, violations: Sequence[Violation]
    ) -> List[Dict[str, object]]:
        """Entries matching none of *violations* — suppressions for
        code that was since fixed or deleted.  Only meaningful against
        a full-rule run; a ``--rules`` subset would make every other
        rule's entries look stale."""
        live = {v.fingerprint for v in violations}
        return [
            e for e in self.entries if str(e.get("fingerprint")) not in live
        ]

    def pruned(self, violations: Sequence[Violation]) -> "Baseline":
        """A copy without the stale entries."""
        stale = {
            str(e.get("fingerprint")) for e in self.stale_entries(violations)
        }
        return Baseline(
            [e for e in self.entries if str(e.get("fingerprint")) not in stale]
        )

    @classmethod
    def from_violations(
        cls,
        violations: Sequence[Violation],
        previous: Optional["Baseline"] = None,
    ) -> "Baseline":
        """A fresh baseline accepting *violations*, carrying over the
        reasons of entries that already existed."""
        entries: List[Dict[str, object]] = []
        seen = set()
        for violation in violations:
            if violation.fingerprint in seen:
                continue
            seen.add(violation.fingerprint)
            reason = "TODO: justify or fix"
            if previous is not None:
                old = previous.reason(violation)
                if old:
                    reason = old
            entry: Dict[str, object] = {
                "fingerprint": violation.fingerprint,
                "rule": violation.rule,
                "file": violation.file,
                "message": violation.message,
                "reason": reason,
            }
            if violation.occurrence:
                entry["occurrence"] = violation.occurrence
            entries.append(entry)
        return cls(entries)

    def dump(self, path: Path) -> None:
        payload = {
            "version": 2,
            "comment": (
                "Deliberate repro.lint violations; match is by fingerprint "
                "(rule+file+message, plus an occurrence index for "
                "repeats). Regenerate with 'python -m repro lint "
                "--write-baseline'; drop stale entries with "
                "'--prune-baseline'."
            ),
            "suppressions": self.entries,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )


def find_baseline(start: Path) -> Optional[Path]:
    """Search *start* and up to four parents for the baseline file."""
    current = start if start.is_dir() else start.parent
    for _ in range(5):
        candidate = current / BASELINE_FILENAME
        if candidate.exists():
            return candidate
        if current.parent == current:
            break
        current = current.parent
    return None
