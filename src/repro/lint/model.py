"""The static project model the lint rules run against.

One parse pass over every ``*.py`` file under the scan root builds:

* the module table (path, AST, source lines);
* the class graph — every ``class`` statement with its base-class
  *names*, so ``derives_from`` can answer "is this a Packet subclass?"
  without importing anything;
* the packet registry — classes transitively derived from ``Packet``,
  each with its resolved wire ``name`` and declared field set (following
  ``Base.fields + (...)`` concatenations and ``OptionalField`` wrapping,
  exactly the shapes :mod:`repro.packets` uses);
* the node registry — classes transitively derived from ``Node`` with
  their ``@handles(...)`` handler table;
* every packet construction site in the tree (for dispatch-completeness
  and field-hygiene checks).

On top of that sits the **interprocedural layer** (built lazily, only
when a rule asks for it):

* :class:`CallGraph` — every function and method in the tree, with
  name-resolved call edges.  Receivers are typed through a lightweight
  inference pass (``self``, annotated parameters, ``x = Cls(...)``
  locals, class-body ``attr: Cls`` declarations and ``self.attr = ...``
  stores, return annotations), falling back to project-wide unique
  names.  Unresolvable calls simply produce no edge — the graph is
  deliberately under-approximate, never guessed.
* :class:`ThreadDomains` — which *thread domain* can execute each
  function: the simulation thread (handlers, process bodies, scheduled
  callbacks), the scrape thread (request-handler methods of
  ``BaseHTTPRequestHandler`` subclasses and everything they reach), a
  signal-handler context (functions registered via ``signal.signal``),
  or a sweep/shard worker process (functions submitted to ``run_sweep``
  or an executor).  Reachability is transitive over the call graph with
  a bounded depth, and every classified function carries a call-chain
  witness back to its domain root for the rules' violation messages.

Resolution is by *name*: the project keeps class names unique, and the
rules only need referential integrity, not full type inference.  A name
that cannot be resolved is reported by the rules rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    relpath: str                # posix path relative to the scan root
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    #: alias -> dotted origin for the module's imports, filled lazily by
    #: :func:`_import_aliases_cached` (the call graph resolves through
    #: it on every call site, so one pass per module matters).
    aliases_cache: Optional[Dict[str, str]] = field(default=None, repr=False)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class ClassInfo:
    """One ``class`` statement."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: Tuple[str, ...]      # base-class *names* (last attribute part)


@dataclass
class HandlerInfo:
    """One ``@handles(...)`` decorated method."""

    node_class: ClassInfo
    method: ast.FunctionDef
    packet_names: Tuple[str, ...]
    lineno: int


@dataclass
class CallSite:
    """A ``SomePacketClass(...)`` construction expression."""

    class_name: str
    module: ModuleInfo
    call: ast.Call
    lineno: int
    #: True when the construction sits in the right subtree of a ``/``
    #: stacking expression — the packet is an inner layer there, carried
    #: by (and dispatched as) the outer layer.
    inner_layer: bool = False


def base_name(node: ast.expr) -> Optional[str]:
    """The comparable name of a base-class expression: ``Packet`` and
    ``base.Packet`` both resolve to ``"Packet"``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _iter_class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            yield stmt


class ProjectModel:
    """The parsed project; built once, shared by every rule."""

    #: Root class names the registries grow from.
    PACKET_ROOT = "Packet"
    NODE_ROOT = "Node"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.modules: List[ModuleInfo] = []
        self.classes: Dict[str, ClassInfo] = {}
        self._duplicate_classes: Set[str] = set()
        self._parse_errors: List[Tuple[str, str]] = []
        self._load()
        self._index_classes()
        self.packet_classes: Dict[str, ClassInfo] = self._derived(self.PACKET_ROOT)
        self.node_classes: Dict[str, ClassInfo] = self._derived(self.NODE_ROOT)
        self.handlers: List[HandlerInfo] = self._collect_handlers()
        self.call_sites: List[CallSite] = self._collect_call_sites()
        self._field_cache: Dict[str, Optional[Set[str]]] = {}
        self._name_cache: Dict[str, Optional[str]] = {}
        self._call_graph: Optional["CallGraph"] = None
        self._domains_cache: Dict[Tuple[Tuple[str, ...], int], "ThreadDomains"] = {}

    def call_graph(self) -> "CallGraph":
        """The interprocedural call graph, built once on first use."""
        if self._call_graph is None:
            self._call_graph = CallGraph(self)
        return self._call_graph

    def thread_domains(
        self,
        scrape_handler_bases: Tuple[str, ...] = ("BaseHTTPRequestHandler",),
        max_depth: int = 25,
    ) -> "ThreadDomains":
        """The thread-domain classification, cached per parameter set."""
        key = (tuple(scrape_handler_bases), max_depth)
        domains = self._domains_cache.get(key)
        if domains is None:
            domains = ThreadDomains(
                self,
                self.call_graph(),
                scrape_handler_bases=scrape_handler_bases,
                max_depth=max_depth,
            )
            self._domains_cache[key] = domains
        return domains

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.root.is_file():
            paths: Sequence[Path] = [self.root]
            base = self.root.parent
        else:
            paths = sorted(self.root.rglob("*.py"))
            base = self.root
        for path in paths:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                self._parse_errors.append((str(path), str(exc)))
                continue
            self.modules.append(
                ModuleInfo(
                    path=path,
                    relpath=path.relative_to(base).as_posix(),
                    tree=tree,
                    source=source,
                    lines=source.splitlines(),
                )
            )

    @property
    def parse_errors(self) -> List[Tuple[str, str]]:
        return list(self._parse_errors)

    def _index_classes(self) -> None:
        for module in self.modules:
            for cdef in _iter_class_defs(module.tree):
                bases = tuple(
                    name for name in (base_name(b) for b in cdef.bases) if name
                )
                if cdef.name in self.classes:
                    self._duplicate_classes.add(cdef.name)
                self.classes[cdef.name] = ClassInfo(
                    name=cdef.name, module=module, node=cdef, bases=bases
                )

    # ------------------------------------------------------------------
    # Class-graph queries
    # ------------------------------------------------------------------
    def derives_from(self, name: str, root: str) -> bool:
        """True when class *name* is *root* or transitively derives from
        a class of that name."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return False

    def _derived(self, root: str) -> Dict[str, ClassInfo]:
        return {
            name: info
            for name, info in self.classes.items()
            if name != root and self.derives_from(name, root)
        }

    def mro_names(self, name: str) -> List[str]:
        """Linearised ancestor names (depth-first, class first); good
        enough for single-inheritance packet/node hierarchies."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            info = self.classes.get(current)
            if info is not None:
                stack = list(info.bases) + stack
        return out

    def descendants(self, name: str) -> Set[str]:
        """All classes that transitively derive from *name*."""
        out: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for cname, info in self.classes.items():
                if cname in out:
                    continue
                if any(b == name or b in out for b in info.bases):
                    out.add(cname)
                    changed = True
        return out

    # ------------------------------------------------------------------
    # Packet attribute resolution
    # ------------------------------------------------------------------
    def _class_assign(self, cls: ClassInfo, attr: str) -> Optional[ast.expr]:
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == attr:
                        return stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name) and stmt.target.id == attr:
                    return stmt.value
        return None

    def packet_wire_name(self, class_name: str) -> Optional[str]:
        """The resolved ``name`` attribute (walking up the bases)."""
        if class_name in self._name_cache:
            return self._name_cache[class_name]
        resolved: Optional[str] = None
        for ancestor in self.mro_names(class_name):
            info = self.classes.get(ancestor)
            if info is None:
                continue
            value = self._class_assign(info, "name")
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                resolved = value.value
                break
        self._name_cache[class_name] = resolved
        return resolved

    def packet_wire_names(self) -> Set[str]:
        """Every wire name declared by any class in the packet registry."""
        names: Set[str] = set()
        for class_name in self.packet_classes:
            value = self.packet_wire_name(class_name)
            if value is not None:
                names.add(value)
        return names

    def packet_fields(self, class_name: str) -> Optional[Set[str]]:
        """The declared field-name set for a packet class, following
        ``Base.fields + (...)``; ``None`` when any element is not
        statically resolvable (the hygiene rule then skips the class)."""
        if class_name in self._field_cache:
            return self._field_cache[class_name]
        self._field_cache[class_name] = None  # cycle guard
        resolved = self._resolve_fields(class_name)
        self._field_cache[class_name] = resolved
        return resolved

    def _resolve_fields(self, class_name: str) -> Optional[Set[str]]:
        info = self.classes.get(class_name)
        if info is None:
            return None
        expr = self._class_assign(info, "fields")
        if expr is None:
            # Inherit: first base in the packet registry that resolves.
            for base in info.bases:
                if base == self.PACKET_ROOT:
                    return set()
                inherited = self.packet_fields(base)
                if inherited is not None:
                    return inherited
            return None
        return self._fields_expr(expr)

    def _fields_expr(self, expr: ast.expr) -> Optional[Set[str]]:
        if isinstance(expr, (ast.Tuple, ast.List)):
            names: Set[str] = set()
            for element in expr.elts:
                fname = self._field_call_name(element)
                if fname is None:
                    return None
                names.add(fname)
            return names
        if isinstance(expr, ast.Attribute) and expr.attr == "fields":
            owner = base_name(expr.value)
            if owner is None:
                return None
            return self.packet_fields(owner)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self._fields_expr(expr.left)
            right = self._fields_expr(expr.right)
            if left is None or right is None:
                return None
            return left | right
        return None

    def _field_call_name(self, element: ast.expr) -> Optional[str]:
        """``IntField("x")`` -> ``x``; ``OptionalField(IntField("x"))``
        unwraps to the inner field's name."""
        if not isinstance(element, ast.Call) or not element.args:
            return None
        first = element.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        if isinstance(first, ast.Call):
            return self._field_call_name(first)
        return None

    # ------------------------------------------------------------------
    # Handlers and construction sites
    # ------------------------------------------------------------------
    def _collect_handlers(self) -> List[HandlerInfo]:
        out: List[HandlerInfo] = []
        for info in self.node_classes.values():
            for stmt in info.node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                packet_names: List[str] = []
                for deco in stmt.decorator_list:
                    if (
                        isinstance(deco, ast.Call)
                        and base_name(deco.func) == "handles"
                    ):
                        for arg in deco.args:
                            pname = base_name(arg)
                            if pname is not None:
                                packet_names.append(pname)
                if packet_names:
                    out.append(
                        HandlerInfo(
                            node_class=info,
                            method=stmt,
                            packet_names=tuple(packet_names),
                            lineno=stmt.lineno,
                        )
                    )
        return out

    def handled_packet_names(self) -> Set[str]:
        """Packet class names some node has a handler registered for."""
        return {name for h in self.handlers for name in h.packet_names}

    def _collect_call_sites(self) -> List[CallSite]:
        out: List[CallSite] = []
        packet_names = set(self.packet_classes)
        for module in self.modules:
            parents: Dict[ast.AST, ast.AST] = {}
            div_right_names: Set[str] = set()
            for node in ast.walk(module.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    if isinstance(node.right, ast.Name):
                        div_right_names.add(node.right.id)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = base_name(node.func)
                if name in packet_names:
                    out.append(
                        CallSite(
                            class_name=name or "",
                            module=module,
                            call=node,
                            lineno=node.lineno,
                            inner_layer=_is_inner_layer(
                                node, parents, div_right_names
                            ),
                        )
                    )
        return out

    def instantiated_packet_names(self) -> Set[str]:
        return {site.class_name for site in self.call_sites}

    def referenced_packet_names(self) -> Set[str]:
        """Packet classes referenced as plain names anywhere *except*
        inside a ``@handles(...)`` decoration — construction, rebuild
        helpers (``rename_packet(msg, Target)``), ``isinstance`` and
        ``get_layer`` checks all count as evidence the class is live."""
        packet_names = set(self.packet_classes)
        referenced: Set[str] = set()
        for module in self.modules:
            decorator_refs: Set[int] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and base_name(node.func) == "handles":
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            decorator_refs.add(id(sub))
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in packet_names
                    and id(node) not in decorator_refs
                ):
                    referenced.add(node.id)
        return referenced


# ----------------------------------------------------------------------
# Interprocedural layer: functions, call edges, thread domains
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method definition anywhere in the tree."""

    qname: str                  # "relpath::Class.method" / "relpath::fn"
    name: str                   # bare function name
    module: ModuleInfo
    node: ast.AST               # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]   # enclosing class, None for module level
    nested_in: Optional[str]    # qname of the enclosing function, if any
    lineno: int

    @property
    def label(self) -> str:
        """Human-readable name for call-chain witnesses."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def is_generator(self) -> bool:
        return any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in function_body_walk(self.node)
        )


@dataclass(frozen=True)
class CallEdge:
    """A resolved call from one project function to another."""

    caller: str                 # qname
    callee: str                 # qname
    lineno: int


@dataclass
class RegistrationSite:
    """A call that hands a function to another execution context.

    ``kind`` is one of:

    * ``"signal"``   — ``signal.signal(SIG, fn)``;
    * ``"schedule"`` — ``sim.schedule(delay, fn, ...)`` /
      ``schedule_at(t, fn, ...)`` (the callback runs on the sim thread);
    * ``"submit"``   — ``executor.submit(fn, ...)``;
    * ``"sweep"``    — ``run_sweep(fn, points, ...)``.
    """

    kind: str
    module: ModuleInfo
    call: ast.Call
    owner: Optional[str]        # qname of the enclosing function
    lineno: int

    @property
    def callable_arg(self) -> Optional[ast.expr]:
        index = 1 if self.kind in ("signal", "schedule") else 0
        if len(self.call.args) > index:
            return self.call.args[index]
        return None


def function_body_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body *without* descending into nested ``def``s —
    nested functions are separate :class:`FunctionInfo` entries and must
    not have their statements attributed to the encloser."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_SCHEDULE_ATTRS = ("schedule", "schedule_at")
_SUBMIT_ATTRS = ("submit",)
_SWEEP_NAMES = ("run_sweep",)


class CallGraph:
    """Name-resolved project call graph with light type inference.

    Construction is one pass over every function body.  Resolution is
    *under-approximate*: an edge exists only when the target can be
    pinned to exactly one project function — via local scoping, import
    aliases, inferred receiver types walked through the class MRO, or
    (last resort) a project-wide unique name.  Everything else produces
    no edge, so reachability answers are "provably reachable", never
    "maybe".
    """

    def __init__(self, model: "ProjectModel") -> None:
        self.model = model
        self.functions: Dict[str, FunctionInfo] = {}
        self.edges: Dict[str, List[CallEdge]] = {}
        self.registrations: List[RegistrationSite] = []
        self._by_simple_name: Dict[str, List[str]] = {}
        self._methods: Dict[Tuple[str, str], str] = {}   # (cls, name) -> qname
        self._module_level: Dict[str, Dict[str, str]] = {}  # relpath -> name -> qname
        self._by_node: Dict[int, str] = {}               # id(ast fn) -> qname
        self._module_by_dotted: Dict[str, ModuleInfo] = {}
        self._attr_types: Dict[str, Dict[str, str]] = {}
        self._envs: Dict[str, Dict[str, str]] = {}
        self._collect_functions()
        self._index_modules()
        self._infer_attr_types()
        self._build_edges()

    # -- collection ----------------------------------------------------
    def _collect_functions(self) -> None:
        for module in self.model.modules:
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, stmt, None, None)
                elif isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if isinstance(
                            sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._add_function(module, sub, stmt.name, None)

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
        nested_in: Optional[str],
    ) -> str:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if nested_in is not None:
            qname = f"{nested_in}.<locals>.{node.name}"
        elif class_name is not None:
            qname = f"{module.relpath}::{class_name}.{node.name}"
        else:
            qname = f"{module.relpath}::{node.name}"
        info = FunctionInfo(
            qname=qname,
            name=node.name,
            module=module,
            node=node,
            class_name=class_name,
            nested_in=nested_in,
            lineno=node.lineno,
        )
        self.functions[qname] = info
        self._by_node[id(node)] = qname
        self._by_simple_name.setdefault(node.name, []).append(qname)
        if class_name is not None and nested_in is None:
            self._methods.setdefault((class_name, node.name), qname)
        elif nested_in is None:
            self._module_level.setdefault(module.relpath, {})[node.name] = qname
        # Nested defs become their own functions, rooted at the parent.
        for sub in function_body_walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, sub, class_name, qname)
        return qname

    def _index_modules(self) -> None:
        for module in self.model.modules:
            dotted = module.relpath[:-3].replace("/", ".")
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            self._module_by_dotted[dotted] = module

    def info_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        qname = self._by_node.get(id(node))
        return self.functions.get(qname) if qname is not None else None

    # -- type inference ------------------------------------------------
    def _annotation_class(self, ann: Optional[ast.expr]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name: Optional[str] = ann.value.strip().strip('"').strip("'")
        else:
            name = base_name(ann)
        if name is not None and name in self.model.classes:
            return name
        return None

    def _param_types(self, fn: ast.AST) -> Dict[str, str]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        env: Dict[str, str] = {}
        args = fn.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            cls = self._annotation_class(arg.annotation)
            if cls is not None:
                env[arg.arg] = cls
        return env

    def _infer_attr_types(self) -> None:
        """``class -> {attr -> class}`` from class-body annotations and
        ``self.attr = ...`` stores in any method."""
        for cname, cinfo in self.model.classes.items():
            attrs: Dict[str, str] = {}
            for stmt in cinfo.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    cls = self._annotation_class(stmt.annotation)
                    if cls is not None:
                        attrs[stmt.target.id] = cls
            self._attr_types[cname] = attrs
        # self.attr = <expr> needs the method's parameter env, so it
        # happens in a second pass once every class has its dict.
        for cname, cinfo in self.model.classes.items():
            attrs = self._attr_types[cname]
            for stmt in cinfo.node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                env = dict(self._param_types(stmt))
                env["self"] = cname
                for node in function_body_walk(stmt):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target = node.target
                        cls = self._annotation_class(node.annotation)
                        if (
                            cls is not None
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.setdefault(target.attr, cls)
                        continue
                    if (
                        target is not None
                        and value is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls = self._infer_type(value, env)
                        if cls is not None:
                            attrs.setdefault(target.attr, cls)

    def attr_type(self, class_name: str, attr: str) -> Optional[str]:
        """The inferred class of ``<class_name> instance>.<attr>``,
        walking the MRO."""
        for ancestor in self.model.mro_names(class_name):
            attrs = self._attr_types.get(ancestor)
            if attrs and attr in attrs:
                return attrs[attr]
        return None

    def _infer_type(
        self, expr: ast.expr, env: Dict[str, str]
    ) -> Optional[str]:
        """The project class an expression evaluates to, if provable."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._infer_type(expr.value, env)
            if owner is not None:
                return self.attr_type(owner, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            cname = base_name(func)
            if (
                isinstance(func, ast.Name)
                and cname is not None
                and cname in self.model.classes
            ):
                return cname
            target = self._resolve_call_target(expr, env, None)
            if target is not None:
                info = self.functions[target]
                node = info.node
                assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                return self._annotation_class(node.returns)
        return None

    def _function_env(self, info: FunctionInfo) -> Dict[str, str]:
        env = self._envs.get(info.qname)
        if env is not None:
            return env
        env = dict(self._param_types(info.node))
        if info.class_name is not None:
            env.setdefault("self", info.class_name)
        # Locals assigned from constructors / annotated assignments.
        for node in function_body_walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in env:
                    cls = self._infer_type(node.value, env)
                    if cls is not None:
                        env[target.id] = cls
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = self._annotation_class(node.annotation)
                if cls is not None:
                    env.setdefault(node.target.id, cls)
        self._envs[info.qname] = env
        return env

    # -- call resolution -----------------------------------------------
    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """``repro.core.sweeps.fn`` -> the qname of ``fn`` in the module
        whose relpath-derived dotted name suffixes the import path."""
        if "." not in dotted:
            return None
        mod_path, fn_name = dotted.rsplit(".", 1)
        probe = mod_path
        while probe:
            module = self._module_by_dotted.get(probe)
            if module is not None:
                return self._module_level.get(module.relpath, {}).get(fn_name)
            probe = probe.split(".", 1)[1] if "." in probe else ""
        return None

    def resolve_method(
        self, class_name: str, method: str
    ) -> Optional[str]:
        """The defining qname of ``class_name().method`` via the MRO."""
        for ancestor in self.model.mro_names(class_name):
            qname = self._methods.get((ancestor, method))
            if qname is not None:
                return qname
        return None

    def _unique_by_name(self, name: str) -> Optional[str]:
        candidates = self._by_simple_name.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _resolve_call_target(
        self,
        call: ast.Call,
        env: Dict[str, str],
        caller: Optional[FunctionInfo],
    ) -> Optional[str]:
        func = call.func
        aliases = _MODULE_ALIASES(self, caller)
        if isinstance(func, ast.Name):
            name = func.id
            # Nested defs of the caller (and its enclosers) shadow all.
            if caller is not None:
                scope: Optional[FunctionInfo] = caller
                while scope is not None:
                    nested = self.functions.get(
                        f"{scope.qname}.<locals>.{name}"
                    )
                    if nested is not None:
                        return nested.qname
                    scope = (
                        self.functions.get(scope.nested_in)
                        if scope.nested_in
                        else None
                    )
            if name in self.model.classes:
                return self.resolve_method(name, "__init__")
            if caller is not None:
                local = self._module_level.get(caller.module.relpath, {})
                if name in local:
                    return local[name]
            origin = aliases.get(name)
            if origin is not None:
                resolved = self._resolve_dotted(origin)
                if resolved is not None:
                    return resolved
            return self._unique_by_name(name)
        if isinstance(func, ast.Attribute):
            dotted = _dotted_chain(func, aliases)
            if dotted is not None:
                resolved = self._resolve_dotted(dotted)
                if resolved is not None:
                    return resolved
            owner = self._infer_type(func.value, env)
            if owner is not None:
                return self.resolve_method(owner, func.attr)
            # Last resort: a method name unique across the whole tree.
            return self._unique_by_name(func.attr)
        return None

    def resolve_callable_ref(
        self,
        expr: ast.expr,
        module: ModuleInfo,
        owner: Optional[str],
    ) -> Tuple[str, Optional[FunctionInfo]]:
        """Classify a *callable-valued expression* (a function handed to
        ``signal.signal`` / ``schedule`` / ``submit`` / ``run_sweep``).

        Returns ``(kind, target)`` with kind one of ``"function"``
        (resolved, target set), ``"lambda"``, ``"nested"`` (a function
        defined inside another function), ``"bound_method"`` (an
        attribute of an instance), or ``"unknown"``.  ``functools.partial``
        and one level of local-variable aliasing are unwrapped.
        """
        info = self.functions.get(owner) if owner else None
        env = self._function_env(info) if info is not None else {}
        seen: Set[int] = set()
        while True:
            if id(expr) in seen:
                return "unknown", None
            seen.add(id(expr))
            if isinstance(expr, ast.Lambda):
                return "lambda", None
            if isinstance(expr, ast.Call):
                # functools.partial(fn, ...) keeps fn's picklability.
                fname = base_name(expr.func)
                if fname == "partial" and expr.args:
                    expr = expr.args[0]
                    continue
                return "unknown", None
            if isinstance(expr, ast.Name):
                if info is not None:
                    nested = self.functions.get(
                        f"{info.qname}.<locals>.{expr.id}"
                    )
                    if nested is not None:
                        return "nested", nested
                    assigned = self._local_assignment(info, expr.id)
                    if assigned is not None:
                        expr = assigned
                        continue
                    local = self._module_level.get(info.module.relpath, {})
                    if expr.id in local:
                        return "function", self.functions[local[expr.id]]
                else:
                    local = self._module_level.get(module.relpath, {})
                    if expr.id in local:
                        return "function", self.functions[local[expr.id]]
                aliases = _import_aliases_cached(module)
                origin = aliases.get(expr.id)
                if origin is not None:
                    resolved = self._resolve_dotted(origin)
                    if resolved is not None:
                        return "function", self.functions[resolved]
                unique = self._unique_by_name(expr.id)
                if unique is not None:
                    target = self.functions[unique]
                    if target.nested_in is not None:
                        return "nested", target
                    return "function", target
                return "unknown", None
            if isinstance(expr, ast.Attribute):
                aliases = _import_aliases_cached(module)
                dotted = _dotted_chain(expr, aliases)
                if dotted is not None:
                    resolved = self._resolve_dotted(dotted)
                    if resolved is not None:
                        return "function", self.functions[resolved]
                    # A dotted chain rooted at an import that is not a
                    # project function (stdlib, signal.SIG_DFL...).
                    return "unknown", None
                owner_cls = self._infer_type(expr.value, env)
                if owner_cls is not None:
                    resolved = self.resolve_method(owner_cls, expr.attr)
                    if resolved is not None:
                        return "bound_method", self.functions[resolved]
                unique = self._unique_by_name(expr.attr)
                if unique is not None:
                    target = self.functions[unique]
                    if target.class_name is not None:
                        return "bound_method", target
                    return "function", target
                return "unknown", None
            return "unknown", None

    def _local_assignment(
        self, info: FunctionInfo, name: str
    ) -> Optional[ast.expr]:
        for node in function_body_walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        return None

    # -- edges ---------------------------------------------------------
    def _build_edges(self) -> None:
        for qname in self.functions:
            self.edges[qname] = []
        for qname in sorted(self.functions):
            info = self.functions[qname]
            env = self._function_env(info)
            for node in function_body_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                self._record_registration(info, node)
                target = self._resolve_call_target(node, env, info)
                if target is not None and target != qname:
                    self.edges[qname].append(
                        CallEdge(qname, target, node.lineno)
                    )
        # Registrations at module scope (outside any function).
        for module in self.model.modules:
            self._record_module_registrations(module)

    def _record_registration(
        self, owner: FunctionInfo, call: ast.Call
    ) -> None:
        kind = self._registration_kind(call, owner.module)
        if kind is not None:
            self.registrations.append(
                RegistrationSite(
                    kind=kind,
                    module=owner.module,
                    call=call,
                    owner=owner.qname,
                    lineno=call.lineno,
                )
            )

    def _record_module_registrations(self, module: ModuleInfo) -> None:
        in_function: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    in_function.add(id(sub))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and id(node) not in in_function:
                kind = self._registration_kind(node, module)
                if kind is not None:
                    self.registrations.append(
                        RegistrationSite(
                            kind=kind,
                            module=module,
                            call=node,
                            owner=None,
                            lineno=node.lineno,
                        )
                    )

    def _registration_kind(
        self, call: ast.Call, module: ModuleInfo
    ) -> Optional[str]:
        func = call.func
        name = base_name(func)
        if isinstance(func, ast.Attribute):
            dotted = _dotted_chain(func, _import_aliases_cached(module))
            if dotted == "signal.signal":
                return "signal"
            if func.attr in _SCHEDULE_ATTRS:
                return "schedule"
            if func.attr in _SUBMIT_ATTRS:
                return "submit"
        if name in _SWEEP_NAMES:
            return "sweep"
        return None

    # -- reachability ---------------------------------------------------
    def reachable(
        self,
        roots: Sequence[Tuple[str, str]],
        max_depth: int = 25,
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS over call edges from ``(qname, root-label)`` pairs.

        Returns ``{qname: witness}`` for every function within
        *max_depth* calls of a root, where the witness is the label
        chain ``(root-label, fn, fn, ...)`` ending at the function
        itself.  Roots appear with their own one-element chain.
        Deterministic: roots and edges are visited in sorted order.
        """
        out: Dict[str, Tuple[str, ...]] = {}
        frontier: List[Tuple[str, Tuple[str, ...]]] = []
        for qname, label in sorted(roots):
            if qname in self.functions and qname not in out:
                chain = (label,)
                out[qname] = chain
                frontier.append((qname, chain))
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            next_frontier: List[Tuple[str, Tuple[str, ...]]] = []
            for qname, chain in frontier:
                for edge in self.edges.get(qname, ()):
                    if edge.callee in out:
                        continue
                    callee = self.functions[edge.callee]
                    new_chain = chain + (callee.label,)
                    out[edge.callee] = new_chain
                    next_frontier.append((edge.callee, new_chain))
            frontier = next_frontier
        return out


def _import_aliases_cached(module: ModuleInfo) -> Dict[str, str]:
    """alias -> dotted origin for every import in *module* (cached)."""
    if module.aliases_cache is not None:
        return module.aliases_cache
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    module.aliases_cache = aliases
    return aliases


def _MODULE_ALIASES(
    graph: CallGraph, caller: Optional[FunctionInfo]
) -> Dict[str, str]:
    if caller is None:
        return {}
    return _import_aliases_cached(caller.module)


def _dotted_chain(
    node: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve an attribute chain through import aliases to its dotted
    origin (``_sig.signal`` -> ``signal.signal``)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = aliases.get(current.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


class ThreadDomains:
    """Which thread domain(s) can execute each function.

    Domains (a function may belong to several):

    * ``sim``    — packet handlers, ``on_*`` methods of Node subclasses,
      generator process bodies, and callbacks handed to
      ``schedule``/``schedule_at``, plus everything they reach;
    * ``scrape`` — request-handler methods of classes deriving from a
      scrape base (``BaseHTTPRequestHandler``) and everything they
      reach;
    * ``signal`` — functions registered via ``signal.signal`` and
      everything they reach;
    * ``worker`` — functions submitted to ``run_sweep`` or an executor
      ``submit``, and everything they reach (they execute in sweep /
      shard worker processes).

    Every member carries a call-chain witness back to its domain root.
    """

    SIM = "sim"
    SCRAPE = "scrape"
    SIGNAL = "signal"
    WORKER = "worker"

    def __init__(
        self,
        model: "ProjectModel",
        graph: CallGraph,
        scrape_handler_bases: Tuple[str, ...] = ("BaseHTTPRequestHandler",),
        max_depth: int = 25,
    ) -> None:
        self.model = model
        self.graph = graph
        self.max_depth = max_depth
        self.roots: Dict[str, List[Tuple[str, str]]] = {
            self.SIM: [],
            self.SCRAPE: [],
            self.SIGNAL: [],
            self.WORKER: [],
        }
        self._collect_sim_roots()
        self._collect_scrape_roots(scrape_handler_bases)
        self._collect_registration_roots()
        self.reach: Dict[str, Dict[str, Tuple[str, ...]]] = {
            domain: graph.reachable(roots, max_depth=max_depth)
            for domain, roots in self.roots.items()
        }

    def members(self, domain: str) -> Dict[str, Tuple[str, ...]]:
        return self.reach[domain]

    def chain(self, domain: str, qname: str) -> Tuple[str, ...]:
        return self.reach[domain].get(qname, ())

    # -- root discovery -------------------------------------------------
    def _collect_sim_roots(self) -> None:
        sim = self.roots[self.SIM]
        seen: Set[str] = set()
        for handler in self.model.handlers:
            info = self.graph.info_for_node(handler.method)
            if info is not None and info.qname not in seen:
                seen.add(info.qname)
                sim.append((info.qname, f"handler {info.label}"))
        for cinfo in self.model.node_classes.values():
            for stmt in cinfo.node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name.startswith("on_")
                ):
                    info = self.graph.info_for_node(stmt)
                    if info is not None and info.qname not in seen:
                        seen.add(info.qname)
                        sim.append((info.qname, f"handler {info.label}"))
        for qname in sorted(self.graph.functions):
            info = self.graph.functions[qname]
            if qname not in seen and info.is_generator:
                seen.add(qname)
                sim.append((qname, f"process body {info.label}"))
        for site in self.graph.registrations:
            if site.kind != "schedule":
                continue
            arg = site.callable_arg
            if arg is None:
                continue
            kind, target = self.graph.resolve_callable_ref(
                arg, site.module, site.owner
            )
            if target is not None and target.qname not in seen:
                seen.add(target.qname)
                sim.append(
                    (target.qname, f"scheduled callback {target.label}")
                )

    def _collect_scrape_roots(self, bases: Tuple[str, ...]) -> None:
        scrape = self.roots[self.SCRAPE]
        for cname in sorted(self.model.classes):
            if cname in bases:
                continue
            if not any(self.model.derives_from(cname, b) for b in bases):
                continue
            cinfo = self.model.classes[cname]
            for stmt in cinfo.node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self.graph.info_for_node(stmt)
                    if info is not None:
                        scrape.append(
                            (info.qname, f"request handler {info.label}")
                        )

    def _collect_registration_roots(self) -> None:
        for site in self.graph.registrations:
            if site.kind == "signal":
                domain, prefix = self.SIGNAL, "signal handler"
            elif site.kind in ("submit", "sweep"):
                domain, prefix = self.WORKER, "worker entry"
            else:
                continue
            arg = site.callable_arg
            if arg is None:
                continue
            kind, target = self.graph.resolve_callable_ref(
                arg, site.module, site.owner
            )
            if target is None:
                continue
            entry = (target.qname, f"{prefix} {target.label}")
            if entry not in self.roots[domain]:
                self.roots[domain].append(entry)


def _is_inner_layer(
    call: ast.Call,
    parents: Dict[ast.AST, ast.AST],
    div_right_names: Set[str],
) -> bool:
    """True when *call* sits in the right subtree of a ``/`` packet
    stack — directly (``Outer(...) / call``) or via a local that some
    ``/`` expression in the module later carries as a payload
    (``request = Inner(...); ... header / request``)."""
    node: ast.AST = call
    parent = parents.get(node)
    while parent is not None:
        if isinstance(parent, ast.BinOp) and isinstance(parent.op, ast.Div):
            if parent.right is node:
                return True
        elif isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Name) and target.id in div_right_names:
                    return True
            break
        elif not isinstance(parent, ast.BinOp):
            break
        node, parent = parent, parents.get(parent)
    return False
