"""The static project model the lint rules run against.

One parse pass over every ``*.py`` file under the scan root builds:

* the module table (path, AST, source lines);
* the class graph — every ``class`` statement with its base-class
  *names*, so ``derives_from`` can answer "is this a Packet subclass?"
  without importing anything;
* the packet registry — classes transitively derived from ``Packet``,
  each with its resolved wire ``name`` and declared field set (following
  ``Base.fields + (...)`` concatenations and ``OptionalField`` wrapping,
  exactly the shapes :mod:`repro.packets` uses);
* the node registry — classes transitively derived from ``Node`` with
  their ``@handles(...)`` handler table;
* every packet construction site in the tree (for dispatch-completeness
  and field-hygiene checks).

Resolution is by *name*: the project keeps class names unique, and the
rules only need referential integrity, not full type inference.  A name
that cannot be resolved is reported by the rules rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    relpath: str                # posix path relative to the scan root
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class ClassInfo:
    """One ``class`` statement."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: Tuple[str, ...]      # base-class *names* (last attribute part)


@dataclass
class HandlerInfo:
    """One ``@handles(...)`` decorated method."""

    node_class: ClassInfo
    method: ast.FunctionDef
    packet_names: Tuple[str, ...]
    lineno: int


@dataclass
class CallSite:
    """A ``SomePacketClass(...)`` construction expression."""

    class_name: str
    module: ModuleInfo
    call: ast.Call
    lineno: int
    #: True when the construction sits in the right subtree of a ``/``
    #: stacking expression — the packet is an inner layer there, carried
    #: by (and dispatched as) the outer layer.
    inner_layer: bool = False


def base_name(node: ast.expr) -> Optional[str]:
    """The comparable name of a base-class expression: ``Packet`` and
    ``base.Packet`` both resolve to ``"Packet"``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _iter_class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            yield stmt


class ProjectModel:
    """The parsed project; built once, shared by every rule."""

    #: Root class names the registries grow from.
    PACKET_ROOT = "Packet"
    NODE_ROOT = "Node"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.modules: List[ModuleInfo] = []
        self.classes: Dict[str, ClassInfo] = {}
        self._duplicate_classes: Set[str] = set()
        self._parse_errors: List[Tuple[str, str]] = []
        self._load()
        self._index_classes()
        self.packet_classes: Dict[str, ClassInfo] = self._derived(self.PACKET_ROOT)
        self.node_classes: Dict[str, ClassInfo] = self._derived(self.NODE_ROOT)
        self.handlers: List[HandlerInfo] = self._collect_handlers()
        self.call_sites: List[CallSite] = self._collect_call_sites()
        self._field_cache: Dict[str, Optional[Set[str]]] = {}
        self._name_cache: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.root.is_file():
            paths: Sequence[Path] = [self.root]
            base = self.root.parent
        else:
            paths = sorted(self.root.rglob("*.py"))
            base = self.root
        for path in paths:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                self._parse_errors.append((str(path), str(exc)))
                continue
            self.modules.append(
                ModuleInfo(
                    path=path,
                    relpath=path.relative_to(base).as_posix(),
                    tree=tree,
                    source=source,
                    lines=source.splitlines(),
                )
            )

    @property
    def parse_errors(self) -> List[Tuple[str, str]]:
        return list(self._parse_errors)

    def _index_classes(self) -> None:
        for module in self.modules:
            for cdef in _iter_class_defs(module.tree):
                bases = tuple(
                    name for name in (base_name(b) for b in cdef.bases) if name
                )
                if cdef.name in self.classes:
                    self._duplicate_classes.add(cdef.name)
                self.classes[cdef.name] = ClassInfo(
                    name=cdef.name, module=module, node=cdef, bases=bases
                )

    # ------------------------------------------------------------------
    # Class-graph queries
    # ------------------------------------------------------------------
    def derives_from(self, name: str, root: str) -> bool:
        """True when class *name* is *root* or transitively derives from
        a class of that name."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return False

    def _derived(self, root: str) -> Dict[str, ClassInfo]:
        return {
            name: info
            for name, info in self.classes.items()
            if name != root and self.derives_from(name, root)
        }

    def mro_names(self, name: str) -> List[str]:
        """Linearised ancestor names (depth-first, class first); good
        enough for single-inheritance packet/node hierarchies."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            info = self.classes.get(current)
            if info is not None:
                stack = list(info.bases) + stack
        return out

    def descendants(self, name: str) -> Set[str]:
        """All classes that transitively derive from *name*."""
        out: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for cname, info in self.classes.items():
                if cname in out:
                    continue
                if any(b == name or b in out for b in info.bases):
                    out.add(cname)
                    changed = True
        return out

    # ------------------------------------------------------------------
    # Packet attribute resolution
    # ------------------------------------------------------------------
    def _class_assign(self, cls: ClassInfo, attr: str) -> Optional[ast.expr]:
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == attr:
                        return stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name) and stmt.target.id == attr:
                    return stmt.value
        return None

    def packet_wire_name(self, class_name: str) -> Optional[str]:
        """The resolved ``name`` attribute (walking up the bases)."""
        if class_name in self._name_cache:
            return self._name_cache[class_name]
        resolved: Optional[str] = None
        for ancestor in self.mro_names(class_name):
            info = self.classes.get(ancestor)
            if info is None:
                continue
            value = self._class_assign(info, "name")
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                resolved = value.value
                break
        self._name_cache[class_name] = resolved
        return resolved

    def packet_wire_names(self) -> Set[str]:
        """Every wire name declared by any class in the packet registry."""
        names: Set[str] = set()
        for class_name in self.packet_classes:
            value = self.packet_wire_name(class_name)
            if value is not None:
                names.add(value)
        return names

    def packet_fields(self, class_name: str) -> Optional[Set[str]]:
        """The declared field-name set for a packet class, following
        ``Base.fields + (...)``; ``None`` when any element is not
        statically resolvable (the hygiene rule then skips the class)."""
        if class_name in self._field_cache:
            return self._field_cache[class_name]
        self._field_cache[class_name] = None  # cycle guard
        resolved = self._resolve_fields(class_name)
        self._field_cache[class_name] = resolved
        return resolved

    def _resolve_fields(self, class_name: str) -> Optional[Set[str]]:
        info = self.classes.get(class_name)
        if info is None:
            return None
        expr = self._class_assign(info, "fields")
        if expr is None:
            # Inherit: first base in the packet registry that resolves.
            for base in info.bases:
                if base == self.PACKET_ROOT:
                    return set()
                inherited = self.packet_fields(base)
                if inherited is not None:
                    return inherited
            return None
        return self._fields_expr(expr)

    def _fields_expr(self, expr: ast.expr) -> Optional[Set[str]]:
        if isinstance(expr, (ast.Tuple, ast.List)):
            names: Set[str] = set()
            for element in expr.elts:
                fname = self._field_call_name(element)
                if fname is None:
                    return None
                names.add(fname)
            return names
        if isinstance(expr, ast.Attribute) and expr.attr == "fields":
            owner = base_name(expr.value)
            if owner is None:
                return None
            return self.packet_fields(owner)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self._fields_expr(expr.left)
            right = self._fields_expr(expr.right)
            if left is None or right is None:
                return None
            return left | right
        return None

    def _field_call_name(self, element: ast.expr) -> Optional[str]:
        """``IntField("x")`` -> ``x``; ``OptionalField(IntField("x"))``
        unwraps to the inner field's name."""
        if not isinstance(element, ast.Call) or not element.args:
            return None
        first = element.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        if isinstance(first, ast.Call):
            return self._field_call_name(first)
        return None

    # ------------------------------------------------------------------
    # Handlers and construction sites
    # ------------------------------------------------------------------
    def _collect_handlers(self) -> List[HandlerInfo]:
        out: List[HandlerInfo] = []
        for info in self.node_classes.values():
            for stmt in info.node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                packet_names: List[str] = []
                for deco in stmt.decorator_list:
                    if (
                        isinstance(deco, ast.Call)
                        and base_name(deco.func) == "handles"
                    ):
                        for arg in deco.args:
                            pname = base_name(arg)
                            if pname is not None:
                                packet_names.append(pname)
                if packet_names:
                    out.append(
                        HandlerInfo(
                            node_class=info,
                            method=stmt,
                            packet_names=tuple(packet_names),
                            lineno=stmt.lineno,
                        )
                    )
        return out

    def handled_packet_names(self) -> Set[str]:
        """Packet class names some node has a handler registered for."""
        return {name for h in self.handlers for name in h.packet_names}

    def _collect_call_sites(self) -> List[CallSite]:
        out: List[CallSite] = []
        packet_names = set(self.packet_classes)
        for module in self.modules:
            parents: Dict[ast.AST, ast.AST] = {}
            div_right_names: Set[str] = set()
            for node in ast.walk(module.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    if isinstance(node.right, ast.Name):
                        div_right_names.add(node.right.id)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = base_name(node.func)
                if name in packet_names:
                    out.append(
                        CallSite(
                            class_name=name or "",
                            module=module,
                            call=node,
                            lineno=node.lineno,
                            inner_layer=_is_inner_layer(
                                node, parents, div_right_names
                            ),
                        )
                    )
        return out

    def instantiated_packet_names(self) -> Set[str]:
        return {site.class_name for site in self.call_sites}

    def referenced_packet_names(self) -> Set[str]:
        """Packet classes referenced as plain names anywhere *except*
        inside a ``@handles(...)`` decoration — construction, rebuild
        helpers (``rename_packet(msg, Target)``), ``isinstance`` and
        ``get_layer`` checks all count as evidence the class is live."""
        packet_names = set(self.packet_classes)
        referenced: Set[str] = set()
        for module in self.modules:
            decorator_refs: Set[int] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and base_name(node.func) == "handles":
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            decorator_refs.add(id(sub))
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in packet_names
                    and id(node) not in decorator_refs
                ):
                    referenced.add(node.id)
        return referenced


def _is_inner_layer(
    call: ast.Call,
    parents: Dict[ast.AST, ast.AST],
    div_right_names: Set[str],
) -> bool:
    """True when *call* sits in the right subtree of a ``/`` packet
    stack — directly (``Outer(...) / call``) or via a local that some
    ``/`` expression in the module later carries as a payload
    (``request = Inner(...); ... header / request``)."""
    node: ast.AST = call
    parent = parents.get(node)
    while parent is not None:
        if isinstance(parent, ast.BinOp) and isinstance(parent.op, ast.Div):
            if parent.right is node:
                return True
        elif isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Name) and target.id in div_right_names:
                    return True
            break
        elif not isinstance(parent, ast.BinOp):
            break
        node, parent = parent, parents.get(parent)
    return False
