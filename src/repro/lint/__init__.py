"""repro.lint — protocol-aware static analysis for the reproduction.

The simulator's credibility rests on invariants that are cheap to break
and expensive to notice dynamically: seeded runs must stay
byte-identical, every ``@handles`` registration must resolve, every
golden-flow message name must exist, handlers must never block, and
packet constructors must match their field declarations.  Serve mode
and the sweep runner add concurrency to that list: the scrape thread,
signal handlers, and sweep worker processes each have a discipline a
single stray call can break.  This package proves all of it statically
— no imports, no simulation, no new dependencies — so a typo fails
``python -m repro lint`` in milliseconds instead of a 30-second golden
run (or worse, silently).

Rules R1–R5 are (mostly) syntactic; R1 and R4 additionally walk the
interprocedural call graph, and R6–R8 (thread-boundary, signal-handler,
and shard safety) are built entirely on it — see
:class:`repro.lint.model.CallGraph` and
:class:`repro.lint.model.ThreadDomains`.

Public surface:

* :func:`repro.lint.cli.main` — the CLI (``python -m repro lint``);
* :func:`repro.lint.cli.lint_paths` — programmatic entry point;
* :class:`repro.lint.rules.Violation`, :data:`repro.lint.rules.RULES`;
* :class:`repro.lint.baseline.Baseline` — suppression handling;
* :class:`repro.lint.model.CallGraph`,
  :class:`repro.lint.model.ThreadDomains` — the interprocedural layer.
"""

from repro.lint.baseline import Baseline, find_baseline
from repro.lint.model import CallGraph, ProjectModel, ThreadDomains
from repro.lint.rules import RULE_BITS, RULES, LintConfig, Violation, run_rules

__all__ = [
    "Baseline",
    "find_baseline",
    "CallGraph",
    "ProjectModel",
    "ThreadDomains",
    "RULES",
    "RULE_BITS",
    "LintConfig",
    "Violation",
    "run_rules",
]
