"""repro.lint — protocol-aware static analysis for the reproduction.

The simulator's credibility rests on invariants that are cheap to break
and expensive to notice dynamically: seeded runs must stay
byte-identical, every ``@handles`` registration must resolve, every
golden-flow message name must exist, handlers must never block, and
packet constructors must match their field declarations.  This package
proves all five with a single AST pass — no imports, no simulation, no
new dependencies — so a typo fails ``python -m repro lint`` in
milliseconds instead of a 30-second golden run (or worse, silently).

Public surface:

* :func:`repro.lint.cli.main` — the CLI (``python -m repro lint``);
* :func:`repro.lint.cli.lint_paths` — programmatic entry point;
* :class:`repro.lint.rules.Violation`, :data:`repro.lint.rules.RULES`;
* :class:`repro.lint.baseline.Baseline` — suppression handling.
"""

from repro.lint.baseline import Baseline, find_baseline
from repro.lint.model import ProjectModel
from repro.lint.rules import RULE_BITS, RULES, LintConfig, Violation, run_rules

__all__ = [
    "Baseline",
    "find_baseline",
    "ProjectModel",
    "RULES",
    "RULE_BITS",
    "LintConfig",
    "Violation",
    "run_rules",
]
