"""``python -m repro lint`` — run the analyzer and report.

Exit status is a per-rule bitmask (R1=1, R2=2, R3=4, R4=8, R5=16,
parse errors=32, R6=64, R7=128, R8=256): a run that only violates
determinism exits 1, one that violates both dispatch and hygiene exits
18, a clean (or fully baselined) run exits 0.  CI parses the JSON
report; humans read the text format.

``--changed [REF]`` keeps the full-tree model (the interprocedural
rules need every call edge) but reports only violations in files that
differ from REF (default HEAD) — the fast pre-commit check.
``--prune-baseline`` rewrites the baseline without stale entries; a
normal full-rule run only *warns* about them.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set, TextIO

from repro.lint.baseline import Baseline, find_baseline, inline_suppressed
from repro.lint.model import ProjectModel
from repro.lint.rules import RULE_BITS, RULES, LintConfig, Violation, run_rules


def default_scan_root() -> Path:
    """``src/repro`` relative to the working directory when present,
    else the installed package's own directory."""
    candidate = Path("src/repro")
    if candidate.is_dir():
        return candidate
    return Path(__file__).resolve().parent.parent


def lint_paths(
    root: Path,
    rules: Optional[List[str]] = None,
    config: Optional[LintConfig] = None,
) -> tuple[ProjectModel, List[Violation]]:
    config = config or LintConfig()
    if rules:
        config.rules = tuple(rules)
    model = ProjectModel(root)
    return model, run_rules(model, config)


def _changed_relpaths(root: Path, ref: str) -> Optional[Set[str]]:
    """Files that differ from *ref*, as relpaths within the scan root
    (``None`` when git is unavailable — fail open to a full report)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None
    root_resolved = root.resolve()
    out: Set[str] = set()
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        path = (Path(top) / line.strip()).resolve()
        try:
            out.add(path.relative_to(root_resolved).as_posix())
        except ValueError:
            continue  # outside the scan root
    return out


def _classify(
    model: ProjectModel, violations: List[Violation], baseline: Baseline
) -> List[dict]:
    rows = []
    for violation in violations:
        suppressed = inline_suppressed(model, violation)
        baselined = baseline.contains(violation)
        row = violation.to_dict()
        row["suppressed"] = suppressed
        row["baselined"] = baselined
        if baselined:
            row["baseline_reason"] = baseline.reason(violation)
        rows.append(row)
    return rows


def _exit_code(rows: List[dict]) -> int:
    code = 0
    for row in rows:
        if not row["suppressed"] and not row["baselined"]:
            code |= RULE_BITS[str(row["rule"])]
    return code


def _render_text(rows: List[dict], model: ProjectModel, out: TextIO) -> None:
    active = [r for r in rows if not r["suppressed"] and not r["baselined"]]
    accepted = len(rows) - len(active)
    for row in active:
        out.write(
            f"{row['file']}:{row['line']}: {row['rule']}[{row['code']}] "
            f"{row['message']}  [{row['fingerprint']}]\n"
        )
    counts = {}
    for row in active:
        counts[row["rule"]] = counts.get(row["rule"], 0) + 1
    summary = ", ".join(f"{rule}:{n}" for rule, n in sorted(counts.items()))
    out.write(
        f"repro.lint: {len(model.modules)} files, "
        f"{len(active)} violation(s)"
        + (f" ({summary})" if summary else "")
        + (f", {accepted} baselined/suppressed" if accepted else "")
        + "\n"
    )
    for path, error in model.parse_errors:
        out.write(f"repro.lint: parse error in {path}: {error}\n")


def _render_json(
    rows: List[dict], model: ProjectModel, exit_code: int, out: TextIO
) -> None:
    counts: dict = {rule: 0 for rule in RULES}
    for row in rows:
        if not row["suppressed"] and not row["baselined"]:
            counts[str(row["rule"])] += 1
    json.dump(
        {
            "version": 1,
            "files_scanned": len(model.modules),
            "parse_errors": [
                {"file": f, "error": e} for f, e in model.parse_errors
            ],
            "violations": rows,
            "summary": counts,
            "exit_code": exit_code,
        },
        out,
        indent=2,
    )
    out.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Protocol-aware static analysis: determinism, dispatch "
            "completeness, flow conformance, sim-safety, packet "
            "hygiene, and call-graph-powered concurrency rules "
            "(thread-boundary, signal-handler, shard safety)."
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="directory (or single file) to scan; default: src/repro",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        metavar="R1,R2,...",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file (default: lint-baseline.json found upward "
            "from the scan root; 'none' disables)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "remove baseline entries that match no current violation "
            "and rewrite the file (always runs every rule)"
        ),
    )
    parser.add_argument(
        "--changed",
        metavar="REF",
        nargs="?",
        const="HEAD",
        default=None,
        help=(
            "report only violations in files that differ from REF "
            "(default HEAD); the call graph still covers the whole tree"
        ),
    )
    args = parser.parse_args(argv)

    root = Path(args.path) if args.path else default_scan_root()
    if not root.exists():
        parser.error(f"scan root {root} does not exist")
    rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    if rules:
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            parser.error(f"unknown rule(s) {unknown}; have {sorted(RULES)}")
        if args.prune_baseline:
            # A subset run would make every other rule's baseline
            # entries look stale and prune live suppressions.
            parser.error("--prune-baseline requires a full-rule run "
                         "(drop --rules)")

    model, violations = lint_paths(root, rules=rules)

    if args.baseline == "none":
        baseline_path: Optional[Path] = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = find_baseline(root.resolve())
    baseline = Baseline.load(baseline_path)

    if args.write_baseline:
        target = baseline_path or (Path.cwd() / "lint-baseline.json")
        keep = [
            v for v in violations if not inline_suppressed(model, v)
        ]
        Baseline.from_violations(keep, previous=baseline).dump(target)
        print(f"wrote {len(keep)} suppression(s) to {target}")
        return 0

    if args.prune_baseline:
        if baseline_path is None:
            print("no baseline file found; nothing to prune")
            return 0
        stale = baseline.stale_entries(violations)
        if not stale:
            print(f"{baseline_path}: no stale entries")
            return 0
        baseline.pruned(violations).dump(baseline_path)
        for entry in stale:
            print(
                f"pruned {entry.get('fingerprint')} "
                f"({entry.get('rule')} {entry.get('file')})"
            )
        print(f"removed {len(stale)} stale entr"
              f"{'y' if len(stale) == 1 else 'ies'} from {baseline_path}")
        return 0

    rows = _classify(model, violations, baseline)
    if args.changed is not None:
        changed = _changed_relpaths(root, args.changed)
        if changed is not None:
            rows = [r for r in rows if r["file"] in changed]
    exit_code = _exit_code(rows)
    if model.parse_errors:
        exit_code |= 32  # unparseable files are never a clean run

    # Stale suppressions warn but never fail: the entry does no harm
    # yet, and a warn-only signal keeps `--prune-baseline` a deliberate
    # act.  Subset and diff-scoped runs skip the check — fewer rules or
    # files would make live entries look stale.
    if rules is None and args.changed is None:
        for entry in baseline.stale_entries(violations):
            print(
                f"repro.lint: warning: stale baseline entry "
                f"{entry.get('fingerprint')} ({entry.get('rule')} "
                f"{entry.get('file')}) matches no current violation; "
                "run --prune-baseline",
                file=sys.stderr,
            )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            if args.format == "json":
                _render_json(rows, model, exit_code, stream)
            else:
                _render_text(rows, model, stream)
        active = sum(1 for r in rows if not r["suppressed"] and not r["baselined"])
        print(
            f"repro.lint: report written to {args.output} "
            f"({active} violation(s), exit {exit_code})"
        )
    else:
        if args.format == "json":
            _render_json(rows, model, exit_code, sys.stdout)
        else:
            _render_text(rows, model, sys.stdout)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
