"""The protocol-aware lint rules.

Each rule is a function ``(model, config) -> [Violation]``.  Messages
deliberately avoid line numbers so a violation's fingerprint — which the
baseline file stores — survives unrelated edits to the same file.

R1 and R4 run in two passes: the syntactic pass over every module, and
an interprocedural pass over the call graph, so a clock read or a
blocking call buried two helpers deep under a handler is flagged with a
call-chain witness.  R6–R8 are purely interprocedural: they reason
about which *thread domain* (sim, scrape, signal, worker — see
:class:`repro.lint.model.ThreadDomains`) can execute each function.

=====  ===================  ==============================================
Rule   Code                 Proves
=====  ===================  ==============================================
R1     determinism          no wall-clock / entropy / env reads — even
                            transitively under a handler or inside the
                            strict-clock zone's reach; no unordered-set
                            iteration feeding the scheduler or the trace
R2     dispatch             every ``@handles`` target exists and is a
                            Packet; every constructed signalling packet
                            has a handler; no dead handlers
R3     flow-conformance     every golden-flow message name resolves in
                            the packet registry
R4     sim-safety           no blocking calls anywhere the simulation
                            thread can reach; every opened span is bound
                            and closed
R5     packet-hygiene       constructor keywords match declared fields
R6     thread-boundary      scrape-thread code only reads immutable
                            snapshots / ``peek_*`` APIs; no writes to
                            shared objects, no mutating metric reads, no
                            locks shared with the sim side
R7     signal-safety        signal handlers only set flags / enqueue —
                            no locks, no allocation-heavy calls, no I/O
                            beyond ``os.write``
R8     shard-safety         no module-global mutation in worker-process
                            code, no unordered iteration in cross-process
                            merges, no unpicklables submitted to pools
=====  ===================  ==============================================
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.model import (
    ModuleInfo,
    ProjectModel,
    ThreadDomains,
    base_name,
    function_body_walk,
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str          # "R1".."R8"
    code: str          # human-readable rule slug
    file: str          # relpath within the scan root
    line: int
    message: str
    #: Disambiguates repeats of the same (rule, file, message) triple —
    #: two identical ``time.time()`` reads in one file used to collide
    #: on one fingerprint, so baselining the first silently suppressed
    #: the second.  Assigned in line order by :func:`run_rules`.
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        # Occurrence 0 keeps the historical input so fingerprints in
        # existing baseline files stay valid.
        base = f"{self.rule}|{self.file}|{self.message}"
        if self.occurrence:
            base = f"{base}|{self.occurrence}"
        return hashlib.sha1(base.encode("utf-8")).hexdigest()[:12]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "code": self.code,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "occurrence": self.occurrence,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LintConfig:
    """Knobs the CLI exposes; defaults match the repro tree."""

    #: Files (relpaths) R1 ignores entirely — the one blessed home of
    #: ``random`` and seed handling.
    determinism_exempt: Tuple[str, ...] = ("sim/rng.py",)
    #: Files R4's span-pairing check ignores (the tracker itself).
    span_exempt: Tuple[str, ...] = ("obs/spans.py",)
    #: Relpath prefixes under the *strict clock* zone: analytic-model
    #: code whose results must be pure functions of sim state, so even
    #: the monotonic clocks that ordinary R1 tolerates (benchmarks and
    #: profilers read them legitimately) are forbidden there.  The serve
    #: package lives in the zone too: everything in live service mode
    #: consumes sim time except the one allowlisted pacer module.
    strict_clock_paths: Tuple[str, ...] = ("media/", "serve/")
    #: Exact relpaths *inside* a strict-clock zone that may read the
    #: host clock anyway — the pacer is the single blessed place where
    #: wall time enters serve mode (it sleeps between kernel slices and
    #: never feeds the schedule).  Ordinary R1 still applies here.
    clock_allowed_paths: Tuple[str, ...] = ("serve/pacer.py",)
    #: Exact relpaths the interprocedural R4 pass skips: the pacer's
    #: whole job is to sleep between kernel slices, and it is reachable
    #: from the serve loop's sim-thread hooks by design.
    blocking_allowed_paths: Tuple[str, ...] = ("serve/pacer.py",)
    #: Base classes whose subclasses' methods run on the scrape thread.
    scrape_handler_bases: Tuple[str, ...] = ("BaseHTTPRequestHandler",)
    #: Call-graph reachability bound for the interprocedural rules.
    max_call_depth: int = 25
    #: Rules to run; ``None`` means all.
    rules: Optional[Tuple[str, ...]] = None


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
_ENTROPY_MODULES = ("random", "secrets", "uuid")

#: Dotted call targets R1 forbids outside the exempt files.
_R1_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getenv": "environment read",
    "uuid.uuid4": "OS entropy",
}

#: Additional call targets forbidden inside the strict-clock zone
#: (``LintConfig.strict_clock_paths``): fluid-model math must never read
#: any host clock — a perf_counter() there means wall time is leaking
#: into computed delays.
_R1_STRICT_CLOCK_CALLS = {
    "time.perf_counter": "host clock read",
    "time.perf_counter_ns": "host clock read",
    "time.monotonic": "host clock read",
    "time.monotonic_ns": "host clock read",
    "time.process_time": "host clock read",
    "time.process_time_ns": "host clock read",
}

#: Attribute chains that count as environment reads wherever they occur.
_R1_FORBIDDEN_ATTRS = {"os.environ": "environment read"}

#: Callee attribute names that emit into the schedule or the trace; an
#: unordered iteration wrapping one of these is order-dependent output.
_EMISSION_SINKS = {
    "schedule",
    "schedule_at",
    "send",
    "transmit",
    "note",
    "record",
    "emit",
}

#: Blocking calls forbidden inside handlers and process bodies (R4).
_R4_BLOCKING_CALLS = {"time.sleep": "blocks the event loop"}
_R4_BLOCKING_MODULES = ("socket", "subprocess", "requests", "urllib")
_R4_BLOCKING_BUILTINS = {"open", "input"}


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """alias -> dotted origin, for every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def _dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``_time.perf_counter`` through the module's import
    aliases to ``time.perf_counter``; ``None`` when the chain does not
    start at an imported name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = aliases.get(current.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _functions(tree: ast.Module) -> Iterable[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _domains(model: ProjectModel, config: LintConfig) -> ThreadDomains:
    return model.thread_domains(
        scrape_handler_bases=config.scrape_handler_bases,
        max_depth=config.max_call_depth,
    )


def _via(chain: Tuple[str, ...]) -> str:
    """Render a call-chain witness for a violation message."""
    return " -> ".join(chain)


def _in_strict_zone(relpath: str, config: LintConfig) -> bool:
    return relpath.startswith(
        tuple(config.strict_clock_paths)
    ) and relpath not in config.clock_allowed_paths


# ----------------------------------------------------------------------
# R1 — determinism
# ----------------------------------------------------------------------
def check_determinism(model: ProjectModel, config: LintConfig) -> List[Violation]:
    out: List[Violation] = []

    def add(module: ModuleInfo, line: int, message: str) -> None:
        out.append(Violation("R1", "determinism", module.relpath, line, message))

    for module in model.modules:
        if module.relpath in config.determinism_exempt:
            continue
        strict_clock = module.relpath.startswith(
            tuple(config.strict_clock_paths)
        ) and module.relpath not in config.clock_allowed_paths
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    root = item.name.split(".")[0]
                    if root in _ENTROPY_MODULES:
                        add(
                            module,
                            node.lineno,
                            f"import of entropy module {item.name!r}; use "
                            "sim.rng named streams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in _ENTROPY_MODULES:
                    add(
                        module,
                        node.lineno,
                        f"import from entropy module {node.module!r}; use "
                        "sim.rng named streams instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func, aliases)
                reason = _R1_FORBIDDEN_CALLS.get(dotted or "")
                if reason is not None:
                    add(
                        module,
                        node.lineno,
                        f"{dotted}() is a {reason}; simulations must draw "
                        "time from Simulator.now and entropy from sim.rng",
                    )
                elif strict_clock:
                    reason = _R1_STRICT_CLOCK_CALLS.get(dotted or "")
                    if reason is not None:
                        add(
                            module,
                            node.lineno,
                            f"{dotted}() is a {reason} inside the strict-"
                            "clock zone; analytic media models must be "
                            "pure functions of simulated time",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node, aliases)
                reason = _R1_FORBIDDEN_ATTRS.get(dotted or "")
                if reason is not None:
                    add(
                        module,
                        node.lineno,
                        f"{dotted} is an {reason}; thread configuration "
                        "through explicit parameters",
                    )
            elif isinstance(node, ast.For):
                label = _unordered_iter_label(node.iter)
                if label is not None and _loop_emits(node):
                    add(
                        module,
                        node.lineno,
                        f"iteration over {label} feeds the scheduler or "
                        "trace; iterate a sorted() or list-ordered view",
                    )
    out.extend(_check_interprocedural_clocks(model, config))
    return out


def _check_interprocedural_clocks(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    """Host-clock reads *reachable* from the simulation thread or from
    the strict-clock zone, in modules the syntactic strict pass does not
    cover.  ``time.perf_counter()`` in a helper two calls below a
    handler used to escape R1 entirely; now it is flagged with the call
    chain that reaches it."""
    out: List[Violation] = []
    graph = model.call_graph()
    domains = _domains(model, config)

    strict_roots: List[Tuple[str, str]] = []
    for qname, info in graph.functions.items():
        if _in_strict_zone(info.module.relpath, config):
            strict_roots.append(
                (qname, f"strict-clock zone {info.module.relpath}:{info.label}")
            )
    reaches = (
        domains.members(ThreadDomains.SIM),
        graph.reachable(strict_roots, max_depth=config.max_call_depth),
    )

    seen_sites: Set[Tuple[str, int, str]] = set()
    for reach in reaches:
        for qname in sorted(reach):
            info = graph.functions[qname]
            rel = info.module.relpath
            if rel in config.determinism_exempt:
                continue
            if rel in config.clock_allowed_paths or _in_strict_zone(rel, config):
                continue  # blessed, or already covered syntactically
            aliases = _import_aliases(info.module.tree)
            for node in function_body_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func, aliases)
                reason = _R1_STRICT_CLOCK_CALLS.get(dotted or "")
                if reason is None:
                    continue
                site = (rel, node.lineno, dotted or "")
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                out.append(
                    Violation(
                        "R1",
                        "determinism",
                        rel,
                        node.lineno,
                        f"{dotted}() is a {reason} reachable from "
                        f"deterministic code (via {_via(reach[qname])}); "
                        "simulations must draw time from Simulator.now",
                    )
                )
    return out


def _unordered_iter_label(iter_expr: ast.expr) -> Optional[str]:
    if isinstance(iter_expr, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(iter_expr, ast.Call):
        callee = iter_expr.func
        if isinstance(callee, ast.Name) and callee.id in ("set", "frozenset"):
            return f"{callee.id}()"
        if isinstance(callee, ast.Attribute) and callee.attr == "keys":
            # dict.keys() itself is insertion-ordered, but insertion order
            # is exactly what a refactor silently changes; require an
            # explicit sorted()/list ordering at emission points.
            return ".keys()"
    return None


def _loop_emits(loop: ast.For) -> bool:
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in _EMISSION_SINKS
                ):
                    return True
    return False


# ----------------------------------------------------------------------
# R2 — dispatch completeness
# ----------------------------------------------------------------------
def check_dispatch(model: ProjectModel, config: LintConfig) -> List[Violation]:
    out: List[Violation] = []
    handled = model.handled_packet_names()
    instantiated = model.instantiated_packet_names()

    # Handlers must reference real Packet classes.
    for handler in model.handlers:
        for pname in handler.packet_names:
            if pname not in model.classes:
                out.append(
                    Violation(
                        "R2",
                        "dispatch",
                        handler.node_class.module.relpath,
                        handler.lineno,
                        f"@handles({pname}) on "
                        f"{handler.node_class.name}.{handler.method.name}: "
                        f"no class named {pname!r} exists",
                    )
                )
            elif (
                pname not in model.packet_classes
                and pname != model.PACKET_ROOT
            ):
                out.append(
                    Violation(
                        "R2",
                        "dispatch",
                        handler.node_class.module.relpath,
                        handler.lineno,
                        f"@handles({pname}) on "
                        f"{handler.node_class.name}.{handler.method.name}: "
                        f"{pname!r} is not a Packet subclass",
                    )
                )

    # Every constructed signalling packet must be dispatchable somewhere.
    # Sites in the right subtree of a ``/`` stack are inner layers: the
    # outer layer is what gets dispatched, so only outermost
    # constructions demand a handler.
    reported: Set[str] = set()
    for site in model.call_sites:
        cname = site.class_name
        if cname in reported or site.inner_layer:
            continue
        if any(ancestor in handled for ancestor in model.mro_names(cname)):
            continue
        if _is_transport_layer(model, cname):
            continue  # carried inside other layers, never dispatched
        reported.add(cname)
        out.append(
            Violation(
                "R2",
                "dispatch",
                site.module.relpath,
                site.lineno,
                f"{cname} is constructed but no node @handles it (or any "
                "of its base classes); it would land in on_unhandled",
            )
        )

    # Dead handlers: registered for packets nothing ever constructs or
    # even mentions (rebuild helpers like rename_packet(msg, Target)
    # reference the class by name, which counts as liveness).
    referenced = model.referenced_packet_names()
    for handler in model.handlers:
        for pname in handler.packet_names:
            if pname not in model.packet_classes:
                continue  # reported above
            alive = {pname} | model.descendants(pname)
            if alive & (instantiated | referenced):
                continue
            out.append(
                Violation(
                    "R2",
                    "dispatch",
                    handler.node_class.module.relpath,
                    handler.lineno,
                    f"dead handler {handler.node_class.name}."
                    f"{handler.method.name}: {pname} (and its subclasses) "
                    "is never constructed in the scanned tree",
                )
            )
    return out


def _is_transport_layer(model: ProjectModel, class_name: str) -> bool:
    """Classes that set ``show_in_flow = False`` anywhere in their MRO
    are transport/payload layers; they ride inside other packets and are
    not dispatched at nodes."""
    for ancestor in model.mro_names(class_name):
        info = model.classes.get(ancestor)
        if info is None:
            continue
        value = model._class_assign(info, "show_in_flow")
        if isinstance(value, ast.Constant) and isinstance(value.value, bool):
            return not value.value
    return False


# ----------------------------------------------------------------------
# R3 — flow conformance
# ----------------------------------------------------------------------
def check_flow_conformance(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    out: List[Violation] = []
    wire_names = model.packet_wire_names()
    if not wire_names:
        return out
    for module in model.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and base_name(node.func) == "FlowStep":
                message = _flowstep_message(node)
                if message is not None and message not in wire_names:
                    out.append(
                        Violation(
                            "R3",
                            "flow-conformance",
                            module.relpath,
                            node.lineno,
                            f"flow step names message {message!r}, which no "
                            "packet class declares; a golden run can never "
                            "match it",
                        )
                    )
            elif isinstance(node, ast.Assign):
                out.extend(_check_quiet_names(model, module, node, wire_names))
    return out


def _flowstep_message(call: ast.Call) -> Optional[str]:
    expr: Optional[ast.expr] = None
    if len(call.args) >= 2:
        expr = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "message":
                expr = kw.value
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _check_quiet_names(
    model: ProjectModel,
    module: ModuleInfo,
    node: ast.Assign,
    wire_names: Set[str],
) -> List[Violation]:
    """Trace quiet-lists name messages too; a typo there un-quiets the
    media frames and floods the trace."""
    targets = {t.id for t in node.targets if isinstance(t, ast.Name)}
    if "DEFAULT_QUIET" not in targets:
        return []
    out: List[Violation] = []
    for literal in ast.walk(node.value):
        if isinstance(literal, ast.Constant) and isinstance(literal.value, str):
            if literal.value not in wire_names:
                out.append(
                    Violation(
                        "R3",
                        "flow-conformance",
                        module.relpath,
                        node.lineno,
                        f"quiet-list names message {literal.value!r}, which "
                        "no packet class declares",
                    )
                )
    return out


# ----------------------------------------------------------------------
# R4 — sim safety
# ----------------------------------------------------------------------
def check_sim_safety(model: ProjectModel, config: LintConfig) -> List[Violation]:
    out: List[Violation] = []
    out.extend(_check_blocking_calls(model))
    out.extend(_check_interprocedural_blocking(model, config))
    out.extend(_check_span_pairing(model, config))
    return out


def _restricted_contexts(
    model: ProjectModel,
) -> List[Tuple[ModuleInfo, ast.AST, str]]:
    """The functions the syntactic R4 pass scans directly: handlers
    (decorated or ``on_*`` convention) and generator process bodies."""
    restricted: List[Tuple[ModuleInfo, ast.AST, str]] = []
    # Handlers (decorated or on_* convention) on Node subclasses...
    for handler in model.handlers:
        restricted.append(
            (
                handler.node_class.module,
                handler.method,
                f"handler {handler.node_class.name}.{handler.method.name}",
            )
        )
    seen = {id(fn) for _, fn, _ in restricted}
    for info in model.node_classes.values():
        for stmt in info.node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name.startswith("on_")
                and id(stmt) not in seen
            ):
                restricted.append(
                    (info.module, stmt, f"handler {info.name}.{stmt.name}")
                )
                seen.add(id(stmt))
    # ... and process bodies (generator functions driven by the kernel).
    for module in model.modules:
        for fn in _functions(module.tree):
            if id(fn) in seen:
                continue
            if any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(fn)
            ):
                restricted.append(
                    (module, fn, f"process body {fn.name}")
                )
                seen.add(id(fn))
    return restricted


def _check_blocking_calls(model: ProjectModel) -> List[Violation]:
    out: List[Violation] = []
    for module, fn, context in _restricted_contexts(model):
        aliases = _import_aliases(module.tree)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            message = _blocking_call_message(node, aliases)
            if message is not None:
                out.append(
                    Violation(
                        "R4",
                        "sim-safety",
                        module.relpath,
                        node.lineno,
                        f"{message} inside {context}; simulation callbacks "
                        "must not block — schedule() a delay or move I/O "
                        "out of the event loop",
                    )
                )
    return out


def _check_interprocedural_blocking(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    """Blocking calls in helpers the simulation thread reaches
    *transitively* — including scheduled callbacks, which the syntactic
    pass never saw — with a call-chain witness."""
    out: List[Violation] = []
    graph = model.call_graph()
    domains = _domains(model, config)
    reach = domains.members(ThreadDomains.SIM)
    direct = {id(fn) for _, fn, _ in _restricted_contexts(model)}
    for qname in sorted(reach):
        info = graph.functions[qname]
        rel = info.module.relpath
        if rel in config.blocking_allowed_paths:
            continue
        if id(info.node) in direct:
            continue  # the syntactic pass already reported these bodies
        aliases = _import_aliases(info.module.tree)
        for node in function_body_walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            message = _blocking_call_message(node, aliases)
            if message is not None:
                out.append(
                    Violation(
                        "R4",
                        "sim-safety",
                        rel,
                        node.lineno,
                        f"{message} on the simulation thread "
                        f"(via {_via(reach[qname])}); simulation callbacks "
                        "must not block — schedule() a delay or move I/O "
                        "out of the event loop",
                    )
                )
    return out


def _blocking_call_message(
    node: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    if isinstance(node.func, ast.Name) and node.func.id in _R4_BLOCKING_BUILTINS:
        return f"{node.func.id}() call"
    dotted = _dotted(node.func, aliases)
    if dotted is None:
        return None
    if dotted in _R4_BLOCKING_CALLS:
        return f"{dotted}() call"
    if dotted.split(".")[0] in _R4_BLOCKING_MODULES:
        return f"{dotted}() call"
    return None


def _is_spans_open(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "open"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "spans"
    if isinstance(receiver, ast.Name):
        return receiver.id == "spans"
    return False


def _check_span_pairing(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    out: List[Violation] = []
    for module in model.modules:
        if module.relpath in config.span_exempt:
            continue
        opens = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call) and _is_spans_open(node)
        ]
        if not opens:
            continue
        parents = _parent_map(module.tree)
        bound: Dict[str, int] = {}
        for call in opens:
            binding, ok = _span_binding(call, parents)
            if not ok:
                out.append(
                    Violation(
                        "R4",
                        "sim-safety",
                        module.relpath,
                        call.lineno,
                        "spans.open(...) result is discarded; the span can "
                        "never be closed and will stay open forever",
                    )
                )
            elif binding is not None:
                bound.setdefault(binding, call.lineno)
        closed = _span_close_credits(module.tree)
        for name, lineno in sorted(bound.items()):
            if name not in closed:
                out.append(
                    Violation(
                        "R4",
                        "sim-safety",
                        module.relpath,
                        lineno,
                        f"span stored under {name!r} is opened here but "
                        "never .close()d anywhere in this module",
                    )
                )
    return out


def _span_binding(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> Tuple[Optional[str], bool]:
    """Where does this ``spans.open`` result land?

    Returns ``(binding-name or None, ok)``; *ok* False means the value
    is discarded outright.
    """
    node: ast.AST = call
    parent = parents.get(node)
    # Unwind chained-method expressions like spans.open(...).bind(...);
    # stop at argument positions (a consumer owns the span there).
    while True:
        if isinstance(parent, ast.Attribute) and parent.value is node:
            node, parent = parent, parents.get(parent)
        elif isinstance(parent, ast.Call) and parent.func is node:
            node, parent = parent, parents.get(parent)
        else:
            break
    call = node  # type: ignore[assignment]
    if isinstance(parent, ast.Expr):
        return None, False
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        targets = (
            parent.targets if isinstance(parent, ast.Assign) else [parent.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute):
                return target.attr, True
            if isinstance(target, ast.Name):
                return target.id, True
            if isinstance(target, ast.Subscript):
                key = _subscript_key(target)
                if key is not None:
                    return key, True
        return None, True
    if isinstance(parent, ast.Dict):
        for key_expr, value in zip(parent.keys, parent.values):
            if value is call and isinstance(key_expr, ast.Constant):
                if isinstance(key_expr.value, str):
                    return key_expr.value, True
        return None, True
    # Argument position, return value, comparison...: some consumer owns
    # the span; pairing is that consumer's business.
    return None, True


def _subscript_key(node: ast.Subscript) -> Optional[str]:
    sl = node.slice
    if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
        return sl.value
    return None


def _span_close_credits(tree: ast.Module) -> Set[str]:
    """Names (attributes, dict keys, locals) on which ``.close(`` is
    called somewhere in the module, following one level of local-alias
    indirection (``span = ho["span"]; span.close()`` credits ``span``
    the key and the local)."""
    credits: Set[str] = set()
    for fn in _functions(tree):
        aliases: Dict[str, Set[str]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    sources = _alias_sources(node.value)
                    if sources:
                        aliases.setdefault(target.id, set()).update(sources)
            elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                if isinstance(node.iter, (ast.Tuple, ast.List)):
                    for element in node.iter.elts:
                        sources = _alias_sources(element)
                        aliases.setdefault(node.target.id, set()).update(sources)
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Attribute):
                credits.add(receiver.attr)
            elif isinstance(receiver, ast.Name):
                credits.add(receiver.id)
                credits.update(aliases.get(receiver.id, ()))
            elif isinstance(receiver, ast.Subscript):
                key = _subscript_key(receiver)
                if key is not None:
                    credits.add(key)
    return credits


def _alias_sources(expr: ast.expr) -> Set[str]:
    """Attribute / key names *expr* reads a span from."""
    out: Set[str] = set()
    if isinstance(expr, ast.Attribute):
        out.add(expr.attr)
    elif isinstance(expr, ast.Subscript):
        key = _subscript_key(expr)
        if key is not None:
            out.add(key)
    elif isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in ("get", "pop"):
            if expr.args and isinstance(expr.args[0], ast.Constant):
                if isinstance(expr.args[0].value, str):
                    out.add(expr.args[0].value)
    return out


# ----------------------------------------------------------------------
# R5 — packet field hygiene
# ----------------------------------------------------------------------
def check_packet_hygiene(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    out: List[Violation] = []
    for site in model.call_sites:
        fields = model.packet_fields(site.class_name)
        if fields is None:
            continue  # declaration not statically resolvable
        if any(kw.arg is None for kw in site.call.keywords):
            continue  # **splat: values unknown
        allowed = fields | {"_payload"}
        for kw in site.call.keywords:
            if kw.arg not in allowed:
                out.append(
                    Violation(
                        "R5",
                        "packet-hygiene",
                        site.module.relpath,
                        site.lineno,
                        f"{site.class_name}({kw.arg}=...): {kw.arg!r} is not "
                        f"a declared field (declared: "
                        f"{', '.join(sorted(fields)) or 'none'})",
                    )
                )
        if len(site.call.args) > 1:
            out.append(
                Violation(
                    "R5",
                    "packet-hygiene",
                    site.module.relpath,
                    site.lineno,
                    f"{site.class_name}(...) takes at most one positional "
                    "argument (the payload); fields must be keywords",
                )
            )
    return out


# ----------------------------------------------------------------------
# Shared lock-detection helper (R6, R7)
# ----------------------------------------------------------------------
def _last_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _lock_acquisitions(fn: ast.AST) -> List[Tuple[str, int]]:
    """``(lock-name, line)`` for every lock acquisition in a function
    body: ``with <...lock>`` blocks and explicit ``.acquire()`` calls."""
    out: List[Tuple[str, int]] = []
    for node in function_body_walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                name = _last_name(item.context_expr)
                if name is not None and "lock" in name.lower():
                    out.append((name, node.lineno))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            name = _last_name(node.func.value)
            if name is not None:
                out.append((name, node.lineno))
    return out


# ----------------------------------------------------------------------
# R6 — thread-boundary safety (scrape thread)
# ----------------------------------------------------------------------
#: Metric reads that mutate internal state (sorted-cache fills,
#: create-on-access) and are therefore unsafe from the scrape thread;
#: each has a peek_* / snapshot-view counterpart that is safe.
_R6_MUTATING_METRIC_READS = {
    "integral": "peek_integral()",
    "time_average": "peek_time_average()",
    "quantile": "summary() on a copied snapshot",
    "counter": "the published snapshot",
    "gauge": "the published snapshot",
    "histogram": "the published snapshot",
}


def check_thread_boundary(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    """Scrape-thread code reads published snapshots; it never writes
    shared state, never takes mutating metric reads, and never shares a
    lock with the simulation thread (the publish boundary is a single
    GIL-atomic attribute swap — lock-free by design)."""
    out: List[Violation] = []
    graph = model.call_graph()
    domains = _domains(model, config)
    reach = domains.members(ThreadDomains.SCRAPE)
    if not reach:
        return out

    sim_locks: Set[str] = set()
    for qname in domains.members(ThreadDomains.SIM):
        for name, _ in _lock_acquisitions(graph.functions[qname].node):
            sim_locks.add(name)

    for qname in sorted(reach):
        info = graph.functions[qname]
        rel = info.module.relpath
        via = _via(reach[qname])
        # The handler instance itself is per-request (one per
        # connection), so its own attributes are private; anything else
        # a scrape function can see is shared with the sim thread.
        self_is_private = info.class_name is not None and any(
            model.derives_from(info.class_name, b)
            for b in config.scrape_handler_bases
        )
        for node in function_body_walk(info.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                root_is_self = (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                )
                if root_is_self and self_is_private:
                    continue
                owner = _last_name(target.value) or "<expr>"
                out.append(
                    Violation(
                        "R6",
                        "thread-boundary",
                        rel,
                        node.lineno,
                        f"scrape-thread write to {owner}.{target.attr} "
                        f"(via {via}); the scrape side must treat "
                        "everything it can reach as an immutable snapshot",
                    )
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _R6_MUTATING_METRIC_READS
            ):
                safe = _R6_MUTATING_METRIC_READS[node.func.attr]
                out.append(
                    Violation(
                        "R6",
                        "thread-boundary",
                        rel,
                        node.lineno,
                        f".{node.func.attr}() is a mutating metric read "
                        f"on the scrape thread (via {via}); read "
                        f"{safe} instead",
                    )
                )
        for name, line in _lock_acquisitions(info.node):
            if name in sim_locks:
                out.append(
                    Violation(
                        "R6",
                        "thread-boundary",
                        rel,
                        line,
                        f"lock {name!r} is acquired on both sides of the "
                        f"publish boundary (scrape side via {via}); the "
                        "ServeState swap is lock-free by design — a "
                        "shared lock lets a slow scrape stall the "
                        "simulation thread",
                    )
                )
    return out


# ----------------------------------------------------------------------
# R7 — signal-handler safety
# ----------------------------------------------------------------------
#: Builtins whose call allocates or walks arbitrary amounts of data; a
#: signal handler interrupting the VM mid-allocation must not re-enter.
_R7_ALLOC_BUILTINS = {
    "sorted",
    "list",
    "dict",
    "set",
    "tuple",
    "frozenset",
    "repr",
    "format",
}
_R7_IO_BUILTINS = {"print", "open", "input"}
_R7_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "error",
    "exception",
    "critical",
    "log",
}


def check_signal_safety(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    """Functions reachable from a ``signal.signal`` registration run at
    arbitrary interpreter boundaries; they may only set flags or
    enqueue.  Locks deadlock against the interrupted holder, allocation
    re-enters the allocator, and the only safe I/O is ``os.write``."""
    out: List[Violation] = []
    graph = model.call_graph()
    domains = _domains(model, config)
    reach = domains.members(ThreadDomains.SIGNAL)

    for qname in sorted(reach):
        info = graph.functions[qname]
        rel = info.module.relpath
        via = _via(reach[qname])

        def add(
            line: int, what: str, why: str, rel: str = rel, via: str = via
        ) -> None:
            out.append(
                Violation(
                    "R7",
                    "signal-safety",
                    rel,
                    line,
                    f"{what} in a signal handler (via {via}); {why}",
                )
            )

        for name, line in _lock_acquisitions(info.node):
            add(
                line,
                f"lock {name!r} acquired",
                "a handler interrupting the lock holder deadlocks — "
                "set a flag instead",
            )
        aliases = _import_aliases(info.module.tree)
        for node in function_body_walk(info.node):
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                add(
                    node.lineno,
                    "comprehension",
                    "handlers may only set flags or enqueue — "
                    "allocation can run at any interpreter boundary",
                )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, aliases)
            if dotted == "os.write":
                continue  # the one async-signal-safe write
            if isinstance(node.func, ast.Name):
                fname = node.func.id
                if fname in _R7_ALLOC_BUILTINS:
                    add(
                        node.lineno,
                        f"{fname}() call",
                        "handlers may only set flags or enqueue — "
                        "allocation can run at any interpreter boundary",
                    )
                elif fname in _R7_IO_BUILTINS:
                    add(
                        node.lineno,
                        f"{fname}() call",
                        "the only safe I/O in a handler is os.write to "
                        "a pre-opened fd",
                    )
            elif isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if dotted is not None and (
                    dotted in _R4_BLOCKING_CALLS
                    or dotted.split(".")[0] in _R4_BLOCKING_MODULES
                ):
                    add(
                        node.lineno,
                        f"{dotted}() call",
                        "handlers must never block or touch the network",
                    )
                elif attr in _R7_LOG_METHODS or attr == "write":
                    add(
                        node.lineno,
                        f".{attr}() call",
                        "logging and buffered writes allocate and take "
                        "locks; the only safe I/O is os.write",
                    )
    return out


# ----------------------------------------------------------------------
# R8 — shard / worker-process safety
# ----------------------------------------------------------------------
_R8_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "Counter",
    "OrderedDict",
    "deque",
}
_R8_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "update",
    "setdefault",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}


def _is_mutable_literal(expr: ast.expr) -> bool:
    if isinstance(
        expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(expr, ast.Call):
        name = base_name(expr.func)
        return name in _R8_MUTABLE_FACTORIES
    return False


def check_shard_safety(
    model: ProjectModel, config: LintConfig
) -> List[Violation]:
    """Sweep points (and future shard kernels) run in worker processes:
    each worker gets its own copy of every module global, fork/spawn
    pickles the submitted callable, and merge steps consume results
    from many processes.  Three failure shapes, three checks."""
    out: List[Violation] = []
    graph = model.call_graph()
    domains = _domains(model, config)
    worker = domains.members(ThreadDomains.WORKER)

    # (a) Module-level mutable globals mutated from worker-process code:
    # the mutation lands in one worker's copy and silently diverges.
    mutable_globals: Dict[str, Set[str]] = {}
    for module in model.modules:
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable_globals.setdefault(
                        module.relpath, set()
                    ).add(target.id)

    for qname in sorted(worker):
        info = graph.functions[qname]
        rel = info.module.relpath
        globs = mutable_globals.get(rel)
        if not globs:
            continue
        declared_global: Set[str] = set()
        for node in function_body_walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        via = _via(worker[qname])
        for node in function_body_walk(info.node):
            hit = _global_mutation(node, globs, declared_global)
            if hit is None:
                continue
            name, how = hit
            out.append(
                Violation(
                    "R8",
                    "shard-safety",
                    rel,
                    node.lineno,
                    f"module global {name!r} {how} in worker-process "
                    f"code (via {via}); each sweep worker mutates its "
                    "own copy — pass state in and return results out",
                )
            )

    # (b) Unordered iteration inside cross-process merge helpers: the
    # merged result must not depend on which worker finished first.
    for qname in sorted(graph.functions):
        info = graph.functions[qname]
        if "merge" not in info.name:
            continue
        for node in function_body_walk(info.node):
            if isinstance(node, ast.For):
                label = _unordered_iter_label(node.iter)
                if label is not None:
                    out.append(
                        Violation(
                            "R8",
                            "shard-safety",
                            info.module.relpath,
                            node.lineno,
                            f"iteration over {label} inside cross-process "
                            f"merge {info.label}; merge inputs must be "
                            "deterministically ordered (sorted()) so the "
                            "result is independent of worker completion "
                            "order",
                        )
                    )

    # (c) Unpicklable callables handed to a worker pool.
    for site in graph.registrations:
        if site.kind not in ("submit", "sweep"):
            continue
        arg = site.callable_arg
        if arg is None:
            continue
        kind, target = graph.resolve_callable_ref(
            arg, site.module, site.owner
        )
        if kind == "lambda":
            out.append(
                Violation(
                    "R8",
                    "shard-safety",
                    site.module.relpath,
                    site.lineno,
                    "lambda submitted to a worker pool; lambdas cannot "
                    "be pickled across the process boundary — use a "
                    "module-level function",
                )
            )
        elif kind == "nested":
            label = target.label if target is not None else "<local>"
            out.append(
                Violation(
                    "R8",
                    "shard-safety",
                    site.module.relpath,
                    site.lineno,
                    f"locally defined function {label!r} submitted to a "
                    "worker pool; nested functions cannot be pickled "
                    "across the process boundary — use a module-level "
                    "function",
                )
            )
    return out


def _global_mutation(
    node: ast.AST, globs: Set[str], declared_global: Set[str]
) -> Optional[Tuple[str, str]]:
    """``(name, how)`` when *node* mutates a module-level mutable."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in globs
            and node.func.attr in _R8_MUTATOR_METHODS
        ):
            return receiver.id, f"mutated via .{node.func.attr}()"
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in globs
        ):
            return target.value.id, "item-assigned"
        if (
            isinstance(target, ast.Name)
            and target.id in globs
            and target.id in declared_global
        ):
            return target.id, "rebound via `global`"
    return None


# ----------------------------------------------------------------------
# Registry and runner
# ----------------------------------------------------------------------
RULES: Dict[str, Tuple[str, Callable[[ProjectModel, LintConfig], List[Violation]]]] = {
    "R1": ("determinism", check_determinism),
    "R2": ("dispatch", check_dispatch),
    "R3": ("flow-conformance", check_flow_conformance),
    "R4": ("sim-safety", check_sim_safety),
    "R5": ("packet-hygiene", check_packet_hygiene),
    "R6": ("thread-boundary", check_thread_boundary),
    "R7": ("signal-safety", check_signal_safety),
    "R8": ("shard-safety", check_shard_safety),
}

#: Exit-code bit per rule: a run's exit code is the OR of the bits of
#: every rule with at least one unsuppressed violation.  Bit 32 is
#: reserved for parse errors (see the CLI), which is why R6 jumps to 64.
RULE_BITS = {
    "R1": 1,
    "R2": 2,
    "R3": 4,
    "R4": 8,
    "R5": 16,
    "R6": 64,
    "R7": 128,
    "R8": 256,
}


def run_rules(
    model: ProjectModel, config: Optional[LintConfig] = None
) -> List[Violation]:
    config = config or LintConfig()
    selected = config.rules or tuple(RULES)
    out: List[Violation] = []
    for rule_id in selected:
        if rule_id not in RULES:
            raise ValueError(f"unknown rule {rule_id!r} (have {sorted(RULES)})")
        _, check = RULES[rule_id]
        out.extend(check(model, config))
    out.sort(key=lambda v: (v.file, v.line, v.rule, v.message))
    # Number repeats of the same (rule, file, message) triple in line
    # order so every violation fingerprints uniquely.
    counts: Dict[Tuple[str, str, str], int] = {}
    final: List[Violation] = []
    for violation in out:
        key = (violation.rule, violation.file, violation.message)
        nth = counts.get(key, 0)
        counts[key] = nth + 1
        if nth:
            violation = dataclasses.replace(violation, occurrence=nth)
        final.append(violation)
    return final
