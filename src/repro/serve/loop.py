"""The serve run loop: paced slices, live publication, graceful drain.

:class:`ServeLoop` owns the sequencing of a live run:

1. **serving** — ``sim.run_paced`` executes quantum-sized sim-time
   slices at full speed; between slices the loop publishes a telemetry
   view (metrics snapshot + status + alerts) to the scrape endpoint and
   lets the :class:`~repro.serve.pacer.Pacer` sleep the wall clock into
   step.  Pacing lives entirely outside the kernel, so the event
   sequence is byte-identical to a batch run of the same seed/workload.
2. **draining** — on duration expiry or :meth:`request_stop` (SIGINT/
   SIGTERM), the workload stops admitting and the loop keeps pacing
   until every in-flight call completes (bounded by ``drain_timeout``).
   A second stop request skips the drain.
3. **stopped** — a final view is published; artefact flushing and exit
   codes are the CLI's job.

Because the drain is the same code under every rate, a paced serve run
and an unpaced (``rate=0``) comparator run with the same quantum finish
with identical final metrics — the property the integration tests pin.
(The quantum is part of the run's definition: the drain completes on a
quantum boundary, so comparator runs must share it; the *rate* is what
never leaks into the simulation.)
"""

from __future__ import annotations

from typing import Any, Optional

from repro.serve.alerts import AlertManager
from repro.serve.pacer import Pacer
from repro.serve.state import ServeState


class ServeLoop:
    """Drives one simulator + open-loop workload as a live service."""

    def __init__(
        self,
        sim: Any,
        workload: Any,
        pacer: Pacer,
        state: Optional[ServeState] = None,
        alerts: Optional[AlertManager] = None,
        recorder: Optional[Any] = None,
        duration: Optional[float] = None,
        quantum: float = 0.25,
        drain_timeout: float = 60.0,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum!r}")
        if duration is None and not pacer.realtime:
            raise ValueError(
                "an unpaced (rate=0) serve loop needs a duration: with "
                "no wall clock to wait on it would spin the sim forever"
            )
        self.sim = sim
        self.workload = workload
        self.pacer = pacer
        self.state = state if state is not None else ServeState()
        self.alerts = alerts
        #: Flight recorder armed on ``sim`` (duck-typed: anything with
        #: ``flush``/``bundles``/``last_trigger``/``to_payload``).
        self.recorder = recorder
        self.duration = duration
        self.quantum = quantum
        self.drain_timeout = drain_timeout
        self.phase = "starting"
        #: True once the drain completed with no in-flight calls left.
        self.drained = False
        self._stop_requested = False
        self._hard_stop = False
        self._last_wall = 0.0
        self._last_events = 0

    # ------------------------------------------------------------------
    # Control (signal-handler safe: only sets flags)
    # ------------------------------------------------------------------
    def request_stop(self, *_args: Any) -> None:
        """First call: drain gracefully.  Second call: stop hard."""
        if self._stop_requested:
            self._hard_stop = True
        self._stop_requested = True
        # Breaks out of the current slice after the in-flight event.
        self.sim.stop()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> "ServeLoop":
        sim = self.sim
        self.phase = "serving"
        self.pacer.start(sim.now)
        self.workload.start()
        end = None if self.duration is None else sim.now + self.duration
        sim.run_paced(end, self.quantum, self._serve_hook)
        self.phase = "draining"
        self.workload.stop_admitting()
        if not self._hard_stop and self.workload.active > 0:
            drain_end = sim.now + self.drain_timeout
            sim.run_paced(drain_end, self.quantum, self._drain_hook)
        self.workload.stop()
        self.drained = self.workload.active == 0
        self.phase = "stopped"
        if self.recorder is not None:
            # Drain is over: finalize any in-flight incident capture so
            # the final published view (and /incidents) includes it.
            self.recorder.flush()
        self._publish()
        return self

    def _serve_hook(self, sim: Any) -> Any:
        self._publish()
        if self._stop_requested:
            return False
        self.pacer.pace(sim.now)
        return None

    def _drain_hook(self, sim: Any) -> Any:
        self._publish()
        if self._hard_stop or self.workload.active == 0:
            return False
        self.pacer.pace(sim.now)
        return None

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _publish(self) -> None:
        """Build and atomically publish a complete telemetry view."""
        sim = self.sim
        wall = self.pacer.wall_elapsed()
        events = sim.events_executed
        wall_delta = wall - self._last_wall
        event_rate = (
            (events - self._last_events) / wall_delta
            if wall_delta > 0 else 0.0
        )
        self._last_wall = wall
        self._last_events = events
        status = {
            "phase": self.phase,
            "sim_time": sim.now,
            "wall_runtime": wall,
            "wall_lag": self.pacer.lag,
            "rate": self.pacer.rate,
            "events_executed": events,
            "event_rate": event_rate,
            "pending_events": sim.pending_events,
            "active_calls": self.workload.active,
            "open_spans": len(sim.spans.open_spans()),
            "workload": self.workload.progress_line(),
        }
        incidents = None
        if self.recorder is not None:
            status["incidents_captured"] = len(self.recorder.bundles)
            status["last_incident"] = self.recorder.last_trigger()
            incidents = self.recorder.to_payload()
        alerts = self.alerts.to_payload() if self.alerts is not None else None
        self.state.publish(sim.metrics.snapshot(), status, alerts, incidents)
