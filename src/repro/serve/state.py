"""The shared view between the simulation thread and the scrape thread.

Serve mode runs the simulation on the main thread and the HTTP endpoint
on daemon threads; :class:`ServeState` is the only object both sides
touch.  The simulation thread *publishes* a complete view — metrics
snapshot, status heartbeat, alert payload — as one plain-data dict per
pacing slice; publication is a single attribute store, which is atomic
under the GIL, so a scrape thread always reads either the previous view
or the new one, never a half-built mixture.  Scrape handlers render
exclusively from the published view and never reach into live
simulator state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.obs.prom import render_prometheus


class ServeState:
    """Atomically published telemetry view of an in-progress run."""

    def __init__(self) -> None:
        # One dict, swapped wholesale on publish.  Never mutate in
        # place: handlers on other threads hold references to it.
        self._view: Dict[str, Any] = {
            "snapshot": None,
            "status": {"phase": "starting"},
            "alerts": {"alerts": [], "transitions": []},
            "incidents": {"captured": 0, "dropped": 0,
                          "capturing": False, "incidents": []},
        }

    def publish(
        self,
        snapshot: Dict[str, Any],
        status: Dict[str, Any],
        alerts: Optional[Dict[str, Any]] = None,
        incidents: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Swap in a freshly built view (simulation thread only)."""
        view = {
            "snapshot": snapshot,
            "status": status,
            "alerts": alerts if alerts is not None
            else self._view["alerts"],
            "incidents": incidents if incidents is not None
            else self._view["incidents"],
        }
        self._view = view

    @property
    def view(self) -> Dict[str, Any]:
        """The latest published view (safe from any thread)."""
        return self._view

    # -- renderings used by the HTTP handler ---------------------------
    def render_metrics(self) -> str:
        """Prometheus text exposition of the latest published snapshot."""
        snapshot = self._view["snapshot"]
        if snapshot is None:
            return "# no snapshot published yet\n"
        return render_prometheus(snapshot)

    def status_json(self) -> str:
        return json.dumps(self._view["status"], sort_keys=True) + "\n"

    def alerts_json(self) -> str:
        return json.dumps(self._view["alerts"], sort_keys=True) + "\n"

    def incidents_json(self) -> str:
        return json.dumps(self._view["incidents"], sort_keys=True) + "\n"
