"""``python -m repro serve`` — run the simulation as a live service.

Builds a GSM/vGPRS topology, pre-registers a population, then drives an
open-loop Poisson workload (:class:`repro.core.workload
.OpenLoopWorkload`) through the paced run loop while a stdlib HTTP
endpoint serves ``/metrics``, ``/status``, ``/alerts`` and
``/incidents`` from published snapshots.  SIGINT/SIGTERM drain gracefully: admission stops, active
calls complete, artefacts flush, and the exit code carries the verdict:

* ``0`` — clean run, no alert ever fired, all ``--slo`` rules pass;
* ``2`` — alert(s) fired during the run but all resolved by exit;
* ``1`` — alert firing/pending at exit, SLO verdict failure, or an
  unfinished drain.

The whole serve pipeline is deterministic in sim time: the same seed,
profile and duration produce byte-identical final metrics whether the
run is paced in real time, paced fast (``--rate 50``), or unpaced
(``--rate 0``).
"""

from __future__ import annotations

import argparse
import signal
import sys
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.core import scenarios
from repro.core.workload import (
    DiurnalProfile,
    OpenLoopWorkload,
    build_classic_population,
    build_population,
)
from repro.obs import ObsSession
from repro.obs.slo import parse_slo_rules
from repro.serve.alerts import AlertManager
from repro.serve.httpd import TelemetryServer
from repro.serve.loop import ServeLoop
from repro.serve.pacer import Pacer
from repro.serve.state import ServeState


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="run the vGPRS simulation as a live, scrapeable "
                    "service under open-loop load",
    )
    run = parser.add_argument_group("run")
    run.add_argument("--duration", type=float, default=None, metavar="SECS",
                     help="simulated seconds to serve before draining "
                          "(default: until SIGINT/SIGTERM)")
    run.add_argument("--rate", type=float, default=1.0, metavar="X",
                     help="simulated seconds per wall second; 0 = unpaced "
                          "batch with a live endpoint (default: 1.0)")
    run.add_argument("--quantum", type=float, default=0.25, metavar="SECS",
                     help="sim-time slice between pacing/publish points "
                          "(default: 0.25)")
    run.add_argument("--drain-timeout", type=float, default=60.0,
                     metavar="SECS",
                     help="max simulated seconds to wait for active calls "
                          "on shutdown (default: 60)")
    run.add_argument("--seed", type=int, default=0,
                     help="master RNG seed (default: 0)")

    topo = parser.add_argument_group("topology and load")
    topo.add_argument("--topology", choices=("vgprs", "classic"),
                      default="vgprs",
                      help="vGPRS network (Figures 3-6) or the classic "
                           "tromboning GSM topology (Figure 7)")
    topo.add_argument("--pairs", type=int, default=8, metavar="N",
                      help="provisioned caller/callee pairs (default: 8)")
    topo.add_argument("--calls-per-hour", type=float, default=120.0,
                      metavar="CPH",
                      help="base offered rate (default: 120)")
    topo.add_argument("--peak-calls-per-hour", type=float, default=None,
                      metavar="CPH",
                      help="busy-hour peak rate (profile shapes that ramp; "
                           "default: 4x the base)")
    topo.add_argument("--profile-shape",
                      choices=("flat", "busy-hour", "ramp"), default="flat",
                      help="diurnal arrival-rate shape (default: flat)")
    topo.add_argument("--profile-period", type=float, default=240.0,
                      metavar="SECS",
                      help="compressed-day period for busy-hour/ramp "
                           "shapes (default: 240)")
    topo.add_argument("--avalanche-at", type=float, default=None,
                      metavar="SECS",
                      help="trigger a mass re-registration avalanche at "
                           "this sim time")
    topo.add_argument("--avalanche-spread", type=float, default=2.0,
                      metavar="SECS",
                      help="window over which avalanche re-attaches spread "
                           "(default: 2.0)")
    topo.add_argument("--hold-min", type=float, default=2.0, metavar="SECS",
                      help="minimum call hold time (default: 2.0)")
    topo.add_argument("--hold-max", type=float, default=8.0, metavar="SECS",
                      help="maximum call hold time (default: 8.0)")
    topo.add_argument("--mt-fraction", type=float, default=0.4, metavar="P",
                      help="probability an arrival is mobile-terminated "
                           "(vgprs topology; default: 0.4)")
    topo.add_argument("--talk", action="store_true",
                      help="generate voice media during calls")
    topo.add_argument("--media", choices=("events", "fluid"),
                      default="fluid",
                      help="voice media model when --talk (default: fluid)")
    topo.add_argument("--faults", metavar="PLAN",
                      help="fault plan ('at T link A--B down for D', "
                           "';'-separated, @FILE, or JSON) injected into "
                           "the live topology; sim-time scheduled, so the "
                           "paced run and its unpaced twin see identical "
                           "faults")

    live = parser.add_argument_group("endpoint and alerting")
    live.add_argument("--host", default="127.0.0.1",
                      help="bind address (default: 127.0.0.1)")
    live.add_argument("--port", type=int, default=9464,
                      help="bind port; 0 = ephemeral (default: 9464)")
    live.add_argument("--no-http", action="store_true",
                      help="run the loop without the HTTP endpoint "
                           "(batch comparator / CI)")
    live.add_argument("--alert", metavar="RULES",
                      help="alert rules (SLO grammar, ';'-separated, or "
                           "@FILE) driven through the live "
                           "pending/firing/resolved lifecycle")
    live.add_argument("--alert-for", type=int, default=2, metavar="N",
                      help="consecutive bad buckets before an alert fires "
                           "(default: 2)")
    live.add_argument("--alert-clear", type=int, default=2, metavar="N",
                      help="consecutive good buckets before a firing alert "
                           "resolves (default: 2)")

    obs = parser.add_argument_group("observability artefacts")
    obs.add_argument("--trace-out", metavar="FILE",
                     help="write a JSONL trace (spans + events) to FILE")
    obs.add_argument("--metrics-out", metavar="FILE",
                     help="write the final Prometheus snapshot to FILE")
    obs.add_argument("--series-out", metavar="FILE",
                     help="write the metric time series (JSON) to FILE")
    obs.add_argument("--series-interval", type=float, default=1.0,
                     metavar="SECS",
                     help="series bucket width — also the alert "
                          "evaluation cadence (default: 1.0)")
    obs.add_argument("--timeline-out", metavar="FILE",
                     help="write a Chrome-trace-event timeline to FILE")
    obs.add_argument("--heartbeat", type=float, default=None, metavar="SECS",
                     help="print a progress line to stderr every SECS "
                          "simulated seconds")
    obs.add_argument("--profile", action="store_true",
                     help="profile the kernel and print a per-event table")
    obs.add_argument("--slo", metavar="RULES",
                     help="SLO rules judged with batch (sticky-fail) "
                          "semantics at shutdown, alongside the live "
                          "--alert lifecycle")
    obs.add_argument("--incident-dir", metavar="DIR",
                     help="write flight-recorder incident bundles "
                          "(captured when an alert leaves ok, a fault "
                          "fires, or the exit code is nonzero) to DIR "
                          "for 'python -m repro analyze'")
    return parser


def _read_rules(text: Optional[str]) -> Optional[str]:
    if text and text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as fh:
            return fh.read()
    return text


def build_profile(args: argparse.Namespace) -> DiurnalProfile:
    base = args.calls_per_hour
    peak = args.peak_calls_per_hour
    if peak is None:
        peak = base * 4.0
    extras = {
        "avalanche_at": args.avalanche_at,
        "avalanche_spread": args.avalanche_spread,
    }
    if args.profile_shape == "busy-hour":
        return DiurnalProfile.busy_hour(
            base, peak, period=args.profile_period, **extras
        )
    if args.profile_shape == "ramp":
        return DiurnalProfile.ramp(
            base, peak, duration=args.profile_period, **extras
        )
    return DiurnalProfile.flat(base, **extras)


@dataclass
class ServeRun:
    """Everything :func:`build_serve_run` wired together."""

    nw: Any
    workload: OpenLoopWorkload
    obs: ObsSession
    alerts: Optional[AlertManager]
    state: ServeState
    loop: ServeLoop

    @property
    def sim(self) -> Any:
        return self.nw.sim


def build_serve_run(
    args: argparse.Namespace,
    echo: Callable[[str], None] = print,
) -> ServeRun:
    """Build topology, population, workload, observability and loop —
    shared by the CLI and the batch-comparator integration tests, so a
    paced service and its unpaced twin run the identical pipeline."""
    if args.topology == "classic":
        from repro.core.baseline_gsm import build_classic_roaming_network

        nw: Any = build_classic_roaming_network(seed=args.seed)
        nw.sim.run(until=0.5)
        pairs = build_classic_population(nw, args.pairs)
    else:
        from repro.core.network import build_vgprs_network

        nw = build_vgprs_network(seed=args.seed)
        nw.sim.run(until=0.5)
        pairs = build_population(nw, args.pairs)
    for ms, _peer in pairs:
        scenarios.register_ms(nw, ms)

    profile = build_profile(args)
    workload = OpenLoopWorkload(
        nw=nw,
        pairs=pairs,
        profile=profile,
        hold_range=(args.hold_min, args.hold_max),
        mt_fraction=args.mt_fraction,
        talk=args.talk,
        media=args.media,
        classic=args.topology == "classic",
    )

    obs = ObsSession(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile=args.profile,
        heartbeat=args.heartbeat,
        series_out=args.series_out,
        series_interval=args.series_interval,
        timeline_out=args.timeline_out,
        slo=_read_rules(args.slo),
        force_series=True,
        incident_dir=getattr(args, "incident_dir", None),
    )
    obs.heartbeat_extra = workload.progress_line
    obs.watch(nw.sim, run="serve")
    recorder = obs.recorder_for(nw.sim)
    assert recorder is not None  # watch() always arms one

    fault_text = _read_rules(getattr(args, "faults", None))
    if fault_text:
        from repro.faults import apply_faults

        # Armed after watch() so the recorder sees FAULT_PLAN_ARMED and
        # can embed the plan in incident bundles.  Registration advanced
        # sim time past 0; the injector clamps already-past plan times
        # to "now", so short plans still fire.
        apply_faults(nw, fault_text)

    alerts: Optional[AlertManager] = None
    alert_text = _read_rules(args.alert)
    if alert_text:
        sampler = obs.sampler_for(nw.sim)
        assert sampler is not None  # force_series guarantees one
        alerts = AlertManager(
            parse_slo_rules(alert_text),
            for_windows=args.alert_for,
            clear_windows=args.alert_clear,
            log=echo,
        ).attach(sampler)
        recorder.attach_alerts(alerts)

    state = ServeState()
    loop = ServeLoop(
        sim=nw.sim,
        workload=workload,
        pacer=Pacer(rate=args.rate),
        state=state,
        alerts=alerts,
        recorder=recorder,
        duration=args.duration,
        quantum=args.quantum,
        drain_timeout=args.drain_timeout,
    )
    return ServeRun(nw=nw, workload=workload, obs=obs, alerts=alerts,
                    state=state, loop=loop)


def finish_serve_run(
    run: ServeRun, echo: Callable[[str], None] = print
) -> int:
    """Flush artefacts and fold SLO/alert/drain verdicts into the exit
    code (module docstring semantics)."""
    obs_code = run.obs.finish(echo)
    alert_code = run.alerts.exit_code() if run.alerts is not None else 0
    if run.alerts is not None:
        payload = run.alerts.to_payload()
        echo(
            f"alerts: {payload['transition_count']} transition(s); "
            + ", ".join(
                f"{a['name']}={a['state']}" for a in payload["alerts"]
            )
        )
    if not run.loop.drained:
        echo("drain incomplete: active calls remained at shutdown")
        return 1
    if alert_code == 1 or obs_code:
        return 1
    return alert_code


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    echo: Callable[[str], None] = lambda line: print(line, file=sys.stderr)
    run = build_serve_run(args, echo=echo)
    server: Optional[TelemetryServer] = None
    if not args.no_http:
        server = TelemetryServer(
            run.state, host=args.host, port=args.port
        ).start()
        host, port = server.address
        echo(f"serving telemetry on http://{host}:{port}/ "
             "(/metrics /status /alerts /incidents)")
    signal.signal(signal.SIGINT, run.loop.request_stop)
    signal.signal(signal.SIGTERM, run.loop.request_stop)
    try:
        run.loop.run()
    finally:
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        if server is not None:
            server.stop()
    echo(
        f"served {run.loop.sim.now:.1f} sim-s: "
        f"{run.workload.progress_line()} "
        f"(drained={'yes' if run.loop.drained else 'NO'})"
    )
    return finish_serve_run(run, echo=echo)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
