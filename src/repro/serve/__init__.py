"""Live service mode: wall-clock pacing, scrape endpoint, alerting.

``python -m repro serve`` runs the deterministic simulator as a
long-lived service: the :class:`~repro.serve.loop.ServeLoop` executes
quantum-sized sim-time slices at full speed and the
:class:`~repro.serve.pacer.Pacer` sleeps the wall clock into step
*between* slices, so pacing never enters the kernel and a seeded run
stays byte-identical to its batch twin.  Each slice publishes an atomic
telemetry view that :class:`~repro.serve.httpd.TelemetryServer` serves
over ``/metrics``, ``/status`` and ``/alerts``, while the
:class:`~repro.serve.alerts.AlertManager` drives SLO rules through a
live pending/firing/resolved lifecycle.
"""

from repro.serve.alerts import Alert, AlertManager
from repro.serve.httpd import TelemetryServer
from repro.serve.loop import ServeLoop
from repro.serve.pacer import Pacer
from repro.serve.state import ServeState

__all__ = [
    "Alert",
    "AlertManager",
    "Pacer",
    "ServeLoop",
    "ServeState",
    "TelemetryServer",
]
