"""Wall-clock pacing for live service mode.

This module is the *only* place in ``repro.serve`` (and, outside the
media fast path's lint zone, one of very few in the tree) that reads the
host clock — ``repro lint`` enforces that with the strict-clock zone
over ``serve/`` (see ``clock_allowed_paths``).  Everything else in
serve mode consumes sim time; the :class:`Pacer` alone maps sim seconds
onto wall seconds and sleeps out the difference between pacing slices.

Pacing never feeds back into the simulation: the kernel runs each
quantum at full speed and the pacer sleeps *between* slices, so a paced
run executes exactly the events a batch run executes, in exactly the
same order, whatever the ``--rate``.
"""

from __future__ import annotations

import time
from typing import Optional


class Pacer:
    """Maps simulated time onto the wall clock.

    Parameters
    ----------
    rate:
        Simulated seconds per wall second.  ``1.0`` is real time,
        ``10.0`` runs ten times faster than real time, and ``0`` means
        *unpaced* — :meth:`pace` never sleeps, which turns serve mode
        into a batch run with a live scrape endpoint.
    """

    def __init__(self, rate: float = 1.0) -> None:
        if rate < 0:
            raise ValueError(f"pacing rate must be >= 0, got {rate!r}")
        self.rate = rate
        #: Wall seconds the last :meth:`pace` call was behind schedule
        #: (0.0 whenever the pacer slept, i.e. the sim was on time).
        self.lag = 0.0
        self._origin_wall: Optional[float] = None
        self._origin_sim = 0.0

    @property
    def realtime(self) -> bool:
        """Whether :meth:`pace` actually sleeps."""
        return self.rate > 0

    def start(self, sim_now: float) -> None:
        """Anchor sim time *sim_now* to the current wall instant."""
        self._origin_wall = time.monotonic()
        self._origin_sim = sim_now

    def wall_elapsed(self) -> float:
        """Wall seconds since :meth:`start` (0.0 before it)."""
        if self._origin_wall is None:
            return 0.0
        return time.monotonic() - self._origin_wall

    def pace(self, sim_now: float) -> float:
        """Sleep until the wall clock catches up with *sim_now*.

        Returns the updated :attr:`lag`: positive when the simulation
        cannot keep up with the requested rate (the wall clock is ahead
        of the sim's schedule), ``0.0`` when the pacer slept.
        """
        if self._origin_wall is None:
            self.start(sim_now)
        if not self.realtime:
            return 0.0
        assert self._origin_wall is not None
        target = self._origin_wall + (sim_now - self._origin_sim) / self.rate
        ahead = target - time.monotonic()
        if ahead > 0:
            time.sleep(ahead)
            self.lag = 0.0
        else:
            self.lag = -ahead
        return self.lag
