"""Live alert lifecycle over SLO rules.

Batch runs judge SLO rules once, at the end, with sticky-fail
semantics (:meth:`repro.obs.slo.SloWatchdog.finalize`).  A service has
no end: serve mode instead re-judges every rule at each closed series
bucket and drives a Prometheus-style lifecycle per rule::

    ok -> pending -> firing -> resolved -> pending -> ...

A rule goes *pending* on its first bad bucket, *firing* after
``for_windows`` consecutive bad buckets, and *resolved* after
``clear_windows`` consecutive good buckets; a pending alert whose value
recovers before firing drops straight back to *ok* (no flap recorded).
All state advances on sim-time bucket boundaries only, so a seeded run
produces the identical transition log whether it is paced or batch.

Exit semantics for the drained shutdown: ``0`` when nothing ever fired,
``2`` when alerts fired but all resolved, ``1`` when any alert is still
firing (or pending) at exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.slo import SloRule, SloWatchdog

#: At most this many transitions are kept for ``/alerts`` (the counter
#: keeps running) — bounded memory over an arbitrarily long service.
MAX_TRANSITIONS = 200


@dataclass
class Alert:
    """Lifecycle state for one rule."""

    rule: SloRule
    state: str = "ok"
    value: float = 0.0
    #: Sim time of the last state transition.
    since: float = 0.0
    bad_streak: int = 0
    good_streak: int = 0
    #: Times this alert entered ``firing``.
    fired_count: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.rule.name,
            "rule": self.rule.source,
            "state": self.state,
            "value": self.value,
            "threshold": self.rule.threshold,
            "op": self.rule.op,
            "since": self.since,
            "fired_count": self.fired_count,
        }


class AlertManager:
    """Folds series buckets and steps each rule's alert lifecycle.

    Chain it onto an armed :class:`~repro.obs.series.SeriesSampler` with
    :meth:`attach`; any previously installed bucket hook (the batch SLO
    watchdog) keeps running first, so ``--slo`` verdicts and ``--alert``
    lifecycles coexist on one sampler.
    """

    def __init__(
        self,
        rules: List[SloRule],
        for_windows: int = 2,
        clear_windows: int = 2,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if for_windows < 1 or clear_windows < 1:
            raise ValueError(
                "for_windows and clear_windows must be >= 1, got "
                f"{for_windows!r}/{clear_windows!r}"
            )
        self.rules = list(rules)
        self.for_windows = for_windows
        self.clear_windows = clear_windows
        self.log = log
        self.alerts: List[Alert] = [Alert(rule=r) for r in rules]
        #: Bounded transition history, oldest first.
        self.transitions: List[Dict[str, Any]] = []
        #: Total transitions, including ones past the recording bound.
        self.transition_count = 0
        #: Called with each transition entry (the flight recorder hooks
        #: in here; a plain attribute, like ``TraceRecorder.sink``).
        self.on_transition: Optional[Callable[[Dict[str, Any]], None]] = None
        self._dog: Optional[SloWatchdog] = None

    def attach(self, sampler: Any) -> "AlertManager":
        """Evaluate on every bucket *sampler* closes (after whatever
        hook was already installed)."""
        self._dog = SloWatchdog(self.rules, start=sampler.started_at)
        for alert in self.alerts:
            alert.since = sampler.started_at
        previous = sampler.on_bucket

        def hook(s: Any, bucket: Dict[str, Any]) -> None:
            if previous is not None:
                previous(s, bucket)
            self.observe_bucket(bucket)

        sampler.on_bucket = hook
        return self

    def observe_bucket(self, bucket: Dict[str, Any]) -> None:
        """Fold one closed bucket and step every alert's lifecycle."""
        dog = self._dog
        if dog is None:
            self._dog = dog = SloWatchdog(self.rules)
        dog.push(bucket)
        t = float(bucket["t"])
        for alert in self.alerts:
            value = dog.current_value(alert.rule)
            alert.value = value
            if alert.rule.holds(value):
                self._step_good(alert, t)
            else:
                self._step_bad(alert, t)

    # ------------------------------------------------------------------
    def _step_bad(self, alert: Alert, t: float) -> None:
        alert.good_streak = 0
        alert.bad_streak += 1
        if alert.state in ("ok", "resolved"):
            self._transition(alert, "pending", t)
        if alert.state == "pending" and alert.bad_streak >= self.for_windows:
            alert.fired_count += 1
            self._transition(alert, "firing", t)

    def _step_good(self, alert: Alert, t: float) -> None:
        alert.bad_streak = 0
        if alert.state == "pending":
            # Recovered before the for-window elapsed: not a flap.
            self._transition(alert, "ok", t)
        elif alert.state == "firing":
            alert.good_streak += 1
            if alert.good_streak >= self.clear_windows:
                self._transition(alert, "resolved", t)

    def _transition(self, alert: Alert, to_state: str, t: float) -> None:
        entry = {
            "t": t,
            "alert": alert.rule.name,
            "from": alert.state,
            "to": to_state,
            "value": alert.value,
        }
        alert.state = to_state
        alert.since = t
        self.transition_count += 1
        if len(self.transitions) < MAX_TRANSITIONS:
            self.transitions.append(entry)
        hook = self.on_transition
        if hook is not None:
            hook(entry)
        if self.log is not None:
            self.log(
                f"[alert] t={t:.3f} {alert.rule.name}: "
                f"{entry['from']} -> {to_state} (value={alert.value:.6g}, "
                f"rule: {alert.rule.source})"
            )

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Plain data for ``/alerts`` (and the final report)."""
        return {
            "alerts": [a.to_dict() for a in self.alerts],
            "transitions": list(self.transitions),
            "transition_count": self.transition_count,
        }

    @property
    def ever_fired(self) -> bool:
        return any(a.fired_count for a in self.alerts)

    def exit_code(self) -> int:
        """``0`` nothing fired; ``2`` fired but resolved; ``1`` firing
        (or still pending) at exit."""
        if any(a.state in ("firing", "pending") for a in self.alerts):
            return 1
        return 2 if self.ever_fired else 0
