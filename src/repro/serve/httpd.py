"""The live telemetry endpoint: stdlib HTTP over published snapshots.

Three read-only routes, all rendered from the
:class:`~repro.serve.state.ServeState` view the simulation thread last
published:

* ``/metrics``   — Prometheus text exposition (scrapeable mid-run);
* ``/status``    — JSON heartbeat: sim time, wall lag, event rate, phase;
* ``/alerts``    — JSON alert lifecycle states plus recent transitions;
* ``/incidents`` — JSON summaries of captured incident bundles.

Handlers never touch the simulator, its registry, or the workload — the
view is plain data published atomically per pacing slice — so a scrape
can never observe a half-updated run nor perturb a deterministic one.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.serve.state import ServeState

#: Content type for Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INDEX = """\
repro serve telemetry
  /metrics    Prometheus text exposition of the latest snapshot
  /status     JSON heartbeat (sim time, wall lag, event rate, phase)
  /alerts     JSON alert lifecycle states and recent transitions
  /incidents  JSON summaries of captured incident bundles
"""


class _StateServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ServeState`."""

    daemon_threads = True
    state: ServeState


class _Handler(BaseHTTPRequestHandler):
    server: _StateServer

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        state = self.server.state
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._reply(200, PROM_CONTENT_TYPE, state.render_metrics())
        elif path == "/status":
            self._reply(200, "application/json", state.status_json())
        elif path == "/alerts":
            self._reply(200, "application/json", state.alerts_json())
        elif path == "/incidents":
            self._reply(200, "application/json", state.incidents_json())
        elif path == "/":
            self._reply(200, "text/plain; charset=utf-8", _INDEX)
        else:
            self._reply(404, "text/plain; charset=utf-8",
                        f"no such route: {path}\n")

    def _reply(self, code: int, ctype: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes are periodic; per-request stderr lines are noise.
        pass


class TelemetryServer:
    """Serves the telemetry routes on a daemon thread.

    Pass ``port=0`` to bind an ephemeral port (tests); :attr:`address`
    reports the actual bound ``(host, port)`` after :meth:`start`.
    """

    def __init__(
        self, state: ServeState, host: str = "127.0.0.1", port: int = 9464
    ) -> None:
        self.state = state
        self.host = host
        self.port = port
        self._server: Optional[_StateServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            return (self.host, self.port)
        addr = self._server.server_address
        return (str(addr[0]), int(addr[1]))

    def start(self) -> "TelemetryServer":
        if self._server is not None:
            return self
        server = _StateServer((self.host, self.port), _Handler)
        server.state = self.state
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
