"""Sweep-point workers for the parameterised experiments (E8/E9/E11).

Each function here evaluates one experiment at one parameter point,
building a fresh seeded simulator, so points are independent and safe to
fan out with :func:`repro.sim.sweep.run_sweep`.  They live in the
package (rather than in the benchmark modules) so that worker processes
can unpickle them by reference and so ``python -m repro sweep`` can run
the same sweeps from the command line.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core import scenarios
from repro.core.baseline_3gtr import build_3gtr_network
from repro.core.network import LatencyProfile, build_vgprs_network
from repro.errors import SimulationError
from repro.faults import apply_faults
from repro.media import install_fluid
from repro.obs.recorder import FlightRecorder
from repro.obs.series import SeriesSampler

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"

#: Bucket width for the per-worker time series.  Fixed (not a sweep
#: parameter) so every worker's series merges bucket-for-bucket and a
#: parallel sweep's merged series is byte-identical to a serial one.
SERIES_INTERVAL = 1.0


def _sample(nw) -> SeriesSampler:
    """Arm a time-series sampler on a worker's fresh network.  Sampling
    only reads the registry, so the seeded trace is unaffected."""
    return SeriesSampler(nw.sim, interval=SERIES_INTERVAL).start()


def _finish_series(sampler: SeriesSampler) -> Dict[str, Any]:
    sampler.stop(flush=True)
    return sampler.to_dict()


def _record(nw, sampler: SeriesSampler, run: str = "sweep") -> FlightRecorder:
    """Arm a flight recorder on a worker's network.  Armed *before*
    ``apply_faults`` so the recorder sees FAULT_PLAN_ARMED and captures
    incident bundles around the fault window."""
    recorder = FlightRecorder(nw.sim, run=run).arm()
    recorder.attach_sampler(sampler)
    return recorder


def _finish_recorder(recorder: FlightRecorder) -> List[Dict[str, Any]]:
    recorder.flush()
    return list(recorder.bundles)


# ----------------------------------------------------------------------
# E8 — call-setup latency vs. packet-core latency factor
# ----------------------------------------------------------------------
def _setup_path_delay(nw, place_call) -> float:
    t0 = nw.sim.now
    place_call()
    trace = nw.sim.trace
    assert nw.sim.run_until_true(
        lambda: trace.first("Q931_Call_Proceeding") is not None
        and trace.first("Q931_Call_Proceeding").time >= t0,
        timeout=60,
    )
    setups = trace.messages(name="Q931_Setup", since=t0)
    return setups[-1].time - setups[0].time


def _collect(
    snapshots: Optional[List[Dict[str, Any]]],
    nw,
    sampler: Optional[SeriesSampler] = None,
    recorder: Optional[FlightRecorder] = None,
) -> None:
    """Append the network's metrics snapshot — and its sampler's time
    series and its recorder's incident bundles — when a collector is
    given (sweep workers run in their own processes; only artefacts
    embedded in the result value can reach ``--metrics-out``/
    ``--series-out``/``--incident-dir``).  Snapshot, series and bundle
    dicts share the list; ``find_snapshots``/``find_series``/
    ``find_incidents`` tell them apart by shape."""
    if snapshots is not None:
        snapshots.append(nw.sim.metrics.snapshot())
        if sampler is not None:
            snapshots.append(_finish_series(sampler))
        if recorder is not None:
            snapshots.extend(_finish_recorder(recorder))


def vgprs_mt(
    factor: float,
    snapshots: Optional[List[Dict[str, Any]]] = None,
    faults: Optional[str] = None,
) -> float:
    """MT setup-path delay (caller's Q.931 Setup -> called endpoint) in
    vGPRS, where the PDP context is already activated."""
    nw = build_vgprs_network(latencies=LatencyProfile().scaled_core(factor))
    sampler = _sample(nw)
    recorder = _record(nw, sampler)
    apply_faults(nw, faults, strict=False)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
    term = nw.add_terminal("TERM1", TERM1)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 6.0)  # idle; vGPRS keeps the context
    nw.sim.trace.clear()
    delay = _setup_path_delay(nw, lambda: term.place_call(ms.msisdn))
    _collect(snapshots, nw, sampler, recorder)
    return delay


def tgtr_mt(
    factor: float,
    snapshots: Optional[List[Dict[str, Any]]] = None,
    faults: Optional[str] = None,
) -> float:
    """MT setup-path delay in the 3G TR 23.923 baseline, which must
    re-activate the PDP context per call arrival."""
    nw = build_3gtr_network(latencies=LatencyProfile().scaled_core(factor))
    sampler = _sample(nw)
    recorder = _record(nw, sampler)
    apply_faults(nw, faults, strict=False)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
    term = nw.add_terminal("TERM1", TERM1)
    nw.sim.run(until=0.5)
    ms.power_on()
    assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 6.0)  # idle; 3G TR tore the context down
    nw.sim.trace.clear()
    delay = _setup_path_delay(nw, lambda: term.place_call(ms.msisdn))
    _collect(snapshots, nw, sampler, recorder)
    return delay


def vgprs_mo_admission(
    factor: float,
    snapshots: Optional[List[Dict[str, Any]]] = None,
    faults: Optional[str] = None,
) -> float:
    """MO side: time from A_Setup at the VMSC to the ACF returning —
    immediate in vGPRS because the signalling context exists."""
    nw = build_vgprs_network(latencies=LatencyProfile().scaled_core(factor))
    sampler = _sample(nw)
    recorder = _record(nw, sampler)
    apply_faults(nw, faults, strict=False)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 6.0)
    since = nw.sim.now
    scenarios.call_ms_to_terminal(nw, ms, term)
    trace = nw.sim.trace
    a_setup = trace.messages(name="A_Setup", since=since)[0]
    acf = trace.messages(name="RAS_ACF", dst="VMSC", since=since)[0]
    _collect(snapshots, nw, sampler, recorder)
    return acf.time - a_setup.time


def tgtr_mo_admission(
    factor: float,
    snapshots: Optional[List[Dict[str, Any]]] = None,
    faults: Optional[str] = None,
) -> float:
    """MO side in 3G TR: PDP activation precedes the ARQ."""
    nw = build_3gtr_network(latencies=LatencyProfile().scaled_core(factor))
    sampler = _sample(nw)
    recorder = _record(nw, sampler)
    apply_faults(nw, faults, strict=False)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    ms.power_on()
    assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 6.0)
    since = nw.sim.now
    ms.place_call(term.alias)
    trace = nw.sim.trace
    assert nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=60)
    acf = trace.messages(name="RAS_ACF", since=since)[0]
    _collect(snapshots, nw, sampler, recorder)
    return acf.time - since


def setup_latency_point(
    factor: float, faults: Optional[str] = None
) -> Dict[str, Any]:
    """One E8 sweep point: all four setup-latency measurements at the
    given core-latency *factor*.  ``faults`` is a fault-plan text armed
    (non-strictly) on every per-measurement topology."""
    snapshots: List[Dict[str, Any]] = []
    return {
        "factor": factor,
        "vgprs_mt": vgprs_mt(factor, snapshots, faults),
        "tgtr_mt": tgtr_mt(factor, snapshots, faults),
        "vgprs_mo": vgprs_mo_admission(factor, snapshots, faults),
        "tgtr_mo": tgtr_mo_admission(factor, snapshots, faults),
        "metrics": snapshots,
    }


# ----------------------------------------------------------------------
# E9 — voice quality vs. concurrent calls per cell
# ----------------------------------------------------------------------
BUDGET_S = 0.150
TALK_S = 2.0

#: Default media model for the load workers: the fluid model reproduces
#: the event path within tolerance (see tests/test_media_fluid.py) at a
#: fraction of the cost; pass ``media="events"`` to validate against the
#: per-frame path.
DEFAULT_MEDIA = "fluid"


def apply_media(sim, media: str) -> None:
    """Install the requested media model on *sim* (``"events"`` is the
    per-frame default and needs no installation)."""
    if media == "fluid":
        install_fluid(sim)
    elif media != "events":
        raise SimulationError(f"unknown media model {media!r}")


def vgprs_under_load(
    num_calls: int,
    tch_capacity: int = 8,
    media: str = DEFAULT_MEDIA,
    faults: Optional[str] = None,
) -> Dict[str, Any]:
    """Voice-quality metrics with *num_calls* concurrent circuit calls."""
    nw = build_vgprs_network(tch_capacity=tch_capacity)
    apply_media(nw.sim, media)
    sampler = _sample(nw)
    recorder = _record(nw, sampler)
    apply_faults(nw, faults, strict=False)
    pairs = []
    for i in range(num_calls):
        ms = nw.add_ms(f"MS{i}", f"46692000000100{i}", f"+88693500010{i}")
        term = nw.add_terminal(f"TERM{i}", f"+88622200010{i}", answer_delay=0.2)
        pairs.append((ms, term))
    nw.sim.run(until=0.5)
    connected = 0
    for ms, term in pairs:
        scenarios.register_ms(nw, ms)
        try:
            scenarios.call_ms_to_terminal(nw, ms, term, timeout=10)
            connected += 1
            ms.start_talking(duration=TALK_S)
        except Exception:
            pass  # blocked: no TCH available
    nw.sim.run(until=nw.sim.now + TALK_S + 1.0)
    delays, jitters, within = [], [], []
    for i, (ms, term) in enumerate(pairs):
        m2e = nw.sim.metrics.get_histogram(f"TERM{i}.mouth_to_ear")
        jit = nw.sim.metrics.get_histogram(f"TERM{i}.jitter")
        if m2e is not None and m2e.count:
            delays.append(m2e.mean)
            within.append(m2e.fraction_below(BUDGET_S))
        if jit is not None and jit.count:
            jitters.append(jit.quantile(0.95))
    blocked = nw.sim.metrics.counters("BSC.tch_blocked").get("BSC.tch_blocked", 0)
    return {
        "connected": connected,
        "blocked": blocked,
        "mean_m2e_ms": 1000 * sum(delays) / len(delays) if delays else 0.0,
        "p95_jitter_ms": 1000 * max(jitters) if jitters else 0.0,
        "within_budget": min(within) if within else 0.0,
        # Full registry snapshot: workers run in their own processes, so
        # this is the only way their metrics reach --metrics-out.
        "metrics": nw.sim.metrics.snapshot(),
        "series": _finish_series(sampler),
        "incidents": _finish_recorder(recorder),
    }


def tgtr_under_load(
    num_calls: int,
    channel_bps: float = 40_000.0,
    media: str = DEFAULT_MEDIA,
    faults: Optional[str] = None,
) -> Dict[str, Any]:
    """Voice-quality metrics with *num_calls* calls sharing the 3G TR
    packet channel."""
    nw = build_3gtr_network(packet_channel_bps=channel_bps)
    apply_media(nw.sim, media)
    sampler = _sample(nw)
    recorder = _record(nw, sampler)
    apply_faults(nw, faults, strict=False)
    pairs = []
    for i in range(num_calls):
        ms = nw.add_ms(f"MS{i}", f"46692000000100{i}", f"+88693500010{i}",
                       answer_delay=0.2)
        term = nw.add_terminal(f"TERM{i}", f"+88622200010{i}", answer_delay=0.2)
        pairs.append((ms, term))
    nw.sim.run(until=0.5)
    connected = 0
    for ms, term in pairs:
        ms.power_on()
        nw.sim.run_until_true(lambda m=ms: m.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 1.0)
    for ms, term in pairs:
        ms.place_call(term.alias)
        if nw.sim.run_until_true(lambda m=ms: m.state == "in-call", timeout=20):
            connected += 1
    for ms, _ in pairs:
        if ms.state == "in-call":
            ms.start_talking(duration=TALK_S)
    nw.sim.run(until=nw.sim.now + TALK_S + 3.0)
    delays, jitters, within = [], [], []
    for i, _ in enumerate(pairs):
        m2e = nw.sim.metrics.get_histogram(f"TERM{i}.mouth_to_ear")
        jit = nw.sim.metrics.get_histogram(f"TERM{i}.jitter")
        if m2e is not None and m2e.count:
            delays.append(m2e.mean)
            within.append(m2e.fraction_below(BUDGET_S))
        if jit is not None and jit.count:
            jitters.append(jit.quantile(0.95))
    return {
        "connected": connected,
        "blocked": 0,
        "mean_m2e_ms": 1000 * sum(delays) / len(delays) if delays else 0.0,
        "p95_jitter_ms": 1000 * max(jitters) if jitters else 0.0,
        "within_budget": min(within) if within else 0.0,
        "metrics": nw.sim.metrics.snapshot(),
        "series": _finish_series(sampler),
        "incidents": _finish_recorder(recorder),
    }


def voice_quality_point(
    num_calls: int, media: str = DEFAULT_MEDIA, faults: Optional[str] = None
) -> Dict[str, Any]:
    """One E9 sweep point: both architectures at *num_calls* calls."""
    return {
        "calls": num_calls,
        "vgprs": vgprs_under_load(num_calls, media=media, faults=faults),
        "tgtr": tgtr_under_load(num_calls, media=media, faults=faults),
    }


# ----------------------------------------------------------------------
# E11 — PDP context residency vs. call rate
# ----------------------------------------------------------------------
def residency_point(
    calls_per_hour: float, horizon: float = 60.0,
    faults: Optional[str] = None,
) -> Dict[str, Any]:
    """Context-seconds at the SGSN over *horizon* simulated seconds with
    one subscriber making Poisson-ish periodic calls.  Returns a dict
    with ``vgprs_residency``/``vgprs_activations``/``tgtr_residency``/
    ``tgtr_activations`` plus the two workers' metrics snapshots."""
    period = 3600.0 / calls_per_hour if calls_per_hour else None

    def run(builder, is_vgprs):
        nw = builder()
        sampler = _sample(nw)
        recorder = _record(nw, sampler)
        apply_faults(nw, faults, strict=False)
        if is_vgprs:
            ms = nw.add_ms("MS1", IMSI1, MSISDN1)
            term = nw.add_terminal("TERM1", TERM1, answer_delay=0.2)
            nw.sim.run(until=0.5)
            scenarios.register_ms(nw, ms)
        else:
            ms = nw.add_ms("MS1", IMSI1, MSISDN1)
            term = nw.add_terminal("TERM1", TERM1, answer_delay=0.2)
            nw.sim.run(until=0.5)
            ms.power_on()
            nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        start = nw.sim.now
        base_residency = nw.sgsn.context_residency()
        activations0 = nw.sim.metrics.counters("SGSN.pdp_activations").get(
            "SGSN.pdp_activations", 0
        )
        next_call = nw.sim.now + (period / 2 if period else horizon * 2)
        while nw.sim.now - start < horizon:
            if period is not None and nw.sim.now >= next_call:
                next_call += period
                try:
                    if is_vgprs:
                        scenarios.call_ms_to_terminal(nw, ms, term, timeout=15)
                        nw.sim.run(until=nw.sim.now + 10.0)  # 10 s call
                        scenarios.hangup_from_ms(nw, ms)
                    else:
                        ms.place_call(term.alias)
                        nw.sim.run_until_true(
                            lambda: ms.state == "in-call", timeout=15
                        )
                        nw.sim.run(until=nw.sim.now + 10.0)
                        ms.hangup()
                        nw.sim.run(until=nw.sim.now + 2.0)
                except Exception:
                    pass
            step_to = min(next_call, start + horizon)
            nw.sim.run(until=max(nw.sim.now, step_to))
        activations = nw.sim.metrics.counters("SGSN.pdp_activations").get(
            "SGSN.pdp_activations", 0
        ) - activations0
        residency = nw.sgsn.context_residency() - base_residency
        return (residency, activations, nw.sim.metrics.snapshot(),
                _finish_series(sampler), _finish_recorder(recorder))

    v_res, v_act, v_snap, v_series, v_inc = run(build_vgprs_network, True)
    t_res, t_act, t_snap, t_series, t_inc = run(build_3gtr_network, False)
    return {
        "vgprs_residency": v_res,
        "vgprs_activations": v_act,
        "tgtr_residency": t_res,
        "tgtr_activations": t_act,
        "metrics": [v_snap, t_snap],
        "series": [v_series, t_series],
        "incidents": v_inc + t_inc,
    }
