"""Golden message flows transcribed from the paper's Figures 4-6.

Each figure becomes a list of :class:`FlowStep` entries — one per message
arrow, carrying the paper's step number.  Steps form a *partial* order:
by default each step follows the previous one, but branches the figures
draw as parallel (e.g. the Call Proceeding returning to the VMSC while
the terminal's own ARQ goes to the gatekeeper, steps 2.4/2.5) declare
their true causal predecessor explicitly via ``after``.

:func:`match_flow` verifies a recorded trace against a flow: every step
must appear, each no earlier than the steps it depends on.  Integration
tests and the E2-E5 benches run it on live simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.trace import TraceEntry, TraceRecorder


class FlowMismatch(ReproError):
    """The simulated trace does not contain the paper's message flow."""


@dataclass(frozen=True)
class FlowStep:
    """One arrow of a message-flow figure.

    ``src``/``dst`` of ``None`` match any node — used for tunnelled
    messages where the figure draws a logical arrow and the simulation
    records several hops (the step then pins only the interesting end).
    """

    step: str                      # the paper's step label, e.g. "2.4"
    message: str
    src: Optional[str] = None
    dst: Optional[str] = None
    after: Tuple[str, ...] = ()    # explicit causal predecessors

    def matches(self, entry: TraceEntry) -> bool:
        if entry.message != self.message:
            return False
        if self.src is not None and entry.src != self.src:
            return False
        if self.dst is not None and entry.dst != self.dst:
            return False
        return True


@dataclass(frozen=True)
class NodeNames:
    """Node names the flows are expressed against."""

    ms: str = "MS1"
    bts: str = "BTS1"
    bsc: str = "BSC"
    vmsc: str = "VMSC"
    vlr: str = "VLR"
    hlr: str = "HLR"
    sgsn: str = "SGSN"
    ggsn: str = "GGSN"
    ipnet: str = "IPNET"
    gk: str = "GK"
    term: str = "TERM1"


def match_flow(
    trace: TraceRecorder,
    steps: Sequence[FlowStep],
    since: float = 0.0,
) -> Dict[str, TraceEntry]:
    """Verify *steps* against the recorded trace.

    Greedy causal matching: steps are processed in list order; each
    consumes the earliest unconsumed entry matching it whose delivery
    time is >= the times of all its predecessors (the previous step by
    default).  Returns ``{step label: matched entry}``; raises
    :class:`FlowMismatch` with a readable diagnosis otherwise.
    """
    entries = [e for e in trace.entries if e.kind == "msg" and e.time >= since]
    consumed = [False] * len(entries)
    matched: Dict[str, TraceEntry] = {}
    previous: Optional[str] = None
    for step in steps:
        deps = step.after if step.after else ((previous,) if previous else ())
        not_before = 0.0
        for dep in deps:
            if dep is None:
                continue
            if dep not in matched:
                raise FlowMismatch(
                    f"step {step.step} depends on {dep!r}, which is not an "
                    "earlier step in the flow"
                )
            not_before = max(not_before, matched[dep].time)
        found = None
        for i, entry in enumerate(entries):
            if consumed[i] or entry.time < not_before:
                continue
            if step.matches(entry):
                found = i
                break
        if found is None:
            near = [
                f"{e.time:.4f} {e.message} {e.src}->{e.dst}"
                for e in entries
                if e.message == step.message
            ]
            raise FlowMismatch(
                f"step {step.step} ({step.message} "
                f"{step.src or '*'}->{step.dst or '*'}) not found after "
                f"t={not_before:.4f}; same-name entries: {near or 'none'}"
            )
        consumed[found] = True
        matched[step.step] = entries[found]
        previous = step.step
    return matched


# ----------------------------------------------------------------------
# Figure 4: vGPRS registration (steps 1.1 - 1.6)
# ----------------------------------------------------------------------
def registration_flow(n: NodeNames = NodeNames()) -> List[FlowStep]:
    return [
        FlowStep("1.1-um", "Um_Location_Update_Request", n.ms, n.bts),
        FlowStep("1.1-abis", "Abis_Location_Update", n.bts, n.bsc),
        FlowStep("1.1-a", "A_Location_Update", n.bsc, n.vmsc),
        FlowStep("1.1-map", "MAP_Update_Location_Area", n.vmsc, n.vlr),
        # Standard GSM authentication runs here; the figure omits it.
        FlowStep("1.2-ul", "MAP_Update_Location", n.vlr, n.hlr),
        FlowStep("1.2-isd", "MAP_Insert_Subs_Data", n.hlr, n.vlr),
        FlowStep("1.2-isd-ack", "MAP_Insert_Subs_Data_ack", n.vlr, n.hlr),
        FlowStep("1.2-ul-ack", "MAP_Update_Location_ack", n.hlr, n.vlr),
        # Ciphering runs here (figure: "the VLR then sets up ... ciphering").
        FlowStep("1.2-ula-ack", "MAP_Update_Location_Area_ack", n.vlr, n.vmsc),
        FlowStep("1.3-attach", "GPRS_Attach_Request", n.vmsc, n.sgsn),
        FlowStep("1.3-attach-ack", "GPRS_Attach_Accept", n.sgsn, n.vmsc),
        FlowStep("1.3-pdp", "Activate_PDP_Context_Request", n.vmsc, n.sgsn),
        FlowStep("1.3-gtp", "Create_PDP_Context_Request", n.sgsn, n.ggsn),
        FlowStep("1.3-gtp-rsp", "Create_PDP_Context_Response", n.ggsn, n.sgsn),
        FlowStep("1.3-pdp-ack", "Activate_PDP_Context_Accept", n.sgsn, n.vmsc),
        # Steps 1.4/1.5 tunnel through SGSN/GGSN; pin origin and ends.
        FlowStep("1.4-rrq", "RAS_RRQ", n.vmsc, n.sgsn),
        FlowStep("1.4-rrq-gk", "RAS_RRQ", None, n.gk),
        FlowStep("1.5-rcf", "RAS_RCF", n.gk, n.ipnet),
        FlowStep("1.5-rcf-vmsc", "RAS_RCF", None, n.vmsc),
        FlowStep("1.6-a", "A_Location_Update_Accept", n.vmsc, n.bsc),
        FlowStep("1.6-abis", "Abis_Location_Update_Accept", n.bsc, n.bts),
        FlowStep("1.6-um", "Um_Location_Update_Accept", n.bts, n.ms),
    ]


# ----------------------------------------------------------------------
# Figure 5 (top): MS call origination (steps 2.1 - 2.9)
# ----------------------------------------------------------------------
def origination_flow(n: NodeNames = NodeNames()) -> List[FlowStep]:
    return [
        # Step 2.1: channel assignment/auth/ciphering elided by the
        # figure, then the dialled digits travel up.
        FlowStep("2.1-um", "Um_Setup", n.ms, n.bts),
        FlowStep("2.1-abis", "Abis_Setup", n.bts, n.bsc),
        FlowStep("2.1-a", "A_Setup", n.bsc, n.vmsc),
        FlowStep("2.2-sifoc", "MAP_Send_Info_For_Outgoing_Call", n.vmsc, n.vlr),
        FlowStep("2.2-ack", "MAP_Send_Info_For_Outgoing_Call_ack", n.vlr, n.vmsc),
        FlowStep("2.3-arq", "RAS_ARQ", n.vmsc, n.sgsn),
        FlowStep("2.3-arq-gk", "RAS_ARQ", None, n.gk),
        FlowStep("2.3-acf", "RAS_ACF", n.gk, n.ipnet),
        FlowStep("2.3-acf-vmsc", "RAS_ACF", None, n.vmsc),
        FlowStep("2.4-setup", "Q931_Setup", n.vmsc, n.sgsn),
        FlowStep("2.4-setup-term", "Q931_Setup", None, n.term),
        FlowStep("2.4-proceeding", "Q931_Call_Proceeding", n.term, n.ipnet,
                 after=("2.4-setup-term",)),
        FlowStep("2.4-proceeding-vmsc", "Q931_Call_Proceeding", None, n.vmsc),
        # Step 2.5: the terminal's own admission, parallel to 2.4's
        # Call Proceeding travelling back.
        FlowStep("2.5-arq", "RAS_ARQ", n.term, n.ipnet, after=("2.4-setup-term",)),
        FlowStep("2.5-arq-gk", "RAS_ARQ", n.ipnet, n.gk),
        FlowStep("2.5-acf", "RAS_ACF", None, n.term),
        FlowStep("2.6-alerting", "Q931_Alerting", n.term, n.ipnet),
        FlowStep("2.6-alerting-vmsc", "Q931_Alerting", None, n.vmsc),
        FlowStep("2.7-a", "A_Alerting", n.vmsc, n.bsc),
        FlowStep("2.7-abis", "Abis_Alerting", n.bsc, n.bts),
        FlowStep("2.7-um", "Um_Alerting", n.bts, n.ms),
        FlowStep("2.8-connect", "Q931_Connect", n.term, n.ipnet, after=("2.5-acf",)),
        FlowStep("2.8-connect-vmsc", "Q931_Connect", None, n.vmsc),
        FlowStep("2.8-a", "A_Connect", n.vmsc, n.bsc),
        FlowStep("2.8-abis", "Abis_Connect", n.bsc, n.bts),
        FlowStep("2.8-um", "Um_Connect", n.bts, n.ms),
        FlowStep("2.9-pdp", "Activate_PDP_Context_Request", n.vmsc, n.sgsn,
                 after=("2.8-connect-vmsc",)),
        FlowStep("2.9-gtp", "Create_PDP_Context_Request", n.sgsn, n.ggsn),
        FlowStep("2.9-gtp-rsp", "Create_PDP_Context_Response", n.ggsn, n.sgsn),
        FlowStep("2.9-pdp-ack", "Activate_PDP_Context_Accept", n.sgsn, n.vmsc),
    ]


# ----------------------------------------------------------------------
# Figure 5 (bottom): call release (steps 3.1 - 3.4)
# ----------------------------------------------------------------------
def release_flow(n: NodeNames = NodeNames()) -> List[FlowStep]:
    return [
        FlowStep("3.1-um", "Um_Disconnect", n.ms, n.bts),
        FlowStep("3.1-abis", "Abis_Disconnect", n.bts, n.bsc),
        FlowStep("3.1-a", "A_Disconnect", n.bsc, n.vmsc),
        FlowStep("3.2-release", "Q931_Release_Complete", n.vmsc, n.sgsn),
        FlowStep("3.2-release-term", "Q931_Release_Complete", None, n.term),
        # Step 3.3: both ends disengage; the VMSC's DRQ races the
        # Release Complete still in flight toward the terminal.
        FlowStep("3.3-drq-vmsc", "RAS_DRQ", n.vmsc, n.sgsn, after=("3.1-a",)),
        FlowStep("3.3-dcf-vmsc", "RAS_DCF", None, n.vmsc),
        FlowStep("3.3-drq-term", "RAS_DRQ", n.term, n.ipnet,
                 after=("3.2-release-term",)),
        FlowStep("3.3-dcf-term", "RAS_DCF", None, n.term),
        FlowStep("3.4-pdp", "Deactivate_PDP_Context_Request", n.vmsc, n.sgsn,
                 after=("3.1-a",)),
        FlowStep("3.4-gtp", "Delete_PDP_Context_Request", n.sgsn, n.ggsn),
        FlowStep("3.4-gtp-rsp", "Delete_PDP_Context_Response", n.ggsn, n.sgsn),
        FlowStep("3.4-pdp-ack", "Deactivate_PDP_Context_Accept", n.sgsn, n.vmsc),
    ]


# ----------------------------------------------------------------------
# Figure 6: MS call termination (steps 4.1 - 4.8)
# ----------------------------------------------------------------------
def termination_flow(n: NodeNames = NodeNames()) -> List[FlowStep]:
    return [
        FlowStep("4.1-arq", "RAS_ARQ", n.term, n.ipnet),
        FlowStep("4.1-acf", "RAS_ACF", None, n.term),
        FlowStep("4.2-setup", "Q931_Setup", n.term, n.ipnet),
        FlowStep("4.2-setup-ggsn", "Q931_Setup", n.ipnet, n.ggsn),
        FlowStep("4.2-setup-sgsn", "Q931_Setup", n.ggsn, n.sgsn),
        FlowStep("4.2-setup-vmsc", "Q931_Setup", n.sgsn, n.vmsc),
        FlowStep("4.2-proceeding", "Q931_Call_Proceeding", n.vmsc, n.sgsn),
        FlowStep("4.2-proceeding-term", "Q931_Call_Proceeding", None, n.term),
        # Step 4.3: the VMSC's answer-side admission, parallel to 4.2's
        # Call Proceeding travelling back to the terminal.
        FlowStep("4.3-arq", "RAS_ARQ", n.vmsc, n.sgsn, after=("4.2-setup-vmsc",)),
        FlowStep("4.3-arq-gk", "RAS_ARQ", None, n.gk),
        FlowStep("4.3-acf", "RAS_ACF", n.gk, n.ipnet),
        FlowStep("4.3-acf-vmsc", "RAS_ACF", None, n.vmsc),
        FlowStep("4.4-a", "A_Paging", n.vmsc, n.bsc),
        FlowStep("4.4-abis", "Abis_Paging", n.bsc, n.bts),
        FlowStep("4.4-um", "Um_Paging", n.bts, n.ms),
        FlowStep("4.5-um", "Um_Paging_Response", n.ms, n.bts),
        FlowStep("4.5-abis", "Abis_Paging_Response", n.bts, n.bsc),
        FlowStep("4.5-a", "A_Paging_Response", n.bsc, n.vmsc),
        # Authentication, ciphering and TCH assignment run here (4.5).
        FlowStep("4.5-setup-a", "A_Setup", n.vmsc, n.bsc),
        FlowStep("4.5-setup-abis", "Abis_Setup", n.bsc, n.bts),
        FlowStep("4.5-setup-um", "Um_Setup", n.bts, n.ms),
        FlowStep("4.6-um", "Um_Alerting", n.ms, n.bts),
        FlowStep("4.6-abis", "Abis_Alerting", n.bts, n.bsc),
        FlowStep("4.6-a", "A_Alerting", n.bsc, n.vmsc),
        FlowStep("4.6-q931", "Q931_Alerting", n.vmsc, n.sgsn),
        FlowStep("4.6-q931-term", "Q931_Alerting", None, n.term),
        FlowStep("4.7-um", "Um_Connect", n.ms, n.bts, after=("4.6-a",)),
        FlowStep("4.7-abis", "Abis_Connect", n.bts, n.bsc),
        FlowStep("4.7-a", "A_Connect", n.bsc, n.vmsc),
        FlowStep("4.7-q931", "Q931_Connect", n.vmsc, n.sgsn),
        FlowStep("4.7-q931-term", "Q931_Connect", None, n.term),
        FlowStep("4.8-pdp", "Activate_PDP_Context_Request", n.vmsc, n.sgsn,
                 after=("4.7-a",)),
        FlowStep("4.8-gtp", "Create_PDP_Context_Request", n.sgsn, n.ggsn),
        FlowStep("4.8-gtp-rsp", "Create_PDP_Context_Response", n.ggsn, n.sgsn),
        FlowStep("4.8-pdp-ack", "Activate_PDP_Context_Accept", n.sgsn, n.vmsc),
    ]
