"""vGPRS network builder (Figures 1-3).

Constructs the full topology — MS/BTS/BSC on the radio side, VMSC, VLR,
HLR, SGSN, GGSN, the IP cloud, a standard gatekeeper and H.323 terminals
— with one :class:`LatencyProfile` controlling every link delay, so the
experiments can sweep network conditions reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.identities import IMSI, E164Number, IPv4Address
from repro.core.vmsc import Vmsc
from repro.gprs.ggsn import Ggsn
from repro.gprs.sgsn import Sgsn
from repro.gsm.bsc import Bsc
from repro.gsm.bts import Bts
from repro.gsm.hlr import Hlr
from repro.gsm.ms import MobileStation
from repro.gsm.subscriber import SubscriberProfile, SubscriberRecord
from repro.gsm.vlr import Vlr
from repro.h323.gatekeeper import Gatekeeper
from repro.h323.terminal import H323Terminal
from repro.net.interfaces import Interface
from repro.net.ip import IPCloud
from repro.net.node import Network
from repro.pstn.phone import PstnPhone
from repro.pstn.switch import PstnSwitch
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class LatencyProfile:
    """One-way link latencies in seconds.

    Defaults approximate a year-2000 deployment: a slow radio interface,
    E1-connected BSS, SS7 signalling links, frame-relay Gb and a regional
    IP backbone.  Experiments sweep individual entries (E8 sweeps the
    core/IP latencies; E9 loads the radio interface).
    """

    um: float = 0.010
    abis: float = 0.002
    a: float = 0.002
    ss7: float = 0.004          # B, C, D, E, Gr MAP links
    gb: float = 0.003
    gn: float = 0.004
    gi: float = 0.004
    ip: float = 0.008           # cloud <-> host
    isup: float = 0.006
    international: float = 0.070

    def scaled_core(self, factor: float) -> "LatencyProfile":
        """A copy with the packet-core latencies (Gb/Gn/Gi/IP) scaled —
        the E8 sweep axis."""
        return LatencyProfile(
            um=self.um,
            abis=self.abis,
            a=self.a,
            ss7=self.ss7,
            gb=self.gb * factor,
            gn=self.gn * factor,
            gi=self.gi * factor,
            ip=self.ip * factor,
            isup=self.isup,
            international=self.international,
        )


#: Default IP addressing for the H.323 side.
GK_IP = IPv4Address.parse("192.0.2.1")
GATEWAY_IP = IPv4Address.parse("192.0.2.5")
TERMINAL_IP_BASE = IPv4Address.parse("192.0.2.10")


@dataclass
class VgprsNetwork:
    """A constructed vGPRS network plus handles to every element."""

    sim: Simulator
    net: Network
    latencies: LatencyProfile
    country_code: str
    cloud: IPCloud
    gk: Gatekeeper
    ggsn: Ggsn
    sgsn: Sgsn
    vmsc: Vmsc
    vlr: Vlr
    hlr: Hlr
    wire_fidelity: bool = True
    bscs: List[Bsc] = field(default_factory=list)
    btss: List[Bts] = field(default_factory=list)
    mss: Dict[str, MobileStation] = field(default_factory=dict)
    terminals: Dict[str, H323Terminal] = field(default_factory=dict)
    #: Local exchange wired to the VMSC's ISUP trunk when the network is
    #: built with ``with_pstn=True`` — the fallback path for calls the
    #: H.323 side cannot carry during a gatekeeper outage.
    pstn: Optional[PstnSwitch] = None
    phones: Dict[str, PstnPhone] = field(default_factory=dict)
    _terminal_count: int = 0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_ms(
        self,
        name: str,
        imsi: str,
        msisdn: str,
        bts: Optional[Bts] = None,
        answer_delay: float = 1.0,
        international_allowed: bool = True,
        use_tmsi_for_updates: bool = False,
    ) -> MobileStation:
        """Provision a subscriber in the HLR and attach a handset to a
        cell."""
        bts = bts if bts is not None else self.btss[0]
        subscriber = SubscriberRecord(
            imsi=IMSI(imsi),
            msisdn=E164Number.parse(msisdn),
            profile=SubscriberProfile(international_allowed=international_allowed),
        )
        self.hlr.add_subscriber(subscriber)
        ms = MobileStation(
            self.sim,
            name,
            imsi=subscriber.imsi,
            msisdn=subscriber.msisdn,
            ki=subscriber.ki,
            serving_bts=bts.name,
            lai=f"LAI-{self.country_code}-1",
            answer_delay=answer_delay,
            use_tmsi_for_updates=use_tmsi_for_updates,
        )
        self.net.add(ms)
        self.net.connect(
            ms, bts, Interface.UM, self.latencies.um,
            wire_fidelity=self.wire_fidelity,
        )
        self.mss[name] = ms
        return ms

    def add_coverage(self, ms: MobileStation, bts: Bts) -> None:
        """Give *ms* radio visibility of an additional cell (needed
        before :meth:`MobileStation.move_to` or handoff into it)."""
        self.net.connect(
            ms, bts, Interface.UM, self.latencies.um,
            wire_fidelity=self.wire_fidelity,
        )

    def add_terminal(
        self, name: str, alias: str, answer_delay: float = 1.0
    ) -> H323Terminal:
        """Attach an H.323 terminal to the IP cloud."""
        self._terminal_count += 1
        ip = IPv4Address(TERMINAL_IP_BASE.value + self._terminal_count)
        terminal = H323Terminal(
            self.sim,
            name,
            ip=ip,
            alias=E164Number.parse(alias),
            gk_ip=self.gk.ip,
            answer_delay=answer_delay,
        )
        self.net.add(terminal)
        self.net.connect(
            terminal, self.cloud, Interface.IP, self.latencies.ip,
            wire_fidelity=self.wire_fidelity,
        )
        terminal.register()
        return self._remember_terminal(name, terminal)

    def _remember_terminal(self, name: str, terminal: H323Terminal) -> H323Terminal:
        self.terminals[name] = terminal
        return terminal

    def add_phone(
        self, name: str, number: str, answer_delay: float = 1.0
    ) -> PstnPhone:
        """A fixed-line subscriber on the local exchange (requires
        ``with_pstn=True``) — the far end of the GK-outage fallback
        scenarios."""
        if self.pstn is None:
            raise TopologyError(
                "add_phone needs build_vgprs_network(with_pstn=True)"
            )
        phone = PstnPhone(
            self.sim, name, E164Number.parse(number), answer_delay=answer_delay
        )
        self.net.add(phone)
        self.net.connect(phone, self.pstn, Interface.ISUP, self.latencies.isup)
        self.pstn.add_local(phone.number, phone.name)
        self.phones[name] = phone
        return phone


def build_vgprs_network(
    seed: int = 0,
    latencies: Optional[LatencyProfile] = None,
    wire_fidelity: bool = True,
    num_bts: int = 1,
    country_code: str = "886",
    name_prefix: str = "",
    sim: Optional[Simulator] = None,
    net: Optional[Network] = None,
    hlr: Optional[Hlr] = None,
    gk_max_calls: Optional[int] = None,
    tch_capacity: int = 32,
    idle_deactivate_after: Optional[float] = None,
    with_pstn: bool = False,
) -> VgprsNetwork:
    """Build the Figure 2(b) network.

    ``name_prefix`` namespaces node names so two vGPRS networks (e.g.
    home and visited PLMNs in the roaming scenarios) can share one
    simulator; pass the same ``sim``/``net``/``hlr`` to share the clock,
    trace and home subscriber base.  ``with_pstn=True`` additionally
    wires a local exchange to the VMSC over an ISUP trunk so calls can
    fall back to the circuit network during gatekeeper outages
    (:meth:`VgprsNetwork.add_phone` provisions the far-end subscribers).
    """
    lat = latencies if latencies is not None else LatencyProfile()
    sim = sim if sim is not None else Simulator(seed=seed)
    net = net if net is not None else Network(sim)
    p = name_prefix

    cloud_name = f"{p}IPNET"
    cloud = net.nodes.get(cloud_name)
    if cloud is None:
        cloud = net.add(IPCloud(sim, cloud_name))

    prefix_offset = sum(ord(c) for c in p) % 64
    gk = Gatekeeper(
        sim,
        f"{p}GK",
        ip=GK_IP if not p else IPv4Address(GK_IP.value + prefix_offset + 1),
        max_concurrent_calls=gk_max_calls,
    )
    net.add(gk)
    net.connect(gk, cloud, Interface.IP, lat.ip, wire_fidelity=wire_fidelity)
    gk.attach_to_cloud()

    # The idle-deactivation variant needs the GGSN to keep released
    # address bindings so network-requested activation can find the MS
    # (the static-addressing requirement of GSM 03.60).
    ggsn = Ggsn(sim, f"{p}GGSN",
                remember_released=idle_deactivate_after is not None)
    sgsn = Sgsn(sim, f"{p}SGSN")
    net.add(ggsn)
    net.add(sgsn)
    net.connect(ggsn, cloud, Interface.GI, lat.gi, wire_fidelity=wire_fidelity)
    net.connect(sgsn, ggsn, Interface.GN, lat.gn, wire_fidelity=wire_fidelity)

    vmsc = Vmsc(
        sim,
        f"{p}VMSC",
        gk_ip=gk.ip,
        country_code=country_code,
        idle_deactivate_after=idle_deactivate_after,
    )
    vlr = Vlr(sim, f"{p}VLR", country_code=country_code)
    net.add(vmsc)
    net.add(vlr)
    if hlr is None:
        hlr = net.add(Hlr(sim, f"{p}HLR"))
    elif hlr.name not in net:
        net.add(hlr)

    net.connect(vmsc, vlr, Interface.B, lat.ss7, wire_fidelity=wire_fidelity)
    net.connect(vlr, hlr, Interface.D, lat.ss7, wire_fidelity=wire_fidelity)
    net.connect(vmsc, hlr, Interface.C, lat.ss7, wire_fidelity=wire_fidelity)
    net.connect(vmsc, sgsn, Interface.GB, lat.gb, wire_fidelity=wire_fidelity)

    network = VgprsNetwork(
        sim=sim,
        net=net,
        latencies=lat,
        country_code=country_code,
        cloud=cloud,
        gk=gk,
        ggsn=ggsn,
        sgsn=sgsn,
        vmsc=vmsc,
        vlr=vlr,
        hlr=hlr,
        wire_fidelity=wire_fidelity,
    )

    if with_pstn:
        pstn = PstnSwitch(sim, f"{p}PSTN", country_code=country_code)
        net.add(pstn)
        net.connect(
            vmsc, pstn, Interface.ISUP, lat.isup, wire_fidelity=wire_fidelity
        )
        network.pstn = pstn

    bsc = Bsc(sim, f"{p}BSC", tch_capacity=tch_capacity)
    net.add(bsc)
    net.connect(bsc, vmsc, Interface.A, lat.a, wire_fidelity=wire_fidelity)
    network.bscs.append(bsc)
    for i in range(num_bts):
        bts = Bts(sim, f"{p}BTS{i + 1}")
        net.add(bts)
        net.connect(bts, bsc, Interface.ABIS, lat.abis, wire_fidelity=wire_fidelity)
        network.btss.append(bts)
        vmsc.cells[f"{p}cell-{i + 1}"] = bsc.name

    return network
