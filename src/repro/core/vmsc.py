"""The VoIP Mobile Switching Center (VMSC).

The paper's contribution (§2): "a router-based softswitch" that replaces
the GSM MSC.  Toward the radio network it *is* an MSC (all of
:class:`~repro.gsm.msc_base.MscBase` is inherited unchanged — A, B, C and
E interfaces identical to a standard MSC).  Toward the network it is a
bank of H.323 terminals, one per attached MS:

* it performs GPRS attach and PDP context activation *on behalf of* each
  MS over the Gb interface (step 1.3), giving every MS an IP address;
* it registers each MS's MSISDN as an H.323 alias with a standard
  gatekeeper (steps 1.4-1.5);
* it runs Q.931 call signalling per call (Figures 5 and 6) and
  transcodes circuit-switched TCH voice to RTP through its vocoder bank
  and built-in PCU (voice path (1)(2)(5)(6)(4) of Figure 2(b));
* it keeps the signalling PDP context alive while the MS is attached, so
  calls set up without per-call PDP activation — the §6 latency argument
  against 3G TR 23.923 — and activates a second, real-time PDP context
  per call for voice (steps 2.9/4.8), deactivated at release (step 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CallSetupError
from repro.identities import IMSI, E164Number, IPv4Address
from repro.core.ms_table import MsTable, MsTableEntry
from repro.gprs.gb import GbUnitdata
from repro.gprs.pdp import NSAPI_SIGNALLING, NSAPI_VOICE
from repro.gsm.msc_base import MscBase, RadioConn
from repro.h323.codec import G711_ULAW, GSM_FR, Vocoder
from repro.net.interfaces import Interface
from repro.net.node import Node, handles
from repro.net.transactions import ReliableTransaction, Sequencer
from repro.packets.base import Packet
from repro.packets.bssap import ASetup, TchFrame
from repro.packets.isup import (
    IsupAcm,
    IsupAnm,
    IsupIam,
    IsupRel,
    IsupRlc,
    PcmFrame,
)
from repro.packets.gmm import (
    ActivatePdpContextAccept,
    ActivatePdpContextReject,
    ActivatePdpContextRequest,
    DeactivatePdpContextAccept,
    DeactivatePdpContextRequest,
    GprsAttachAccept,
    GprsAttachRequest,
    GprsDetachAccept,
    GprsDetachRequest,
    RequestPdpContextActivation,
)
from repro.sim.timers import Timer
from repro.packets.ip import IPv4, PORT_H225_CS, PORT_H225_RAS, PORT_RTP, TCPLite, UDP
from repro.packets.map import MapUpdateLocationAreaAck
from repro.packets.q931 import (
    CAUSE_NORMAL_CLEARING,
    CAUSE_RESOURCE_UNAVAILABLE,
    Q931Alerting,
    Q931CallProceeding,
    Q931Connect,
    Q931ReleaseComplete,
    Q931Setup,
)
from repro.packets.ras import (
    RasAcf,
    RasArj,
    RasArq,
    RasDcf,
    RasDrq,
    RasRcf,
    RasRrq,
    RasUrq,
)
from repro.packets.rtp import PT_PCMU, RtpPacket


@dataclass
class VmscCall:
    """One H.323 call handled by the VMSC on behalf of an MS."""

    call_ref: int
    imsi: IMSI
    direction: str                        # "mo" | "mt"
    state: str = "admission"
    called: Optional[E164Number] = None
    calling: Optional[E164Number] = None
    remote_signal: Optional[Tuple[IPv4Address, int]] = None
    remote_media: Optional[Tuple[IPv4Address, int]] = None
    placed_at: float = 0.0
    connected_at: Optional[float] = None
    released_at: Optional[float] = None
    voice_pdp_pending: bool = False
    uplink_buffer: List[TchFrame] = field(default_factory=list)
    rtp_seq: int = 0
    span: Optional[object] = None         # repro.obs.spans.Span (MT leg)
    admission_timer: Optional[Timer] = None


@dataclass
class FallbackCall:
    """A call carried over the ISUP trunk because the H.323 path was
    unavailable (gatekeeper outage): the PSTN fallback of the fault
    scenarios.  Voice bridges PCM <-> TCH with no transcoding, exactly
    like the classic MSC."""

    cic: int
    imsi: IMSI
    state: str = "setup"                  # setup | alerting | in-call
    placed_at: float = 0.0
    connected_at: Optional[float] = None


class Vmsc(MscBase):
    """The VoIP mobile switching centre."""

    def __init__(
        self,
        sim,
        name: str,
        gk_ip: IPv4Address,
        country_code: str = "886",
        idle_deactivate_after: Optional[float] = None,
    ) -> None:
        """``idle_deactivate_after`` enables the variant the paper
        sketches and rejects in §6: deactivate the signalling PDP context
        after that many idle seconds ("this approach may significantly
        increase the call setup time and is not considered in the current
        vGPRS implementation").  ``None`` (the default) is the paper's
        design: the context stays up while the MS is attached."""
        super().__init__(sim, name)
        self.gk_ip = gk_ip
        self.country_code = country_code
        self.idle_deactivate_after = idle_deactivate_after
        self._idle_timers: Dict[IMSI, Timer] = {}
        self._pending_mo: Dict[IMSI, Tuple[RadioConn, ASetup]] = {}
        self.ms_table = MsTable()
        # Keyed by (call_ref, imsi): when both parties of a call are MSs
        # on this VMSC (paper §4: "the called party can be another MS in
        # the same GPRS network"), the two legs share one call reference.
        self.calls: Dict[Tuple[int, IMSI], VmscCall] = {}
        self._call_by_imsi: Dict[IMSI, VmscCall] = {}
        self._ras_seq = Sequencer()
        self.vocoder = Vocoder(GSM_FR, G711_ULAW)
        self._pending_lu: Dict[IMSI, Tuple[RadioConn, MapUpdateLocationAreaAck]] = {}
        #: Guard for steps 1.3-1.5: if GPRS/H.323 registration does not
        #: finish in time (core failure), the GSM location update is
        #: still confirmed — the subscriber remains a GSM subscriber —
        #: but the entry is left VoIP-incapable and counted.
        self.registration_guard = 10.0
        self._lu_guards: Dict[IMSI, Timer] = {}
        #: H.225 registration time-to-live granted by the GK; the VMSC
        #: refreshes each MS's registration at half the TTL (lightweight
        #: re-registration) so aliases never age out while attached.
        self.gk_ttl = 3600
        self._keepalive_timers: Dict[IMSI, Timer] = {}
        #: Recovery policy after a GK failure: re-register with
        #: exponential backoff (first retry after ``gk_retry_base``
        #: seconds, scaled by ``gk_retry_backoff`` per attempt, up to
        #: ``gk_retry_max`` resends) so the MS re-homes automatically
        #: when the gatekeeper returns.
        self.gk_retry_base = 2.0
        self.gk_retry_backoff = 2.0
        self.gk_retry_max = 6
        self._gk_retries: Dict[IMSI, ReliableTransaction] = {}
        #: When the outage was detected per IMSI, so the RCF that ends it
        #: can record the recovery latency (MTTR) histogram.
        self._gk_outage_since: Dict[IMSI, float] = {}
        #: H.225 gives no answer when the GK is unreachable; guard every
        #: ARQ so calls fail over (or fail cleanly) instead of wedging.
        self.admission_timeout = 4.0
        # PSTN fallback trunk state, used only when an ISUP trunk is
        # wired (build_vgprs_network(with_pstn=True)).
        self._cic_seq = Sequencer(start=600000)
        self._fallback_by_cic: Dict[int, FallbackCall] = {}
        self._fallback_by_imsi: Dict[IMSI, FallbackCall] = {}

    # ------------------------------------------------------------------
    # Gb plumbing: H.323 on behalf of each MS
    # ------------------------------------------------------------------
    def _sgsn(self) -> Node:
        return self.peer(Interface.GB)

    def _send_h323(
        self,
        entry: MsTableEntry,
        message: Packet,
        dst: IPv4Address,
        dport: int,
        sport: int,
        tcp: bool = False,
        nsapi: int = NSAPI_SIGNALLING,
    ) -> None:
        """Send an H.323 message sourced from the MS's IP address,
        tunnelled through the MS's PDP context (paths (4)(3)(2)/(8) of
        Figure 3)."""
        src_ip = entry.ip
        if src_ip is None:
            raise CallSetupError(f"{self.name}: no PDP address for {entry.imsi}")
        transport = (
            TCPLite(sport=sport, dport=dport) if tcp else UDP(sport=sport, dport=dport)
        )
        frame = GbUnitdata(imsi=entry.imsi, nsapi=nsapi)
        frame.payload = IPv4(src=src_ip, dst=dst) / transport / message
        self.send(self._sgsn(), frame)

    @handles(GbUnitdata)
    def on_gb_unitdata(self, frame: GbUnitdata, src: Node, interface: str) -> None:
        packet = frame.payload
        if not isinstance(packet, IPv4):
            self.sim.metrics.counter(f"{self.name}.gb_non_ip").inc()
            return
        entry = self.ms_table.by_ip(packet.dst)
        if entry is None:
            self.sim.metrics.counter(f"{self.name}.gb_unknown_ms").inc()
            return
        inner = packet.payload
        sport = 0
        while isinstance(inner, (UDP, TCPLite)):
            sport = inner.sport
            inner = inner.payload
        if inner is not None:
            self._on_h323(entry, inner, packet, sport)

    # ------------------------------------------------------------------
    # Registration: steps 1.3 - 1.6
    # ------------------------------------------------------------------
    def on_registration_complete(
        self, conn: RadioConn, ack: MapUpdateLocationAreaAck
    ) -> None:
        """Step 1.2 finished (VLR ack); run GPRS attach, PDP activation
        and gatekeeper registration before confirming to the MS."""
        entry = self.ms_table.ensure(conn.imsi, now=self.sim.now)
        entry.tmsi = ack.new_tmsi if ack.new_tmsi is not None else entry.tmsi
        if ack.msisdn is not None:
            self.ms_table.set_msisdn(entry, ack.msisdn)
        self._pending_lu[conn.imsi] = (conn, ack)
        guard = self._lu_guards.get(conn.imsi)
        if guard is None:
            guard = Timer(
                self.sim,
                f"t-reg:{conn.imsi}",
                self.registration_guard,
                lambda imsi=conn.imsi: self._registration_guard_expired(imsi),
            )
            self._lu_guards[conn.imsi] = guard
        guard.start()
        if not entry.gprs_attached:
            # Step 1.3: "The VMSC performs GPRS attach to the SGSN."
            self.send(self._sgsn(), GprsAttachRequest(imsi=conn.imsi))
        elif not entry.signalling_ready:
            self._activate_pdp(entry, NSAPI_SIGNALLING)
        else:
            self._register_with_gk(entry)

    @handles(GprsAttachAccept)
    def on_gprs_attach_accept(
        self, msg: GprsAttachAccept, src: Node, interface: str
    ) -> None:
        entry = self.ms_table.require(msg.imsi)
        entry.gprs_attached = True
        # Step 1.3 continued: "the VMSC activates a new PDP context just
        # like a GPRS MS does" — low-priority, dedicated to H.323
        # signalling.
        self._activate_pdp(entry, NSAPI_SIGNALLING)

    def _activate_pdp(self, entry: MsTableEntry, nsapi: int) -> None:
        state = entry.pdp_state(nsapi)
        self.send(
            self._sgsn(),
            ActivatePdpContextRequest(
                imsi=entry.imsi,
                nsapi=nsapi,
                qos_delay_class=state.qos.delay_class,
                qos_peak_kbps=state.qos.peak_kbps,
            ),
        )

    @handles(ActivatePdpContextAccept)
    def on_pdp_accept(
        self, msg: ActivatePdpContextAccept, src: Node, interface: str
    ) -> None:
        entry = self.ms_table.require(msg.imsi)
        self.ms_table.set_ip(entry, msg.nsapi, msg.pdp_address)
        entry.pdp_state(msg.nsapi).activated_at = self.sim.now
        if msg.nsapi == NSAPI_SIGNALLING:
            pending = self._pending_mo.pop(msg.imsi, None)
            if pending is not None:
                # Idle-deactivation variant: context restored; resume the
                # queued origination (the GK registration is still valid
                # because the GGSN re-issued the same PDP address).
                conn, setup = pending
                self.route_mo_call(conn, setup)
            elif entry.gk_registered:
                # Network-requested re-activation for an incoming call;
                # the buffered Setup will now arrive.
                pass
            else:
                # Step 1.4: register the MS's alias with the gatekeeper.
                self._register_with_gk(entry)
        else:
            self._voice_pdp_ready(entry)

    @handles(ActivatePdpContextReject)
    def on_pdp_reject(
        self, msg: ActivatePdpContextReject, src: Node, interface: str
    ) -> None:
        self.sim.metrics.counter(f"{self.name}.pdp_rejects").inc()
        if msg.nsapi == NSAPI_VOICE:
            call = self._call_by_imsi.get(msg.imsi)
            if call is not None:
                self._release_call(call, cause=CAUSE_RESOURCE_UNAVAILABLE)
            return
        # Signalling context refused: complete the GSM registration
        # without VoIP capability (counted) and fail any queued call.
        pending_mo = self._pending_mo.pop(msg.imsi, None)
        if pending_mo is not None:
            conn, _setup = pending_mo
            self.disconnect_ms(conn)
        pending = self._pending_lu.pop(msg.imsi, None)
        if pending is not None:
            guard = self._lu_guards.get(msg.imsi)
            if guard is not None:
                guard.stop()
            self.sim.metrics.counter(f"{self.name}.voip_unavailable").inc()
            conn, ack = pending
            self.confirm_location_update(conn, ack)

    def _register_with_gk(self, entry: MsTableEntry) -> None:
        if entry.msisdn is None:
            self.sim.metrics.counter(f"{self.name}.no_msisdn").inc()
            return
        self._send_h323(
            entry,
            RasRrq(
                seq=self._ras_seq.next(),
                alias=entry.msisdn,
                signal_address=entry.ip,
                signal_port=PORT_H225_CS,
                endpoint_type="vgprs-ms",
                ttl=self.gk_ttl,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    def _arm_keepalive(self, entry: MsTableEntry) -> None:
        timer = self._keepalive_timers.get(entry.imsi)
        if timer is None:
            timer = Timer(
                self.sim,
                f"gk-keepalive:{entry.imsi}",
                self.gk_ttl / 2,
                lambda imsi=entry.imsi: self._keepalive_expired(imsi),
            )
            self._keepalive_timers[entry.imsi] = timer
        timer.start()

    def _keepalive_expired(self, imsi: IMSI) -> None:
        entry = self.ms_table.get(imsi)
        if entry is None or not entry.gk_registered:
            return
        if not entry.signalling_ready:
            # Idle-deactivation variant: skip while the context is down;
            # the GK entry is refreshed on the next activity instead.
            self._arm_keepalive(entry)
            return
        self.sim.metrics.counter(f"{self.name}.gk_keepalives").inc()
        self._register_with_gk(entry)

    def _registration_guard_expired(self, imsi: IMSI) -> None:
        pending = self._pending_lu.pop(imsi, None)
        if pending is None:
            return
        self.sim.metrics.counter(f"{self.name}.gk_registration_timeouts").inc()
        conn, ack = pending
        # Confirm the GSM-level registration; VoIP stays unavailable
        # until re-registration succeeds end to end.  The retry loop
        # below keeps trying with backoff, so a transient GK outage
        # heals without waiting for the next location update.
        self.confirm_location_update(conn, ack)
        self._note_gk_outage(imsi)

    def _note_gk_outage(self, imsi: IMSI) -> None:
        """A GK failure was detected for this MS: stamp the outage start
        (for the MTTR histogram) and start re-registering with backoff."""
        self._gk_outage_since.setdefault(imsi, self.sim.now)
        self._start_gk_retry(imsi)

    def _start_gk_retry(self, imsi: IMSI) -> None:
        entry = self.ms_table.get(imsi)
        if entry is None or entry.msisdn is None or entry.ip is None:
            return
        txn = self._gk_retries.get(imsi)
        if txn is not None and txn.state == "pending":
            return
        txn = ReliableTransaction(
            self.sim,
            f"gk-rereg:{imsi}",
            lambda attempt, i=imsi: self._retry_register(i),
            timeout=self.gk_retry_base,
            backoff=self.gk_retry_backoff,
            max_retries=self.gk_retry_max,
            on_give_up=lambda i=imsi: self._gk_retry_gave_up(i),
            counter_prefix=f"{self.name}.gk_rereg",
        )
        self._gk_retries[imsi] = txn
        txn.start()

    def _retry_register(self, imsi: IMSI) -> None:
        entry = self.ms_table.get(imsi)
        if entry is None or entry.ip is None or entry.msisdn is None:
            # Detached (or lost its PDP address) mid-retry: stop quietly.
            txn = self._gk_retries.pop(imsi, None)
            if txn is not None:
                txn.cancel()
            return
        self._register_with_gk(entry)

    def _gk_retry_gave_up(self, imsi: IMSI) -> None:
        # The entry stays VoIP-incapable; calls keep falling back to the
        # PSTN (or fail cleanly) until a later location update retries.
        self._gk_retries.pop(imsi, None)
        self.sim.trace.note(self.name, "GK_REREG_GAVE_UP", imsi=str(imsi))

    def _on_rcf(self, entry: MsTableEntry, msg: RasRcf) -> None:
        # Step 1.5: "The VMSC then creates the MS MM and PDP contexts for
        # the MS and stores these contexts in its MS table."
        guard = self._lu_guards.get(entry.imsi)
        if guard is not None:
            guard.stop()
        txn = self._gk_retries.pop(entry.imsi, None)
        if txn is not None:
            txn.complete()
        since = self._gk_outage_since.pop(entry.imsi, None)
        if since is not None:
            # Re-homing complete: the MS is VoIP-capable again.  The
            # histogram is the recovery-latency (MTTR) distribution the
            # fault scenarios and serve-mode alerts gate on.
            self.sim.metrics.histogram("fault.mttr.gk_registration").observe(
                self.sim.now - since
            )
            self.sim.metrics.counter(f"{self.name}.gk_recoveries").inc()
            self.sim.trace.note(
                self.name, "GK_REREGISTERED", imsi=str(entry.imsi)
            )
        entry.gk_registered = True
        self._arm_keepalive(entry)
        self.sim.trace.note(self.name, "MS_TABLE_ENTRY_CREATED", imsi=str(entry.imsi))
        pending = self._pending_lu.pop(entry.imsi, None)
        if pending is not None:
            conn, ack = pending
            # Step 1.6: confirm the location update to the MS.
            self.confirm_location_update(conn, ack)
        self._arm_idle_timer(entry)

    # ------------------------------------------------------------------
    # Detach (MS power-off)
    # ------------------------------------------------------------------
    def on_ms_detached(self, conn: RadioConn) -> None:
        """The MS announced power-off: unregister the alias at the
        gatekeeper, tear the PDP contexts down and GPRS-detach — the
        mirror image of steps 1.3-1.5."""
        entry = self.ms_table.get(conn.imsi)
        if entry is None:
            return
        self._cancel_idle_timer(conn.imsi)
        call = self._call_by_imsi.get(conn.imsi)
        if call is not None:
            self._release_call(call, cause=CAUSE_NORMAL_CLEARING)
        fb = self._fallback_by_imsi.get(conn.imsi)
        if fb is not None:
            self._drop_fallback(fb)
            self.send(
                self._pstn_trunk(),
                IsupRel(cic=fb.cic),
                interface=Interface.ISUP,
            )
        if entry.gk_registered and entry.msisdn is not None and entry.ip is not None:
            self._send_h323(
                entry,
                RasUrq(seq=self._ras_seq.next(), alias=entry.msisdn),
                dst=self.gk_ip,
                dport=PORT_H225_RAS,
                sport=PORT_H225_RAS,
            )
        entry.gk_registered = False
        keepalive = self._keepalive_timers.get(conn.imsi)
        if keepalive is not None:
            keepalive.stop()
        retry = self._gk_retries.pop(conn.imsi, None)
        if retry is not None:
            retry.cancel()
        self._gk_outage_since.pop(conn.imsi, None)
        # Give the URQ a moment to ride the context out, then tear down.
        self.sim.schedule(0.1, self._detach_gprs, conn.imsi)

    def _detach_gprs(self, imsi: IMSI) -> None:
        entry = self.ms_table.get(imsi)
        if entry is None or not entry.gprs_attached:
            return
        # GPRS detach implicitly deletes the remaining contexts at the
        # SGSN; mirror that in the MS table.
        self.send(self._sgsn(), GprsDetachRequest(imsi=imsi))

    @handles(GprsDetachAccept)
    def on_gprs_detach_accept(
        self, msg: GprsDetachAccept, src: Node, interface: str
    ) -> None:
        entry = self.ms_table.get(msg.imsi)
        if entry is None:
            return
        entry.gprs_attached = False
        for nsapi in list(entry.pdp):
            self.ms_table.clear_pdp(entry, nsapi)

    # ------------------------------------------------------------------
    # Idle deactivation (the paper's rejected variant, for ablation)
    # ------------------------------------------------------------------
    def _arm_idle_timer(self, entry: MsTableEntry) -> None:
        if self.idle_deactivate_after is None:
            return
        timer = self._idle_timers.get(entry.imsi)
        if timer is None:
            timer = Timer(
                self.sim,
                f"idle:{entry.imsi}",
                self.idle_deactivate_after,
                lambda imsi=entry.imsi: self._idle_expired(imsi),
            )
            self._idle_timers[entry.imsi] = timer
        timer.start()

    def _cancel_idle_timer(self, imsi: IMSI) -> None:
        timer = self._idle_timers.get(imsi)
        if timer is not None:
            timer.stop()

    def _idle_expired(self, imsi: IMSI) -> None:
        entry = self.ms_table.get(imsi)
        if entry is None or imsi in self._call_by_imsi:
            return
        if entry.signalling_ready:
            self.sim.metrics.counter(f"{self.name}.idle_deactivations").inc()
            self.send(
                self._sgsn(),
                DeactivatePdpContextRequest(imsi=imsi, nsapi=NSAPI_SIGNALLING),
            )

    @handles(RequestPdpContextActivation)
    def on_network_requested_activation(
        self, msg: RequestPdpContextActivation, src: Node, interface: str
    ) -> None:
        """A downlink PDU (an incoming call's Setup) is buffered at the
        GGSN for an MS whose context the idle timer tore down."""
        entry = self.ms_table.get(msg.imsi)
        if entry is None:
            return
        self.sim.metrics.counter(f"{self.name}.network_requested_pdp").inc()
        if not entry.signalling_ready:
            self._activate_pdp(entry, NSAPI_SIGNALLING)

    # ------------------------------------------------------------------
    # MO call: steps 2.2 - 2.9
    # ------------------------------------------------------------------
    def route_mo_call(self, conn: RadioConn, setup: ASetup) -> None:
        entry = self.ms_table.require(conn.imsi)
        self._cancel_idle_timer(conn.imsi)
        if not entry.gk_registered:
            # VoIP is down for this MS (GK outage or registration never
            # completed).  Fall back to the circuit path when an ISUP
            # trunk is wired; otherwise clear the attempt cleanly.
            if self._start_pstn_fallback(conn, setup.called, entry.msisdn):
                return
            self.sim.metrics.counter(f"{self.name}.calls_without_voip").inc()
            self.disconnect_ms(conn)
            return
        if not entry.signalling_ready:
            # Idle-deactivation variant: re-activate first, then resume.
            self._pending_mo[conn.imsi] = (conn, setup)
            self._activate_pdp(entry, NSAPI_SIGNALLING)
            return
        # Step 2.2 tail: "the VMSC checks the PDP context record of the
        # MS and identifies the routing path to the GGSN based on the
        # GPRS tunnel ID".
        self.sim.trace.note(
            self.name,
            "PDP_ROUTING_PATH_IDENTIFIED",
            imsi=str(conn.imsi),
            tid=str(entry.pdp_state(NSAPI_SIGNALLING).nsapi),
        )
        call = VmscCall(
            call_ref=self.sim.call_refs.next(),
            imsi=conn.imsi,
            direction="mo",
            called=setup.called,
            calling=entry.msisdn,
            placed_at=self.sim.now,
        )
        self.calls[(call.call_ref, conn.imsi)] = call
        self._call_by_imsi[conn.imsi] = call
        # The handset's call span (opened at place_call, keyed by IMSI)
        # learns the allocated H.225 call reference here, so the RAS and
        # Q.931 legs of Figure 5 attach to the same tree.
        ms_call = self.sim.spans.find_open("imsi", conn.imsi, name="call")
        if ms_call is not None:
            ms_call.bind("call_ref", call.call_ref)
        # Step 2.3: ARQ/ACF with the gatekeeper.
        self._send_h323(
            entry,
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=entry.msisdn,
                called_alias=setup.called,
                answer_call=0,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        self._arm_admission_guard(call)

    def _arm_admission_guard(self, call: VmscCall) -> None:
        call.admission_timer = Timer(
            self.sim,
            f"t-arq:{call.call_ref}",
            self.admission_timeout,
            lambda c=call: self._admission_expired(c),
        )
        call.admission_timer.start()

    def _admission_expired(self, call: VmscCall) -> None:
        if call.state != "admission" or (
            self.calls.get((call.call_ref, call.imsi)) is not call
        ):
            return
        self.sim.metrics.counter(f"{self.name}.admission_timeouts").inc()
        self.sim.trace.note(
            self.name,
            "ADMISSION_TIMEOUT",
            imsi=str(call.imsi),
            call_ref=call.call_ref,
        )
        # No ACF/ARJ within the guard: the GK is unreachable.  Mark the
        # MS VoIP-incapable (so later calls skip the wait), start the
        # re-registration loop that will re-home it when the GK returns,
        # and carry this call over the PSTN if a trunk exists.
        entry = self.ms_table.get(call.imsi)
        if entry is not None:
            entry.gk_registered = False
            self._note_gk_outage(call.imsi)
        if call.direction == "mo":
            conn = self.conns.get(call.imsi)
            self._drop_call(call)
            if conn is None:
                return
            if call.called is not None and self._start_pstn_fallback(
                conn, call.called, call.calling
            ):
                return
            self.sim.metrics.counter(f"{self.name}.calls_without_voip").inc()
            self.disconnect_ms(conn)
        else:
            self._release_call(call, cause=CAUSE_RESOURCE_UNAVAILABLE)

    def _on_acf(self, entry: MsTableEntry, msg: RasAcf) -> None:
        call = self.calls.get((msg.call_ref, entry.imsi))
        if call is None:
            return
        if call.admission_timer is not None:
            call.admission_timer.stop()
        if call.direction == "mo" and call.state == "admission":
            if msg.dest_signal_address is None:
                self._release_call(call, cause=CAUSE_NORMAL_CLEARING)
                return
            call.remote_signal = (
                msg.dest_signal_address,
                msg.dest_signal_port or PORT_H225_CS,
            )
            call.state = "setup-sent"
            # Step 2.4: Q.931 Setup to the destination through the GGSN.
            self._send_h323(
                entry,
                Q931Setup(
                    call_ref=call.call_ref,
                    called=call.called,
                    calling=call.calling,
                    signal_address=entry.ip,
                    signal_port=PORT_H225_CS,
                    media_address=entry.ip,
                    media_port=PORT_RTP,
                ),
                dst=call.remote_signal[0],
                dport=call.remote_signal[1],
                sport=PORT_H225_CS,
                tcp=True,
            )
        elif call.direction == "mt" and call.state == "admission":
            # Step 4.3 done; step 4.4: page the MS.
            call.state = "paging"
            conn = self.page(
                call.imsi,
                on_ready=lambda c: self._mt_radio_ready(call, c),
                on_failed=lambda c: self._mt_page_failed(call, c),
            )

    def _on_arj(self, entry: MsTableEntry, msg: RasArj) -> None:
        call = self.calls.get((msg.call_ref, entry.imsi))
        if call is None:
            return
        if call.admission_timer is not None:
            call.admission_timer.stop()
        self.sim.metrics.counter(f"{self.name}.admission_rejects").inc()
        if call.direction == "mo":
            conn = self.conn(call.imsi)
            self._drop_call(call)
            self.disconnect_ms(conn)
        else:
            self._release_call(call, cause=CAUSE_RESOURCE_UNAVAILABLE)

    # ------------------------------------------------------------------
    # MT call: steps 4.2 - 4.8
    # ------------------------------------------------------------------
    def _on_mt_setup(
        self, entry: MsTableEntry, msg: Q931Setup, ipv4: IPv4, sport: int
    ) -> None:
        if entry.imsi in self._call_by_imsi:
            # Busy: reject immediately.
            self._send_h323(
                entry,
                Q931ReleaseComplete(call_ref=msg.call_ref, cause=17),
                dst=msg.signal_address,
                dport=msg.signal_port,
                sport=PORT_H225_CS,
                tcp=True,
            )
            return
        self._cancel_idle_timer(entry.imsi)
        call = VmscCall(
            call_ref=msg.call_ref,
            imsi=entry.imsi,
            direction="mt",
            called=entry.msisdn,
            calling=msg.calling,
            remote_signal=(msg.signal_address, msg.signal_port),
            remote_media=(msg.media_address, msg.media_port),
            placed_at=self.sim.now,
        )
        self.calls[(call.call_ref, entry.imsi)] = call
        self._call_by_imsi[entry.imsi] = call
        # MT leg span: auto-parents to the calling terminal's span via
        # the shared call_ref; the paged MS's own call span will nest
        # under this one via the shared IMSI.
        call.span = self.sim.spans.open(
            "mt-leg",
            keys={"imsi": entry.imsi, "call_ref": call.call_ref},
            node=self.name,
            calling=str(msg.calling) if msg.calling is not None else None,
        )
        # Step 4.2 tail: Call Proceeding back to the calling party.
        self._send_q931(entry, call, Q931CallProceeding(call_ref=call.call_ref))
        # Step 4.3: the VMSC's own admission request.
        self._send_h323(
            entry,
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=entry.msisdn,
                answer_call=1,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        self._arm_admission_guard(call)

    def _mt_radio_ready(self, call: VmscCall, conn: RadioConn) -> None:
        # Step 4.5 tail: radio channel + security done; send the setup.
        call.state = "ms-setup"
        self.send_setup_to_ms(conn, call.calling)

    def _mt_page_failed(self, call: VmscCall, conn: RadioConn) -> None:
        self._release_call(call, cause=CAUSE_RESOURCE_UNAVAILABLE)

    def on_ms_alerting(self, conn: RadioConn) -> None:
        call = self._call_by_imsi.get(conn.imsi)
        if call is None or call.direction != "mt":
            return
        entry = self.ms_table.require(conn.imsi)
        # Step 4.6: Q.931 Alerting toward the calling party.
        self._send_q931(entry, call, Q931Alerting(call_ref=call.call_ref))

    def on_ms_connect(self, conn: RadioConn) -> None:
        call = self._call_by_imsi.get(conn.imsi)
        if call is None or call.direction != "mt":
            return
        entry = self.ms_table.require(conn.imsi)
        call.connected_at = self.sim.now
        call.state = "in-call"
        # Step 4.7: Q.931 Connect to the calling party.
        self._send_q931(
            entry,
            call,
            Q931Connect(
                call_ref=call.call_ref,
                media_address=entry.ip,
                media_port=PORT_RTP,
            ),
        )
        # Step 4.8: activate the real-time voice PDP context.
        self._activate_voice_pdp(entry, call)

    # ------------------------------------------------------------------
    # Q.931 progress for MO calls
    # ------------------------------------------------------------------
    def _on_call_proceeding(self, entry: MsTableEntry, msg: Q931CallProceeding) -> None:
        call = self.calls.get((msg.call_ref, entry.imsi))
        if call is not None and call.state == "setup-sent":
            call.state = "proceeding"

    def _on_alerting(self, entry: MsTableEntry, msg: Q931Alerting) -> None:
        call = self.calls.get((msg.call_ref, entry.imsi))
        if call is None:
            return
        # Step 2.7: forward alerting down to the MS (ringback).
        conn = self.conn(call.imsi)
        self.send_alerting_to_ms(conn)

    def _on_connect(self, entry: MsTableEntry, msg: Q931Connect) -> None:
        call = self.calls.get((msg.call_ref, entry.imsi))
        if call is None:
            return
        call.remote_media = (msg.media_address, msg.media_port)
        call.connected_at = self.sim.now
        call.state = "in-call"
        conn = self.conn(call.imsi)
        # Step 2.8: Connect down to the MS.
        self.send_connect_to_ms(conn)
        # Step 2.9: second PDP context for real-time VoIP packets.
        self._activate_voice_pdp(entry, call)

    def _activate_voice_pdp(self, entry: MsTableEntry, call: VmscCall) -> None:
        if entry.voice_ready:
            call.voice_pdp_pending = False
            return
        call.voice_pdp_pending = True
        self._activate_pdp(entry, NSAPI_VOICE)

    def _voice_pdp_ready(self, entry: MsTableEntry) -> None:
        call = self._call_by_imsi.get(entry.imsi)
        if call is None:
            return
        call.voice_pdp_pending = False
        self.sim.trace.note(
            self.name, "VOICE_PDP_ACTIVE", imsi=str(entry.imsi), call_ref=call.call_ref
        )
        # Flush uplink frames buffered during activation.
        frames, call.uplink_buffer = call.uplink_buffer, []
        for frame in frames:
            self._uplink_to_rtp(entry, call, frame)

    # ------------------------------------------------------------------
    # Release: steps 3.1 - 3.4
    # ------------------------------------------------------------------
    def on_ms_disconnect(self, conn: RadioConn, cause: int) -> None:
        fb = self._fallback_by_imsi.get(conn.imsi)
        if fb is not None:
            # Fallback leg: release the circuit; the RLC cleans up.
            self.send(
                self._pstn_trunk(),
                IsupRel(cic=fb.cic, cause=cause),
                interface=Interface.ISUP,
            )
            return
        call = self._call_by_imsi.get(conn.imsi)
        if call is None:
            return
        entry = self.ms_table.require(conn.imsi)
        # Step 3.2: Q.931 Release Complete to the far end.
        self._send_q931(
            entry,
            call,
            Q931ReleaseComplete(call_ref=call.call_ref, cause=CAUSE_NORMAL_CLEARING),
        )
        self._finish_release(entry, call)

    def _on_release_complete(self, entry: MsTableEntry, msg: Q931ReleaseComplete) -> None:
        """The far end released first (network-initiated clearing)."""
        call = self.calls.get((msg.call_ref, entry.imsi))
        if call is None:
            return
        self._finish_release(entry, call)
        conn = self.conn(call.imsi)
        self.disconnect_ms(conn, cause=msg.cause)

    def _finish_release(self, entry: MsTableEntry, call: VmscCall) -> None:
        call.state = "released"
        call.released_at = self.sim.now
        # Step 3.3: disengage from the gatekeeper (charging).
        duration_ms = 0
        if call.connected_at is not None:
            duration_ms = int((self.sim.now - call.connected_at) * 1000)
        self._send_h323(
            entry,
            RasDrq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=entry.msisdn,
                duration_ms=duration_ms,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        # Step 3.4: deactivate the voice PDP context.
        if entry.voice_ready or call.voice_pdp_pending:
            self.send(
                self._sgsn(),
                DeactivatePdpContextRequest(imsi=entry.imsi, nsapi=NSAPI_VOICE),
            )
        if call.span is not None:
            call.span.attrs["duration_ms"] = duration_ms
            call.span.close(status="ok")
        self._drop_call(call)
        self._arm_idle_timer(entry)

    @handles(DeactivatePdpContextAccept)
    def on_pdp_deactivated(
        self, msg: DeactivatePdpContextAccept, src: Node, interface: str
    ) -> None:
        entry = self.ms_table.get(msg.imsi)
        if entry is not None:
            self.ms_table.clear_pdp(entry, msg.nsapi)

    def _release_call(self, call: VmscCall, cause: int) -> None:
        """Abort a call from the network side (reject/paging failure)."""
        entry = self.ms_table.require(call.imsi)
        if call.remote_signal is not None:
            self._send_q931(
                entry, call, Q931ReleaseComplete(call_ref=call.call_ref, cause=cause)
            )
        self._finish_release(entry, call)
        # If the radio leg is already up (e.g. the voice PDP context was
        # refused after answer), clear it as well.
        conn = self.conns.get(call.imsi)
        if conn is not None and conn.state not in ("idle", "paging"):
            self.disconnect_ms(conn, cause=cause)

    def _drop_call(self, call: VmscCall) -> None:
        if call.admission_timer is not None:
            call.admission_timer.stop()
        if call.span is not None:
            call.span.close(status="dropped")
        self.calls.pop((call.call_ref, call.imsi), None)
        current = self._call_by_imsi.get(call.imsi)
        if current is call:
            del self._call_by_imsi[call.imsi]

    # ------------------------------------------------------------------
    # PSTN fallback: circuit path for calls during a GK outage
    # ------------------------------------------------------------------
    def _pstn_trunk(self) -> Optional[Node]:
        links = self.links_on(Interface.ISUP)
        return links[0].peer_of(self) if links else None

    def _start_pstn_fallback(
        self,
        conn: RadioConn,
        called: Optional[E164Number],
        calling: Optional[E164Number],
    ) -> bool:
        """Seize an ISUP circuit for an MO call the H.323 path cannot
        carry.  Returns ``False`` (caller clears the attempt) when no
        trunk is wired, the number is missing, or the MS already has a
        fallback leg."""
        peer = self._pstn_trunk()
        if peer is None or called is None or conn.imsi in self._fallback_by_imsi:
            return False
        cic = self._cic_seq.next()
        fb = FallbackCall(cic=cic, imsi=conn.imsi, placed_at=self.sim.now)
        self._fallback_by_cic[cic] = fb
        self._fallback_by_imsi[conn.imsi] = fb
        self.sim.metrics.counter(f"{self.name}.pstn_fallback_calls").inc()
        self.sim.trace.note(
            self.name, "PSTN_FALLBACK", imsi=str(conn.imsi), called=str(called)
        )
        self.send(
            peer,
            IsupIam(cic=cic, called=called, calling=calling),
            interface=Interface.ISUP,
        )
        return True

    def _drop_fallback(self, fb: FallbackCall) -> None:
        self._fallback_by_cic.pop(fb.cic, None)
        current = self._fallback_by_imsi.get(fb.imsi)
        if current is fb:
            del self._fallback_by_imsi[fb.imsi]

    @handles(IsupAcm)
    def on_isup_acm(self, msg: IsupAcm, src: Node, interface: str) -> None:
        fb = self._fallback_by_cic.get(msg.cic)
        if fb is None:
            return
        fb.state = "alerting"
        conn = self.conns.get(fb.imsi)
        if conn is not None:
            self.send_alerting_to_ms(conn)

    def on_isup_anm(self, msg: IsupAnm, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_isup_anm(msg, src, interface)
            return
        fb = self._fallback_by_cic.get(msg.cic)
        if fb is None:
            return
        fb.state = "in-call"
        fb.connected_at = self.sim.now
        conn = self.conns.get(fb.imsi)
        if conn is not None:
            self.send_connect_to_ms(conn)

    def on_isup_rel(self, msg: IsupRel, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_isup_rel(msg, src, interface)
            return
        self.send(src, IsupRlc(cic=msg.cic), interface=Interface.ISUP)
        fb = self._fallback_by_cic.get(msg.cic)
        if fb is None:
            return
        self._drop_fallback(fb)
        conn = self.conns.get(fb.imsi)
        if conn is not None and conn.state not in ("idle", "paging"):
            self.disconnect_ms(conn, cause=msg.cause)

    def on_isup_rlc(self, msg: IsupRlc, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_isup_rlc(msg, src, interface)
            return
        fb = self._fallback_by_cic.get(msg.cic)
        if fb is not None:
            self._drop_fallback(fb)

    # ------------------------------------------------------------------
    # Voice path: TCH <-> vocoder/PCU <-> RTP over the voice PDP context
    # ------------------------------------------------------------------
    def on_uplink_voice(self, conn: RadioConn, frame: TchFrame) -> None:
        fb = self._fallback_by_imsi.get(conn.imsi)
        if fb is not None:
            if fb.state == "in-call":
                self.send(
                    self._pstn_trunk(),
                    PcmFrame(
                        cic=fb.cic, seq=frame.seq, gen_time_us=frame.gen_time_us
                    ),
                    interface=Interface.ISUP,
                )
            return
        call = self._call_by_imsi.get(conn.imsi)
        if call is None or call.remote_media is None:
            self.sim.metrics.counter(f"{self.name}.voice_no_call").inc()
            return
        entry = self.ms_table.require(conn.imsi)
        if call.voice_pdp_pending:
            call.uplink_buffer.append(frame)
            return
        self._uplink_to_rtp(entry, call, frame)

    def _uplink_to_rtp(self, entry: MsTableEntry, call: VmscCall, frame: TchFrame) -> None:
        call.rtp_seq += 1
        rtp = RtpPacket(
            payload_type=PT_PCMU,
            seq=call.rtp_seq & 0xFFFF,
            timestamp=int(self.sim.now * 8000) & 0xFFFFFFFF,
            ssrc=call.call_ref & 0xFFFFFFFF,
            gen_time_us=frame.gen_time_us,
            frame=self.vocoder.transcode(frame.voice),
        )
        self.sim.metrics.counter(f"{self.name}.frames_transcoded_up").inc()
        self.sim.schedule(
            self.vocoder.transcode_delay,
            self._send_h323,
            entry,
            rtp,
            call.remote_media[0],
            call.remote_media[1],
            PORT_RTP,
            False,
            NSAPI_VOICE,
        )

    def on_pcm_frame(self, frame: PcmFrame, src: Node, interface: str) -> None:
        if interface == Interface.E:
            super().on_pcm_frame(frame, src, interface)
            return
        fb = self._fallback_by_cic.get(frame.cic)
        if fb is None:
            return
        conn = self.conns.get(fb.imsi)
        if conn is None:
            return
        tch = TchFrame(
            ti=conn.ti or 0,
            imsi=conn.imsi,
            seq=frame.seq,
            gen_time_us=frame.gen_time_us,
        )
        self.send_voice_to_ms(conn, tch)

    def _on_rtp(self, entry: MsTableEntry, packet: RtpPacket) -> None:
        call = self._call_by_imsi.get(entry.imsi)
        if call is None:
            return
        conn = self.conn(entry.imsi)
        tch = TchFrame(
            ti=conn.ti or 0,
            imsi=entry.imsi,
            seq=packet.seq,
            gen_time_us=packet.gen_time_us,
            voice=self.vocoder.transcode(packet.frame)[: GSM_FR.frame_bytes],
        )
        self.sim.metrics.counter(f"{self.name}.frames_transcoded_down").inc()
        self.sim.schedule(
            self.vocoder.transcode_delay, self.send_voice_to_ms, conn, tch
        )

    # ------------------------------------------------------------------
    # Inner H.323 dispatch
    # ------------------------------------------------------------------
    def _send_q931(self, entry: MsTableEntry, call: VmscCall, message: Packet) -> None:
        assert call.remote_signal is not None
        self._send_h323(
            entry,
            message,
            dst=call.remote_signal[0],
            dport=call.remote_signal[1],
            sport=PORT_H225_CS,
            tcp=True,
        )

    def _on_h323(
        self, entry: MsTableEntry, message: Packet, ipv4: IPv4, sport: int
    ) -> None:
        if isinstance(message, RasRcf):
            self._on_rcf(entry, message)
        elif isinstance(message, RasAcf):
            self._on_acf(entry, message)
        elif isinstance(message, RasArj):
            self._on_arj(entry, message)
        elif isinstance(message, RasDcf):
            pass
        elif isinstance(message, Q931Setup):
            self._on_mt_setup(entry, message, ipv4, sport)
        elif isinstance(message, Q931CallProceeding):
            self._on_call_proceeding(entry, message)
        elif isinstance(message, Q931Alerting):
            self._on_alerting(entry, message)
        elif isinstance(message, Q931Connect):
            self._on_connect(entry, message)
        elif isinstance(message, Q931ReleaseComplete):
            self._on_release_complete(entry, message)
        elif isinstance(message, RtpPacket):
            self._on_rtp(entry, message)
        else:
            self.sim.metrics.counter(f"{self.name}.h323_unhandled").inc()

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def call_for(self, imsi: IMSI) -> Optional[VmscCall]:
        return self._call_by_imsi.get(imsi)

    def fallback_for(self, imsi: IMSI) -> Optional[FallbackCall]:
        return self._fallback_by_imsi.get(imsi)
