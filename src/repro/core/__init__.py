"""vGPRS core: the VMSC softswitch and the comparison networks.

* :class:`~repro.core.vmsc.Vmsc` — the paper's contribution (§2-§5);
* :class:`~repro.core.ms_table.MsTable` — the VMSC's MM + PDP context
  store;
* :mod:`~repro.core.network` — the vGPRS topology builder + latency
  profile;
* :mod:`~repro.core.baseline_gsm` — classic GSM network (Figure 7);
* :mod:`~repro.core.baseline_3gtr` — the 3G TR 23.923 approach (§6);
* :mod:`~repro.core.flows` — golden message flows transcribed from
  Figures 4-6;
* :mod:`~repro.core.scenarios` — high-level drivers used by examples,
  tests and benchmarks.
"""

from repro.core.ms_table import MsTable, MsTableEntry
from repro.core.vmsc import Vmsc
from repro.core.network import LatencyProfile, VgprsNetwork, build_vgprs_network

__all__ = [
    "MsTable",
    "MsTableEntry",
    "Vmsc",
    "LatencyProfile",
    "VgprsNetwork",
    "build_vgprs_network",
]
