"""Classic GSM baseline network — the Figure 7 world.

A home PLMN (UK: HLR + GMSC) and a visited PLMN (Hong Kong: classic
circuit-switched MSC + VLR + BSS), joined by international SS7 and ISUP
trunks.  Call delivery to a roamer goes dialled-number -> GMSC ->
HLR/VLR interrogation -> MSRN -> re-dial, producing the two
international circuits the paper's tromboning discussion counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.identities import IMSI, E164Number
from repro.core.network import LatencyProfile
from repro.gsm.bsc import Bsc
from repro.gsm.bts import Bts
from repro.gsm.gmsc import Gmsc
from repro.gsm.hlr import Hlr
from repro.gsm.ms import MobileStation
from repro.gsm.msc import GsmMsc
from repro.gsm.subscriber import SubscriberRecord
from repro.gsm.vlr import Vlr
from repro.net.interfaces import Interface
from repro.net.node import Network
from repro.pstn.numbering import HONG_KONG, UK
from repro.pstn.phone import PstnPhone
from repro.pstn.switch import PstnSwitch
from repro.pstn.trunks import TrunkLedger
from repro.sim.kernel import Simulator

#: The UK mobile prefix owned by the home PLMN in the shipped scenarios.
UK_MOBILE_PREFIX = "+447"
#: The visited VLR's roaming-number prefix (Hong Kong numbers).
HK_MSRN_PREFIX = "+85293600"


@dataclass
class ClassicRoamingNetwork:
    """Figure 7 topology, fully wired."""

    sim: Simulator
    net: Network
    ledger: TrunkLedger
    hlr_uk: Hlr
    gmsc_uk: Gmsc
    msc_hk: GsmMsc
    vlr_hk: Vlr
    bsc_hk: Bsc
    bts_hk: Bts
    exchange_hk: PstnSwitch
    phones: Dict[str, PstnPhone] = field(default_factory=dict)
    roamers: Dict[str, MobileStation] = field(default_factory=dict)

    def add_roamer(
        self, name: str, imsi: str, msisdn: str, answer_delay: float = 1.0
    ) -> MobileStation:
        """A UK subscriber currently camped on the Hong Kong cell."""
        subscriber = SubscriberRecord(imsi=IMSI(imsi), msisdn=E164Number.parse(msisdn))
        self.hlr_uk.add_subscriber(subscriber)
        ms = MobileStation(
            self.sim,
            name,
            imsi=subscriber.imsi,
            msisdn=subscriber.msisdn,
            ki=subscriber.ki,
            serving_bts=self.bts_hk.name,
            lai="LAI-852-1",
            answer_delay=answer_delay,
        )
        self.net.add(ms)
        self.net.connect(ms, self.bts_hk, Interface.UM, 0.010, wire_fidelity=True)
        self.roamers[name] = ms
        return ms

    def add_phone(self, name: str, number: str, answer_delay: float = 1.0) -> PstnPhone:
        """A fixed-line subscriber on the Hong Kong exchange."""
        phone = PstnPhone(
            self.sim, name, E164Number.parse(number), answer_delay=answer_delay
        )
        self.net.add(phone)
        self.net.connect(phone, self.exchange_hk, Interface.ISUP, 0.002)
        self.exchange_hk.add_local(phone.number, phone.name)
        self.phones[name] = phone
        return phone


def build_classic_roaming_network(
    seed: int = 0,
    latencies: LatencyProfile = LatencyProfile(),
    sim: Simulator = None,
) -> ClassicRoamingNetwork:
    """Wire the Figure 7 topology."""
    sim = sim if sim is not None else Simulator(seed=seed)
    net = Network(sim)
    ledger = TrunkLedger()

    hlr_uk = net.add(Hlr(sim, "HLR-UK"))
    gmsc_uk = net.add(Gmsc(sim, "GMSC-UK", country_code=UK, ledger=ledger))
    gmsc_uk.add_home_prefix(UK_MOBILE_PREFIX)

    exchange_hk = net.add(
        PstnSwitch(sim, "EX-HK", country_code=HONG_KONG, ledger=ledger,
                   cic_start=100000)
    )
    msc_hk = net.add(GsmMsc(sim, "MSC-HK"))
    vlr_hk = net.add(
        Vlr(sim, "VLR-HK", country_code=HONG_KONG, msrn_prefix="93600")
    )
    bsc_hk = net.add(Bsc(sim, "BSC-HK"))
    bts_hk = net.add(Bts(sim, "BTS-HK"))

    # SS7 signalling.
    net.connect(gmsc_uk, hlr_uk, Interface.C, latencies.ss7, wire_fidelity=True)
    net.connect(msc_hk, vlr_hk, Interface.B, latencies.ss7, wire_fidelity=True)
    net.connect(vlr_hk, hlr_uk, Interface.D, latencies.international,
                wire_fidelity=True)

    # Radio access.
    net.connect(bsc_hk, msc_hk, Interface.A, latencies.a, wire_fidelity=True)
    net.connect(bts_hk, bsc_hk, Interface.ABIS, latencies.abis, wire_fidelity=True)

    # Trunks: the single international route between Hong Kong and the
    # UK, and the local trunk from the exchange to the visited MSC.
    net.connect(exchange_hk, gmsc_uk, Interface.ISUP, latencies.international,
                wire_fidelity=True)
    net.connect(exchange_hk, msc_hk, Interface.ISUP, latencies.isup,
                wire_fidelity=True)

    # Routing tables.
    exchange_hk.add_route("+44", gmsc_uk.name, international=True)
    exchange_hk.add_route(HK_MSRN_PREFIX, msc_hk.name, international=False)
    gmsc_uk.add_route("+852", exchange_hk.name, international=True)

    return ClassicRoamingNetwork(
        sim=sim,
        net=net,
        ledger=ledger,
        hlr_uk=hlr_uk,
        gmsc_uk=gmsc_uk,
        msc_hk=msc_hk,
        vlr_hk=vlr_hk,
        bsc_hk=bsc_hk,
        bts_hk=bts_hk,
        exchange_hk=exchange_hk,
    )
