"""Random call workloads.

Drives a population of MS/terminal pairs with Poisson call arrivals in
both directions (MS-originated and MS-terminated), optional talk spurts
and random hold times — the soak harness behind the stress tests and the
mixed-traffic example.  All randomness comes from the simulator's named
RNG streams, so a seed fixes the entire workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.network import VgprsNetwork
from repro.gsm.ms import MobileStation
from repro.h323.terminal import H323Terminal
from repro.sim.process import Signal, spawn, wait_for


@dataclass
class WorkloadStats:
    """Aggregate outcome counts for a workload run."""

    attempted_mo: int = 0
    attempted_mt: int = 0
    connected: int = 0
    failed: int = 0
    skipped_busy: int = 0

    @property
    def attempted(self) -> int:
        return self.attempted_mo + self.attempted_mt

    @property
    def completion_ratio(self) -> float:
        return self.connected / self.attempted if self.attempted else 0.0


@dataclass
class CallWorkload:
    """A random-call driver over MS/terminal pairs.

    Parameters
    ----------
    call_rate:
        Mean calls per second *per pair* (Poisson arrivals).
    hold_range:
        Uniform call-duration bounds in seconds.
    mt_fraction:
        Probability an arrival is terminal->MS rather than MS->terminal.
    talk:
        Generate voice frames during each call.
    use_signals:
        Block on ``Signal`` pulses from the MS/terminal state machines
        instead of polling every 50 ms.  Event-driven waits cut the
        workload's own event count by an order of magnitude on soak runs;
        the polling path is kept for A/B determinism checks.
    media:
        ``"fluid"`` (default) models talk spurts analytically — one
        calibration probe and one flush per spurt instead of an event
        every 20 ms (see :mod:`repro.media.fluid`); ``"events"`` keeps
        the per-frame path, byte-identical to previous releases.
    """

    nw: VgprsNetwork
    pairs: List[tuple]
    call_rate: float = 0.2
    hold_range: tuple = (2.0, 8.0)
    mt_fraction: float = 0.4
    talk: bool = True
    use_signals: bool = True
    media: str = "fluid"
    stats: WorkloadStats = field(default_factory=WorkloadStats)
    _procs: list = field(default_factory=list)

    def start(self) -> None:
        from repro.core.sweeps import apply_media

        if self.talk:
            apply_media(self.nw.sim, self.media)
        for ms, term in self.pairs:
            self._procs.append(
                spawn(self.nw.sim, self._pair_loop(ms, term))
            )

    def stop(self) -> None:
        for proc in self._procs:
            proc.interrupt()
        self._procs.clear()

    def progress_line(self) -> str:
        """One-line workload summary for heartbeat ``extra`` hooks."""
        s = self.stats
        return (
            f"calls={s.attempted} ok={s.connected} fail={s.failed} "
            f"busy={s.skipped_busy} ratio={s.completion_ratio:.2f}"
        )

    # ------------------------------------------------------------------
    def _pair_loop(self, ms: MobileStation, term: H323Terminal):
        sim = self.nw.sim
        rng = sim.rng.stream(f"workload.{ms.name}")
        while True:
            yield rng.expovariate(self.call_rate)
            mt = rng.random() < self.mt_fraction
            if ms.state != "idle" or (not mt and term.calls):
                self.stats.skipped_busy += 1
                continue
            hold = rng.uniform(*self.hold_range)
            if mt:
                self.stats.attempted_mt += 1
                yield from self._run_mt(ms, term, hold)
            else:
                self.stats.attempted_mo += 1
                yield from self._run_mo(ms, term, hold)

    def _wait(self, predicate, timeout: float, signal: Signal):
        """Suspend until *predicate* holds or *timeout* elapses.

        Event-driven (one wake-up per relevant state change) when
        ``use_signals``; otherwise the legacy 50 ms polling loop."""
        if self.use_signals:
            yield wait_for(signal, predicate, timeout)
            return
        waited = 0.0
        while not predicate() and waited < timeout:
            yield 0.05
            waited += 0.05

    def _run_mo(self, ms: MobileStation, term: H323Terminal, hold: float):
        try:
            ms.place_call(term.alias)
        except Exception:
            self.stats.failed += 1
            return
        yield from self._wait(
            lambda: ms.state in ("in-call", "idle"), 15.0, ms.state_changed
        )
        if ms.state != "in-call":
            self.stats.failed += 1
            return
        self.stats.connected += 1
        if self.talk:
            ms.start_talking(duration=hold)
        yield hold
        if ms.state == "in-call":
            ms.hangup()
        yield from self._wait(lambda: ms.state == "idle", 10.0, ms.state_changed)

    def _run_mt(self, ms: MobileStation, term: H323Terminal, hold: float):
        try:
            ref = term.place_call(ms.msisdn)
        except Exception:
            self.stats.failed += 1
            return
        yield from self._wait(
            lambda: ref not in term.calls
            or term.calls[ref].state == "in-call",
            15.0,
            term.calls_changed,
        )
        call = term.calls.get(ref)
        if call is None or call.state != "in-call":
            self.stats.failed += 1
            return
        self.stats.connected += 1
        if self.talk:
            term.start_talking(ref, duration=hold)
        yield hold
        if ref in term.calls:
            term.hangup(ref)
        yield from self._wait(lambda: ms.state == "idle", 10.0, ms.state_changed)


def build_population(
    nw: VgprsNetwork,
    size: int,
    answer_delay: float = 0.4,
    imsi_base: int = 466920000002000,
    msisdn_base: int = 886935100000,
) -> List[tuple]:
    """Provision *size* MS/terminal pairs on the network."""
    pairs = []
    for i in range(size):
        ms = nw.add_ms(
            f"WMS{i}",
            str(imsi_base + i),
            f"+{msisdn_base + i}",
            answer_delay=answer_delay,
        )
        term = nw.add_terminal(
            f"WTERM{i}", f"+88622210{i:04d}", answer_delay=answer_delay
        )
        pairs.append((ms, term))
    return pairs
