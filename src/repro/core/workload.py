"""Random call workloads.

Two drivers share this module:

* :class:`CallWorkload` — the *closed-loop* soak harness: each pair
  draws its next Poisson arrival only after its previous call finished,
  so offered load backs off when the system slows down.
* :class:`OpenLoopWorkload` — the *open-loop* service workload behind
  ``python -m repro serve``: one global non-homogeneous Poisson arrival
  process (calls/hour shaped by a :class:`DiurnalProfile`, thinned by
  the Lewis–Shedler method) that keeps offering calls regardless of how
  the system copes, plus an optional mass re-registration avalanche.

All randomness comes from the simulator's named RNG streams, so a seed
fixes the entire workload; the open-loop driver additionally draws every
per-call decision (direction, pair, hold time) *at admission time* from
the arrival stream, which makes the offered schedule a pure function of
``(seed, profile)`` — byte-identical between batch and served/paced
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.network import VgprsNetwork
from repro.errors import SimulationError
from repro.gsm.ms import MobileStation
from repro.h323.terminal import H323Terminal
from repro.sim.process import Signal, spawn, wait_for


@dataclass
class WorkloadStats:
    """Aggregate outcome counts for a workload run."""

    attempted_mo: int = 0
    attempted_mt: int = 0
    connected: int = 0
    failed: int = 0
    skipped_busy: int = 0

    @property
    def attempted(self) -> int:
        return self.attempted_mo + self.attempted_mt

    @property
    def completion_ratio(self) -> float:
        return self.connected / self.attempted if self.attempted else 0.0


@dataclass
class CallWorkload:
    """A random-call driver over MS/terminal pairs.

    Parameters
    ----------
    call_rate:
        Mean calls per second *per pair* (Poisson arrivals).
    hold_range:
        Uniform call-duration bounds in seconds.
    mt_fraction:
        Probability an arrival is terminal->MS rather than MS->terminal.
    talk:
        Generate voice frames during each call.
    use_signals:
        Block on ``Signal`` pulses from the MS/terminal state machines
        instead of polling every 50 ms.  Event-driven waits cut the
        workload's own event count by an order of magnitude on soak runs;
        the polling path is kept for A/B determinism checks.
    media:
        ``"fluid"`` (default) models talk spurts analytically — one
        calibration probe and one flush per spurt instead of an event
        every 20 ms (see :mod:`repro.media.fluid`); ``"events"`` keeps
        the per-frame path, byte-identical to previous releases.
    """

    nw: VgprsNetwork
    pairs: List[tuple]
    call_rate: float = 0.2
    hold_range: tuple = (2.0, 8.0)
    mt_fraction: float = 0.4
    talk: bool = True
    use_signals: bool = True
    media: str = "fluid"
    stats: WorkloadStats = field(default_factory=WorkloadStats)
    _procs: list = field(default_factory=list)

    def start(self) -> None:
        from repro.core.sweeps import apply_media

        if self.talk:
            apply_media(self.nw.sim, self.media)
        for ms, term in self.pairs:
            self._procs.append(
                spawn(self.nw.sim, self._pair_loop(ms, term))
            )

    def stop(self) -> None:
        for proc in self._procs:
            proc.interrupt()
        self._procs.clear()

    def progress_line(self) -> str:
        """One-line workload summary for heartbeat ``extra`` hooks."""
        s = self.stats
        return (
            f"calls={s.attempted} ok={s.connected} fail={s.failed} "
            f"busy={s.skipped_busy} ratio={s.completion_ratio:.2f}"
        )

    # ------------------------------------------------------------------
    def _pair_loop(self, ms: MobileStation, term: H323Terminal):
        sim = self.nw.sim
        rng = sim.rng.stream(f"workload.{ms.name}")
        while True:
            yield rng.expovariate(self.call_rate)
            mt = rng.random() < self.mt_fraction
            if ms.state != "idle" or (not mt and term.calls):
                self.stats.skipped_busy += 1
                continue
            hold = rng.uniform(*self.hold_range)
            if mt:
                self.stats.attempted_mt += 1
                yield from self._run_mt(ms, term, hold)
            else:
                self.stats.attempted_mo += 1
                yield from self._run_mo(ms, term, hold)

    def _wait(self, predicate, timeout: float, signal: Signal):
        """Suspend until *predicate* holds or *timeout* elapses.

        Event-driven (one wake-up per relevant state change) when
        ``use_signals``; otherwise the legacy 50 ms polling loop."""
        if self.use_signals:
            yield wait_for(signal, predicate, timeout)
            return
        waited = 0.0
        while not predicate() and waited < timeout:
            yield 0.05
            waited += 0.05

    def _run_mo(self, ms: MobileStation, term: H323Terminal, hold: float):
        try:
            ms.place_call(term.alias)
        except Exception:
            self.stats.failed += 1
            return
        yield from self._wait(
            lambda: ms.state in ("in-call", "idle"), 15.0, ms.state_changed
        )
        if ms.state != "in-call":
            self.stats.failed += 1
            return
        self.stats.connected += 1
        if self.talk:
            ms.start_talking(duration=hold)
        yield hold
        if ms.state == "in-call":
            ms.hangup()
        yield from self._wait(lambda: ms.state == "idle", 10.0, ms.state_changed)

    def _run_mt(self, ms: MobileStation, term: H323Terminal, hold: float):
        try:
            ref = term.place_call(ms.msisdn)
        except Exception:
            self.stats.failed += 1
            return
        yield from self._wait(
            lambda: ref not in term.calls
            or term.calls[ref].state == "in-call",
            15.0,
            term.calls_changed,
        )
        call = term.calls.get(ref)
        if call is None or call.state != "in-call":
            self.stats.failed += 1
            return
        self.stats.connected += 1
        if self.talk:
            term.start_talking(ref, duration=hold)
        yield hold
        if ref in term.calls:
            term.hangup(ref)
        yield from self._wait(lambda: ms.state == "idle", 10.0, ms.state_changed)


def build_population(
    nw: VgprsNetwork,
    size: int,
    answer_delay: float = 0.4,
    imsi_base: int = 466920000002000,
    msisdn_base: int = 886935100000,
) -> List[tuple]:
    """Provision *size* MS/terminal pairs on the network."""
    pairs = []
    for i in range(size):
        ms = nw.add_ms(
            f"WMS{i}",
            str(imsi_base + i),
            f"+{msisdn_base + i}",
            answer_delay=answer_delay,
        )
        term = nw.add_terminal(
            f"WTERM{i}", f"+88622210{i:04d}", answer_delay=answer_delay
        )
        pairs.append((ms, term))
    return pairs


def build_classic_population(
    nw: Any,
    size: int,
    answer_delay: float = 0.4,
    imsi_base: int = 234150000001000,
    msisdn_base: int = 447700910000,
) -> List[tuple]:
    """Provision *size* roamer/phone pairs on a
    :class:`~repro.core.baseline_gsm.ClassicRoamingNetwork` — the
    Figure 7 world, where every delivered call trombones through two
    international trunks.  Pairs feed :class:`OpenLoopWorkload` with
    ``classic=True`` (PSTN phone dials the roamer)."""
    pairs = []
    for i in range(size):
        ms = nw.add_roamer(
            f"RMS{i}",
            str(imsi_base + i),
            f"+{msisdn_base + i}",
            answer_delay=answer_delay,
        )
        phone = nw.add_phone(
            f"RPH{i}", f"+8522123{i:04d}", answer_delay=answer_delay
        )
        pairs.append((ms, phone))
    return pairs


# ----------------------------------------------------------------------
# Open-loop service workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiurnalProfile:
    """A piecewise-linear calls/hour arrival-rate profile over sim time.

    ``points`` is a sorted sequence of ``(sim_seconds, calls_per_hour)``
    knots: between knots the rate interpolates linearly, before the
    first and after the last it clamps.  With ``period`` set, time wraps
    so a (possibly compressed) day repeats.  ``avalanche_at`` schedules
    a mass re-registration storm: every idle registered MS powers off
    and re-attaches within ``avalanche_spread`` seconds — the outage-
    recovery shape that stresses the registration path (Figure 4) the
    way no steady-state Poisson load does.
    """

    points: Tuple[Tuple[float, float], ...]
    period: Optional[float] = None
    avalanche_at: Optional[float] = None
    avalanche_spread: float = 2.0

    def __post_init__(self) -> None:
        if not self.points:
            raise SimulationError("DiurnalProfile needs at least one point")
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise SimulationError(
                f"DiurnalProfile points must be time-sorted: {self.points!r}"
            )
        if any(rate < 0 for _, rate in self.points):
            raise SimulationError("DiurnalProfile rates must be >= 0")
        if self.peak_rate <= 0:
            raise SimulationError("DiurnalProfile peak rate must be > 0")
        if self.period is not None and self.period <= 0:
            raise SimulationError(f"period must be > 0, got {self.period!r}")

    @property
    def peak_rate(self) -> float:
        """The profile's maximum rate (the thinning envelope), calls/h."""
        return max(rate for _, rate in self.points)

    def rate_at(self, t: float) -> float:
        """Offered rate in calls/hour at sim time *t*."""
        if self.period is not None:
            t = t % self.period
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        for (t0, r0), (t1, r1) in zip(points, points[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return r1
                frac = (t - t0) / (t1 - t0)
                return r0 + (r1 - r0) * frac
        return points[-1][1]  # pragma: no cover - clamped above

    # -- shapes ---------------------------------------------------------
    @classmethod
    def flat(cls, calls_per_hour: float, **kwargs: Any) -> "DiurnalProfile":
        """A constant offered rate."""
        return cls(points=((0.0, calls_per_hour),), **kwargs)

    @classmethod
    def busy_hour(
        cls,
        base: float,
        peak: float,
        period: float = 240.0,
        **kwargs: Any,
    ) -> "DiurnalProfile":
        """A repeating compressed day: quiet, ramp to the busy-hour
        *peak* at mid-period, ramp back down.  The default 240 s period
        compresses a day enough that a short serve run crosses several
        busy hours."""
        return cls(
            points=(
                (0.0, base),
                (period * 0.35, base),
                (period * 0.50, peak),
                (period * 0.65, base),
                (period, base),
            ),
            period=period,
            **kwargs,
        )

    @classmethod
    def ramp(
        cls, start: float, end: float, duration: float, **kwargs: Any
    ) -> "DiurnalProfile":
        """A single linear ramp from *start* to *end* calls/hour over
        *duration* seconds, then steady at *end*."""
        return cls(points=((0.0, start), (duration, end)), **kwargs)


@dataclass
class OpenLoopStats(WorkloadStats):
    """Open-loop outcome counts: offered load accounting on top of the
    per-call outcomes."""

    offered: int = 0
    admitted: int = 0
    blocked_busy: int = 0
    refused_draining: int = 0
    reregistrations: int = 0

    @property
    def admission_ratio(self) -> float:
        return self.admitted / self.offered if self.offered else 0.0


@dataclass
class OpenLoopWorkload:
    """Open-loop Poisson call generator over a provisioned population.

    One global arrival process draws candidate arrivals at the profile's
    peak rate and thins them (Lewis–Shedler) against
    ``profile.rate_at(now)``, so the *offered* load follows the diurnal
    shape and never backs off when the system is slow — the load shape
    under which the paper's trunk-count and setup-delay claims are
    operationally meaningful.  Admitted arrivals run as one-shot call
    processes (event-driven waits); every random decision is drawn at
    admission from the arrival stream, so ``arrivals`` is a pure
    function of ``(seed, profile)`` and is byte-identical between batch
    runs and paced serve runs at any ``--rate``.

    With ``classic=True`` the pairs are ``(roamer MS, PSTN phone)`` on
    the Figure 7 classic-GSM topology and every arrival is a
    phone-to-roamer call — the tromboning direction, seizing two
    international trunks per call.
    """

    nw: Any
    pairs: List[tuple]
    profile: DiurnalProfile
    hold_range: tuple = (2.0, 8.0)
    mt_fraction: float = 0.4
    talk: bool = False
    media: str = "fluid"
    classic: bool = False
    stats: OpenLoopStats = field(default_factory=OpenLoopStats)
    #: Admitted arrivals: ``(t, ms_name, kind, hold)`` — the determinism
    #: witness compared across batch/served/paced runs.
    arrivals: List[Tuple[float, str, str, float]] = field(default_factory=list)
    admitting: bool = True
    _active: int = 0
    _procs: list = field(default_factory=list)
    _arrival_proc: Any = None

    def start(self) -> None:
        sim = self.nw.sim
        if self.talk and not self.classic:
            from repro.core.sweeps import apply_media

            apply_media(sim, self.media)
        self._arrival_proc = spawn(sim, self._arrival_loop())
        if self.profile.avalanche_at is not None:
            sim.schedule_at(
                max(self.profile.avalanche_at, sim.now), self._avalanche
            )

    def stop_admitting(self) -> None:
        """Refuse new arrivals (graceful drain); active calls finish."""
        self.admitting = False

    def stop(self) -> None:
        """Hard stop: interrupt the arrival process and every in-flight
        call process."""
        if self._arrival_proc is not None:
            self._arrival_proc.interrupt()
            self._arrival_proc = None
        for proc in self._procs:
            proc.interrupt()
        self._procs.clear()

    @property
    def active(self) -> int:
        """In-flight one-shot call processes (drain watches this)."""
        return self._active

    def progress_line(self) -> str:
        """One-line workload summary for heartbeat ``extra`` hooks."""
        s = self.stats
        return (
            f"offered={s.offered} ok={s.connected} fail={s.failed} "
            f"busy={s.blocked_busy} active={self._active} "
            f"rereg={s.reregistrations}"
        )

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def _arrival_loop(self):
        sim = self.nw.sim
        rng = sim.rng.stream("openloop.arrivals")
        metrics = sim.metrics
        peak = self.profile.peak_rate
        per_second = peak / 3600.0
        while True:
            yield rng.expovariate(per_second)
            # Thinning: accept a candidate with probability
            # rate(now)/peak.  The draw happens unconditionally so the
            # stream position depends only on elapsed arrivals.
            if rng.random() * peak > self.profile.rate_at(sim.now):
                continue
            if not self.admitting:
                self.stats.refused_draining += 1
                metrics.counter("openloop.refused").inc()
                continue
            self.stats.offered += 1
            metrics.counter("openloop.offered").inc()
            mt = True if self.classic else rng.random() < self.mt_fraction
            hold = rng.uniform(*self.hold_range)
            pair = self._pick_pair(rng, mt)
            if pair is None:
                self.stats.blocked_busy += 1
                metrics.counter("openloop.blocked_busy").inc()
                continue
            ms, peer = pair
            kind = "mt" if mt else "mo"
            self.arrivals.append((sim.now, ms.name, kind, hold))
            self.stats.admitted += 1
            metrics.counter("openloop.admitted").inc()
            if self.classic:
                body = self._call_classic(ms, peer, hold)
            elif mt:
                body = self._call_mt(ms, peer, hold)
            else:
                body = self._call_mo(ms, peer, hold)
            self._procs.append(spawn(sim, body))
            self._procs = [p for p in self._procs if not p.finished]

    def _pick_pair(self, rng, mt: bool) -> Optional[tuple]:
        """A uniformly random *available* pair, or ``None`` when every
        pair is busy (the arrival is lost, not queued — open loop)."""
        candidates = []
        for ms, peer in self.pairs:
            if ms.state != "idle" or not ms.registered:
                continue
            if self.classic:
                if peer.state != "idle":
                    continue
            elif not mt and peer.calls:
                continue
            candidates.append((ms, peer))
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]

    # ------------------------------------------------------------------
    # One-shot call processes
    # ------------------------------------------------------------------
    def _call_mo(self, ms: MobileStation, term: H323Terminal, hold: float):
        self._begin()
        try:
            try:
                ms.place_call(term.alias)
            except Exception:
                self.stats.failed += 1
                return
            self.stats.attempted_mo += 1
            yield wait_for(
                ms.state_changed,
                lambda: ms.state in ("in-call", "idle"),
                15.0,
            )
            if ms.state != "in-call":
                self.stats.failed += 1
                return
            self.stats.connected += 1
            if self.talk:
                ms.start_talking(duration=hold)
            yield hold
            if ms.state == "in-call":
                ms.hangup()
            yield wait_for(
                ms.state_changed,
                lambda: ms.state in ("idle", "off"),
                10.0,
            )
        finally:
            self._end()

    def _call_mt(self, ms: MobileStation, term: H323Terminal, hold: float):
        self._begin()
        try:
            try:
                ref = term.place_call(ms.msisdn)
            except Exception:
                self.stats.failed += 1
                return
            self.stats.attempted_mt += 1
            yield wait_for(
                term.calls_changed,
                lambda: ref not in term.calls
                or term.calls[ref].state == "in-call",
                15.0,
            )
            call = term.calls.get(ref)
            if call is None or call.state != "in-call":
                self.stats.failed += 1
                return
            self.stats.connected += 1
            if self.talk:
                term.start_talking(ref, duration=hold)
            yield hold
            if ref in term.calls:
                term.hangup(ref)
            yield wait_for(
                ms.state_changed,
                lambda: ms.state in ("idle", "off"),
                10.0,
            )
        finally:
            self._end()

    def _call_classic(self, ms: MobileStation, phone: Any, hold: float):
        """Figure 7 direction: the PSTN phone dials the roamer; every
        delivered call trombones over two international circuits."""
        self._begin()
        try:
            try:
                phone.place_call(ms.msisdn)
            except Exception:
                self.stats.failed += 1
                return
            self.stats.attempted_mt += 1
            yield wait_for(
                ms.state_changed, lambda: ms.state == "in-call", 20.0
            )
            if ms.state != "in-call":
                self.stats.failed += 1
                if phone.state in ("calling", "ringing-remote"):
                    phone.hangup()
                return
            self.stats.connected += 1
            yield hold
            if ms.state == "in-call":
                ms.hangup()
            yield wait_for(
                ms.state_changed,
                lambda: ms.state in ("idle", "off"),
                10.0,
            )
        finally:
            self._end()

    def _begin(self) -> None:
        self._active += 1
        self.nw.sim.metrics.gauge("openloop.active_calls").inc()

    def _end(self) -> None:
        self._active -= 1
        self.nw.sim.metrics.gauge("openloop.active_calls").dec()

    # ------------------------------------------------------------------
    # Mass re-registration avalanche
    # ------------------------------------------------------------------
    def _avalanche(self) -> None:
        """Power-cycle the whole registered population; re-attaches are
        spread uniformly over ``avalanche_spread`` seconds, producing
        the registration storm a recovered outage offers.  Handsets
        caught mid-call power-cycle as soon as their call tears down
        (the MS state machine forbids a detach while in-call).  Every
        stagger delay is drawn up front in pair order, so the schedule
        never depends on call-completion order."""
        sim = self.nw.sim
        rng = sim.rng.stream("openloop.avalanche")
        spread = self.profile.avalanche_spread
        for ms, _peer in self.pairs:
            delay = rng.uniform(0.0, spread)
            if not ms.registered:
                continue
            if ms.state == "idle":
                ms.power_off()
                sim.schedule(delay, self._reattach, ms)
            else:
                self._procs.append(
                    spawn(sim, self._deferred_cycle(ms, delay))
                )

    def _deferred_cycle(self, ms: MobileStation, delay: float):
        """Wait out an in-progress call, then power-cycle like the rest
        of the avalanche population."""
        yield wait_for(ms.state_changed, lambda: ms.state == "idle", 120.0)
        if ms.state != "idle":
            return
        ms.power_off()
        yield delay
        self._reattach(ms)

    def _reattach(self, ms: MobileStation) -> None:
        sim = self.nw.sim
        started = sim.now
        previous = ms.on_registered

        def note_registered() -> None:
            sim.metrics.histogram("calls.registration_latency").observe(
                sim.now - started
            )
            sim.metrics.counter("openloop.reregistrations").inc()
            self.stats.reregistrations += 1
            ms.on_registered = previous
            if previous is not None:
                previous()

        ms.on_registered = note_registered
        ms.power_on()
