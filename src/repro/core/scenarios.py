"""High-level scenario drivers.

Thin orchestration over the network builders: power an MS on and wait
for registration, place calls in both directions, measure setup delays
and per-node signalling counts.  Used by the examples, the integration
tests and every benchmark, so that all three exercise identical code
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CallSetupError, RegistrationError
from repro.core.network import VgprsNetwork
from repro.gsm.ms import MobileStation
from repro.h323.terminal import H323Terminal


@dataclass
class CallOutcome:
    """Timing of one call's setup phases (simulated seconds)."""

    dialled_at: float
    alerting_at: Optional[float] = None
    connected_at: Optional[float] = None
    released_at: Optional[float] = None

    @property
    def setup_delay(self) -> Optional[float]:
        """Dial-to-ringback delay (post-dial delay to alerting)."""
        if self.alerting_at is None:
            return None
        return self.alerting_at - self.dialled_at

    @property
    def answer_delay(self) -> Optional[float]:
        if self.connected_at is None:
            return None
        return self.connected_at - self.dialled_at


def register_ms(
    nw: VgprsNetwork, ms: MobileStation, timeout: float = 30.0
) -> float:
    """Power the MS on and run until registration completes (Figure 4).

    Returns the registration latency in simulated seconds.
    """
    started = nw.sim.now
    ms.power_on()
    if not nw.sim.run_until_true(lambda: ms.registered, timeout=timeout):
        raise RegistrationError(f"{ms.name} failed to register within {timeout}s")
    latency = nw.sim.now - started
    # Recorded centrally so SLO rules (p95 registration latency) have a
    # stable metric name regardless of which network built the MS.
    nw.sim.metrics.histogram("calls.registration_latency").observe(latency)
    return latency


def settle(nw: VgprsNetwork, period: float = 1.0) -> None:
    """Run the simulation for *period* seconds of quiescence."""
    nw.sim.run(until=nw.sim.now + period)


def _observe_outcome(nw: VgprsNetwork, outcome: "CallOutcome") -> None:
    """Record a completed setup's delays under network-independent
    metric names, the targets of the default SLO latency rules."""
    metrics = nw.sim.metrics
    if outcome.setup_delay is not None:
        metrics.histogram("calls.setup_delay").observe(outcome.setup_delay)
    if outcome.answer_delay is not None:
        metrics.histogram("calls.answer_delay").observe(outcome.answer_delay)


def call_ms_to_terminal(
    nw: VgprsNetwork,
    ms: MobileStation,
    terminal: H323Terminal,
    timeout: float = 30.0,
) -> CallOutcome:
    """Figure 5: the MS dials the H.323 terminal; waits for answer."""
    outcome = CallOutcome(dialled_at=nw.sim.now)

    def note_alerting() -> None:
        if outcome.alerting_at is None:
            outcome.alerting_at = nw.sim.now

    ms.on_alerting = note_alerting
    ms.place_call(terminal.alias)
    if not nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=timeout):
        raise CallSetupError(
            f"{ms.name} -> {terminal.name} did not connect (MS state {ms.state})"
        )
    outcome.connected_at = nw.sim.now
    _observe_outcome(nw, outcome)
    return outcome


def call_terminal_to_ms(
    nw: VgprsNetwork,
    terminal: H323Terminal,
    ms: MobileStation,
    timeout: float = 30.0,
) -> CallOutcome:
    """Figure 6: the H.323 terminal dials the MS; waits for answer."""
    outcome = CallOutcome(dialled_at=nw.sim.now)
    call_ref = terminal.place_call(ms.msisdn)

    def connected() -> bool:
        call = terminal.calls.get(call_ref)
        if call is not None and call.alerting_at is not None:
            if outcome.alerting_at is None:
                outcome.alerting_at = call.alerting_at
        return call is not None and call.state == "in-call"

    if not nw.sim.run_until_true(connected, timeout=timeout):
        raise CallSetupError(f"{terminal.name} -> {ms.name} did not connect")
    outcome.connected_at = nw.sim.now
    _observe_outcome(nw, outcome)
    return outcome


def hangup_from_ms(
    nw: VgprsNetwork, ms: MobileStation, timeout: float = 30.0
) -> float:
    """Figure 5 (bottom): the MS releases; waits for full teardown."""
    started = nw.sim.now
    ms.hangup()
    entry = nw.vmsc.ms_table.get(ms.imsi)

    def released() -> bool:
        return (
            ms.state == "idle"
            and nw.vmsc.call_for(ms.imsi) is None
            and (entry is None or not entry.voice_ready)
        )

    if not nw.sim.run_until_true(released, timeout=timeout):
        raise CallSetupError(f"{ms.name} release did not complete")
    return nw.sim.now - started


def message_counts(nw: VgprsNetwork) -> Dict[str, int]:
    """Per-node transmitted-message counters (experiment E11)."""
    return {
        name[len("msgs.tx."):]: count
        for name, count in nw.sim.metrics.counters("msgs.tx.").items()
    }


def delta_counts(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Counter difference between two :func:`message_counts` snapshots."""
    return {
        node: after.get(node, 0) - before.get(node, 0)
        for node in sorted(set(before) | set(after))
        if after.get(node, 0) != before.get(node, 0)
    }
