"""vGPRS roaming / tromboning elimination — the Figure 8 world.

The visited country (Hong Kong) runs a full vGPRS network whose local
telephone company connects to the VoIP network: the exchange's *first*
route for UK numbers is the H.323 gateway; the international PSTN trunk
to the UK GMSC is only the *fallback*.  When the UK roamer x is
registered at the Hong Kong gatekeeper, a call from the local phone y
terminates locally (zero international trunks); when x is not
registered, the gateway's admission is rejected and the exchange falls
back to the Figure 7 path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.identities import E164Number
from repro.core.baseline_gsm import UK_MOBILE_PREFIX
from repro.core.network import (
    GATEWAY_IP,
    LatencyProfile,
    VgprsNetwork,
    build_vgprs_network,
)
from repro.gsm.gmsc import Gmsc
from repro.gsm.hlr import Hlr
from repro.gsm.ms import MobileStation
from repro.h323.gateway import H323PstnGateway
from repro.net.interfaces import Interface
from repro.pstn.numbering import HONG_KONG, UK
from repro.pstn.phone import PstnPhone
from repro.pstn.switch import PstnSwitch
from repro.pstn.trunks import TrunkLedger
from repro.sim.kernel import Simulator


@dataclass
class VgprsRoamingNetwork:
    """Figure 8 topology: visited vGPRS PLMN + local PSTN + home GMSC."""

    vgprs: VgprsNetwork
    ledger: TrunkLedger
    exchange_hk: PstnSwitch
    gateway: H323PstnGateway
    gmsc_uk: Gmsc
    hlr_uk: Hlr
    phone_y: PstnPhone
    roamer: Optional[MobileStation] = None

    @property
    def sim(self) -> Simulator:
        return self.vgprs.sim

    def add_roamer(
        self, name: str, imsi: str, msisdn: str, answer_delay: float = 1.0
    ) -> MobileStation:
        """The UK subscriber x, camped on the Hong Kong vGPRS cell."""
        self.roamer = self.vgprs.add_ms(
            name, imsi, msisdn, answer_delay=answer_delay
        )
        return self.roamer


def build_vgprs_roaming_network(
    seed: int = 0,
    latencies: LatencyProfile = LatencyProfile(),
    phone_number: str = "+85221234567",
    phone_answer_delay: float = 1.0,
) -> VgprsRoamingNetwork:
    """Wire the Figure 8 topology."""
    sim = Simulator(seed=seed)
    ledger = TrunkLedger()

    # The home HLR lives in the UK; the visited vGPRS network's VLR
    # reaches it over an international D link (handled inside the
    # builder by passing the HLR in).
    hlr_uk = Hlr(sim, "HLR-UK")
    vgprs = build_vgprs_network(
        latencies=latencies,
        country_code=HONG_KONG,
        sim=sim,
        hlr=hlr_uk,
    )

    net = vgprs.net
    exchange_hk = net.add(
        PstnSwitch(sim, "EX-HK", country_code=HONG_KONG, ledger=ledger,
                   cic_start=100000)
    )
    gmsc_uk = net.add(Gmsc(sim, "GMSC-UK", country_code=UK, ledger=ledger))
    gmsc_uk.add_home_prefix(UK_MOBILE_PREFIX)
    net.connect(gmsc_uk, hlr_uk, Interface.C, latencies.ss7, wire_fidelity=True)

    gateway = net.add(
        H323PstnGateway(
            sim,
            "GW-HK",
            ip=GATEWAY_IP,
            alias=E164Number(HONG_KONG, "29999999"),
            gk_ip=vgprs.gk.ip,
        )
    )
    net.connect(gateway, vgprs.cloud, Interface.IP, latencies.ip,
                wire_fidelity=True)
    net.connect(gateway, exchange_hk, Interface.ISUP, latencies.isup,
                wire_fidelity=True)
    gateway.register()

    net.connect(exchange_hk, gmsc_uk, Interface.ISUP, latencies.international,
                wire_fidelity=True)

    # Figure 8 routing: VoIP gateway first, international trunk fallback.
    exchange_hk.add_route("+44", gateway.name, international=False)
    exchange_hk.add_route("+44", gmsc_uk.name, international=True)

    phone_y = PstnPhone(
        sim, "PHONE-Y", E164Number.parse(phone_number),
        answer_delay=phone_answer_delay,
    )
    net.add(phone_y)
    net.connect(phone_y, exchange_hk, Interface.ISUP, 0.002)
    exchange_hk.add_local(phone_y.number, phone_y.name)

    return VgprsRoamingNetwork(
        vgprs=vgprs,
        ledger=ledger,
        exchange_hk=exchange_hk,
        gateway=gateway,
        gmsc_uk=gmsc_uk,
        hlr_uk=hlr_uk,
        phone_y=phone_y,
    )
