"""Inter-system handoff scenario — Figure 9.

A vGPRS network whose VMSC neighbours a classic GSM MSC.  A call is
established through the VMSC (Figure 9a); the MS then moves into the
MSC's cell.  The standard GSM inter-system handoff runs over the MAP E
interface, an inter-MSC circuit trunk is set up, and afterwards the VMSC
remains the **anchor** in the call path (Figure 9b) — voice now flows
MS -> BTS2 -> BSC2 -> MSC -> (E trunk) -> VMSC -> GPRS -> H.323 network.

"Inter-system handoff between two VMSCs follows the same procedure"
(paper §7): pass ``target="vmsc"`` to build the two-VMSC variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.network import LatencyProfile, VgprsNetwork, build_vgprs_network
from repro.core.vmsc import Vmsc
from repro.gsm.bsc import Bsc
from repro.gsm.bts import Bts
from repro.gsm.ms import MobileStation
from repro.gsm.msc import GsmMsc
from repro.gsm.msc_base import MscBase
from repro.net.interfaces import Interface

SERVING_CELL = "cell-1"
TARGET_CELL = "cell-2"


@dataclass
class HandoffNetwork:
    """The Figure 9 topology: vGPRS PLMN + neighbouring target system."""

    vgprs: VgprsNetwork
    target_msc: MscBase
    target_bsc: Bsc
    target_bts: Bts
    ms: Optional[MobileStation] = None

    @property
    def sim(self):
        return self.vgprs.sim

    def add_ms(self, name: str, imsi: str, msisdn: str,
               answer_delay: float = 1.0) -> MobileStation:
        """An MS with radio visibility of both systems' cells."""
        ms = self.vgprs.add_ms(name, imsi, msisdn, answer_delay=answer_delay)
        self.vgprs.net.connect(
            ms, self.target_bts, Interface.UM, self.vgprs.latencies.um,
            wire_fidelity=True,
        )
        ms.cells = {
            SERVING_CELL: self.vgprs.btss[0].name,
            TARGET_CELL: self.target_bts.name,
        }
        self.ms = ms
        return ms

    def add_system(self, cell: str, name: str) -> GsmMsc:
        """Add a third (or Nth) classic-MSC system serving *cell*, wired
        to the anchor over the E interface — for chained subsequent
        handoffs."""
        sim, net = self.sim, self.vgprs.net
        msc = net.add(GsmMsc(sim, name, cic_start=550000 + len(net.nodes)))
        bsc = net.add(Bsc(sim, f"BSC-{name}"))
        bts = net.add(Bts(sim, f"BTS-{name}"))
        lat = self.vgprs.latencies
        net.connect(bsc, msc, Interface.A, lat.a, wire_fidelity=True)
        net.connect(bts, bsc, Interface.ABIS, lat.abis, wire_fidelity=True)
        net.connect(self.vgprs.vmsc, msc, Interface.E, lat.ss7,
                    wire_fidelity=True)
        self.vgprs.vmsc.neighbor_cells[cell] = msc.name
        msc.cells[cell] = bsc.name
        if self.ms is not None:
            net.connect(self.ms, bts, Interface.UM, lat.um,
                        wire_fidelity=True)
            self.ms.cells[cell] = bts.name
        return msc

    def trigger_handback(self) -> None:
        """The serving system reports the anchor's own cell: subsequent
        handoff back (the E trunk is then released)."""
        assert self.ms is not None
        conn = self.target_msc.conn(self.ms.imsi)
        self.target_bsc.report_handover_required(
            self.ms.imsi, conn.ti or 0, SERVING_CELL
        )

    def trigger_handoff(self) -> None:
        """Radio measurements demand the target cell (scenario driver)."""
        assert self.ms is not None, "add_ms first"
        conn = self.vgprs.vmsc.conn(self.ms.imsi)
        self.vgprs.bscs[0].report_handover_required(
            self.ms.imsi, conn.ti or 0, TARGET_CELL
        )

    def handoff_complete(self) -> bool:
        assert self.ms is not None
        conn = self.vgprs.vmsc.conn(self.ms.imsi)
        return conn.via_msc == self.target_msc.name

    def voice_path(self) -> List[str]:
        """The current voice path, Figure 9 style: radio leg up to the
        anchor VMSC, then the packet leg toward the H.323 network."""
        assert self.ms is not None
        conn = self.vgprs.vmsc.conn(self.ms.imsi)
        packet_leg = [
            self.vgprs.vmsc.name,
            self.vgprs.sgsn.name,
            self.vgprs.ggsn.name,
            self.vgprs.cloud.name,
        ]
        if conn.via_msc is None:
            radio_leg = [self.ms.name, self.vgprs.btss[0].name, conn.bsc]
        else:
            radio_leg = [
                self.ms.name,
                self.target_bts.name,
                self.target_bsc.name,
                self.target_msc.name,
            ]
        return radio_leg + packet_leg


def build_handoff_network(
    seed: int = 0,
    latencies: LatencyProfile = LatencyProfile(),
    target: str = "msc",
) -> HandoffNetwork:
    """Wire Figure 9.  ``target`` selects a classic GSM ``"msc"`` or a
    second ``"vmsc"`` as the neighbouring system."""
    vgprs = build_vgprs_network(seed=seed, latencies=latencies)
    sim, net = vgprs.sim, vgprs.net

    if target == "vmsc":
        target_msc: MscBase = Vmsc(sim, "VMSC2", gk_ip=vgprs.gk.ip)
    else:
        target_msc = GsmMsc(sim, "MSC2")
    net.add(target_msc)
    target_bsc = net.add(Bsc(sim, "BSC2"))
    target_bts = net.add(Bts(sim, "BTS2"))
    net.connect(target_bsc, target_msc, Interface.A, latencies.a,
                wire_fidelity=True)
    net.connect(target_bts, target_bsc, Interface.ABIS, latencies.abis,
                wire_fidelity=True)
    # MAP E interface between the two switches (signalling + trunk).
    net.connect(vgprs.vmsc, target_msc, Interface.E, latencies.ss7,
                wire_fidelity=True)

    vgprs.vmsc.neighbor_cells[TARGET_CELL] = target_msc.name
    target_msc.cells[TARGET_CELL] = target_bsc.name
    return HandoffNetwork(
        vgprs=vgprs,
        target_msc=target_msc,
        target_bsc=target_bsc,
        target_bts=target_bts,
    )
