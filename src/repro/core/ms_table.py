"""The VMSC's MS table.

Paper §2: "The VMSC maintains an MS table.  The table stores the MS
mobility management (MM) and PDP contexts such as TMSI, IMSI, and the QoS
profile requested.  These contexts are the same as that stored in a GPRS
MS (see section 13.4, GSM 03.60)."

One :class:`MsTableEntry` per attached MS holds the MM context (IMSI,
TMSI, MSISDN, LAI) and the PDP contexts the VMSC activated on the MS's
behalf — the always-on signalling context (NSAPI 5) and, during calls,
the real-time voice context (NSAPI 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import SubscriberError
from repro.identities import IMSI, E164Number, IPv4Address
from repro.gprs.pdp import NSAPI_SIGNALLING, NSAPI_VOICE, QosProfile


@dataclass
class PdpState:
    """One PDP context as mirrored in the MS table."""

    nsapi: int
    qos: QosProfile
    active: bool = False
    pdp_address: Optional[IPv4Address] = None
    activated_at: float = 0.0


@dataclass
class MsTableEntry:
    """MM + PDP contexts for one MS attached to the VMSC."""

    imsi: IMSI
    tmsi: Optional[int] = None
    msisdn: Optional[E164Number] = None
    lai: str = ""
    gprs_attached: bool = False
    gk_registered: bool = False
    pdp: Dict[int, PdpState] = field(default_factory=dict)
    created_at: float = 0.0

    @property
    def ip(self) -> Optional[IPv4Address]:
        """The MS's IP address ("an IP address is associated with every
        MS attached to the VMSC", §2) — taken from any active context."""
        for state in self.pdp.values():
            if state.active and state.pdp_address is not None:
                return state.pdp_address
        return None

    @property
    def signalling_ready(self) -> bool:
        state = self.pdp.get(NSAPI_SIGNALLING)
        return state is not None and state.active

    @property
    def voice_ready(self) -> bool:
        state = self.pdp.get(NSAPI_VOICE)
        return state is not None and state.active

    def pdp_state(self, nsapi: int) -> PdpState:
        state = self.pdp.get(nsapi)
        if state is None:
            qos = QosProfile.voice() if nsapi == NSAPI_VOICE else QosProfile.signalling()
            state = self.pdp[nsapi] = PdpState(nsapi=nsapi, qos=qos)
        return state


class MsTable:
    """The VMSC's registry of attached MSs, indexed every way the call
    flows need: IMSI (radio side), MSISDN (alias side) and IP address
    (H.323 side)."""

    def __init__(self) -> None:
        self._by_imsi: Dict[IMSI, MsTableEntry] = {}
        self._by_msisdn: Dict[E164Number, IMSI] = {}
        self._by_ip: Dict[IPv4Address, IMSI] = {}

    def __len__(self) -> int:
        return len(self._by_imsi)

    def __iter__(self) -> Iterator[MsTableEntry]:
        return iter(self._by_imsi.values())

    def ensure(self, imsi: IMSI, now: float = 0.0) -> MsTableEntry:
        entry = self._by_imsi.get(imsi)
        if entry is None:
            entry = MsTableEntry(imsi=imsi, created_at=now)
            self._by_imsi[imsi] = entry
        return entry

    def get(self, imsi: IMSI) -> Optional[MsTableEntry]:
        return self._by_imsi.get(imsi)

    def require(self, imsi: IMSI) -> MsTableEntry:
        entry = self._by_imsi.get(imsi)
        if entry is None:
            raise SubscriberError(f"no MS table entry for {imsi}")
        return entry

    def set_msisdn(self, entry: MsTableEntry, msisdn: E164Number) -> None:
        if entry.msisdn is not None:
            self._by_msisdn.pop(entry.msisdn, None)
        entry.msisdn = msisdn
        self._by_msisdn[msisdn] = entry.imsi

    def set_ip(self, entry: MsTableEntry, nsapi: int, ip: IPv4Address) -> None:
        state = entry.pdp_state(nsapi)
        state.pdp_address = ip
        state.active = True
        self._by_ip[ip] = entry.imsi

    def clear_pdp(self, entry: MsTableEntry, nsapi: int) -> None:
        state = entry.pdp.get(nsapi)
        if state is None:
            return
        state.active = False
        if state.pdp_address is not None and not any(
            s.active and s.pdp_address == state.pdp_address
            for s in entry.pdp.values()
        ):
            self._by_ip.pop(state.pdp_address, None)

    def by_msisdn(self, msisdn: E164Number) -> Optional[MsTableEntry]:
        imsi = self._by_msisdn.get(msisdn)
        return self._by_imsi.get(imsi) if imsi is not None else None

    def by_ip(self, ip: IPv4Address) -> Optional[MsTableEntry]:
        imsi = self._by_ip.get(ip)
        return self._by_imsi.get(imsi) if imsi is not None else None

    def remove(self, imsi: IMSI) -> None:
        entry = self._by_imsi.pop(imsi, None)
        if entry is None:
            return
        if entry.msisdn is not None:
            self._by_msisdn.pop(entry.msisdn, None)
        for state in entry.pdp.values():
            if state.pdp_address is not None:
                self._by_ip.pop(state.pdp_address, None)
