"""The 3G TR 23.923 baseline — VoIP over GPRS *without* a VMSC.

The comparison system of the paper's §6: the handset itself is an H.323
terminal with a vocoder, speaking RAS/Q.931/RTP over the GPRS packet
radio.  Faithful to the paper's description of the approach:

* after gatekeeper registration the PDP context is **deactivated** "due
  to the network resource consideration" (3G TR 23.923 fig. 7 step 6),
  so every call first re-activates a context;
* MT calls need **network-requested PDP context activation**, which
  requires a *static* PDP address provisioned at the GGSN;
* all signalling and voice cross the shared packet channel on the air
  interface — the "non-real-time packet switching nature in the radio
  interface" the paper blames for degraded voice quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import CallSetupError, ProtocolError
from repro.identities import IMSI, E164Number, IPv4Address, as_e164
from repro.core.network import GK_IP, LatencyProfile, TERMINAL_IP_BASE
from repro.gprs.gb import GbUnitdata
from repro.gprs.ggsn import Ggsn
from repro.gprs.pdp import NSAPI_SIGNALLING
from repro.gprs.sgsn import Sgsn
from repro.gsm.bsc import Bsc
from repro.gsm.bts import Bts
from repro.h323.gatekeeper import Gatekeeper
from repro.h323.terminal import H323Terminal
from repro.net.interfaces import Interface
from repro.net.ip import IPCloud
from repro.net.node import Network, Node, handles
from repro.net.transactions import Sequencer
from repro.sim.kernel import Simulator
from repro.sim.process import spawn
from repro.packets.base import Packet
from repro.packets.gmm import (
    ActivatePdpContextAccept,
    ActivatePdpContextReject,
    ActivatePdpContextRequest,
    DeactivatePdpContextAccept,
    DeactivatePdpContextRequest,
    GprsAttachAccept,
    GprsAttachRequest,
    GprsPaging,
    GprsPagingResponse,
    RequestPdpContextActivation,
    RoutingAreaUpdateAccept,
    RoutingAreaUpdateRequest,
)
from repro.packets.ip import IPv4, PORT_H225_CS, PORT_H225_RAS, PORT_RTP, TCPLite, UDP
from repro.packets.q931 import (
    CAUSE_NORMAL_CLEARING,
    Q931Alerting,
    Q931CallProceeding,
    Q931Connect,
    Q931ReleaseComplete,
    Q931Setup,
)
from repro.packets.ras import (
    RasAcf,
    RasArj,
    RasArq,
    RasDcf,
    RasDrq,
    RasRcf,
    RasRrq,
)
from repro.packets.rtp import PT_GSM, RtpPacket

#: Static PDP address pool for 3G TR handsets.
STATIC_IP_BASE = IPv4Address.parse("10.2.0.0")


@dataclass
class _H323MsCall:
    call_ref: int
    direction: str
    state: str = "pdp"
    remote_alias: Optional[E164Number] = None
    remote_signal: Optional[Tuple[IPv4Address, int]] = None
    remote_media: Optional[Tuple[IPv4Address, int]] = None
    dialled_at: float = 0.0
    alerting_at: Optional[float] = None
    connected_at: Optional[float] = None
    rtp_seq: int = 0


class H323MobileStation(Node):
    """An H.323-terminal-capable GPRS handset (the MS 3G TR requires)."""

    def __init__(
        self,
        sim,
        name: str,
        imsi: IMSI,
        msisdn: E164Number,
        static_ip: IPv4Address,
        serving_bts: str,
        gk_ip: IPv4Address,
        answer_delay: float = 1.0,
    ) -> None:
        super().__init__(sim, name)
        self.imsi = imsi
        self.msisdn = msisdn
        self.static_ip = static_ip
        self.serving_bts = serving_bts
        self.gk_ip = gk_ip
        self.answer_delay = answer_delay
        self.attached = False
        self.pdp_active = False
        self._pdp_deactivating = False
        self.registered = False
        self.routing_area = "RA-1"
        self.state = "off"
        self.call: Optional[_H323MsCall] = None
        self._ras_seq = Sequencer()
        self._pdp_waiters: List[Callable[[], None]] = []
        self._voice_proc = None
        self._fluid_flow = None
        self.frames_received = 0
        self._last_rx_time: Optional[float] = None
        # Histogram handles, resolved lazily on first observation so the
        # registry's contents match runs that never receive a frame.
        self._m2e_hist = None
        self._jitter_hist = None
        self.on_registered: Optional[Callable[[], None]] = None
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_released: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # GPRS plumbing (everything rides the shared packet channel)
    # ------------------------------------------------------------------
    def _tx(self, packet: Packet) -> None:
        self.send(self.serving_bts, packet)

    def _wrap_h323(
        self, message: Packet, dst: IPv4Address, dport: int, sport: int,
        tcp: bool = False,
    ) -> Packet:
        transport = (
            TCPLite(sport=sport, dport=dport) if tcp else UDP(sport=sport, dport=dport)
        )
        frame = GbUnitdata(imsi=self.imsi, nsapi=NSAPI_SIGNALLING)
        frame.payload = IPv4(src=self.static_ip, dst=dst) / transport / message
        return frame

    def _send_h323(
        self, message: Packet, dst: IPv4Address, dport: int, sport: int,
        tcp: bool = False,
    ) -> None:
        self._tx(self._wrap_h323(message, dst, dport, sport, tcp))

    @handles(GbUnitdata)
    def on_gb(self, frame: GbUnitdata, src: Node, interface: str) -> None:
        packet = frame.payload
        if not isinstance(packet, IPv4):
            return
        inner = packet.payload
        while isinstance(inner, (UDP, TCPLite)):
            inner = inner.payload
        if inner is not None:
            self._on_h323(inner)

    # ------------------------------------------------------------------
    # Attach + registration (3G TR: deactivate the context afterwards)
    # ------------------------------------------------------------------
    def power_on(self) -> None:
        if self.state != "off":
            raise ProtocolError(f"{self.name}: power_on in state {self.state}")
        self.state = "attaching"
        self._tx(GprsAttachRequest(imsi=self.imsi))

    @handles(GprsAttachAccept)
    def on_attach_accept(self, msg: GprsAttachAccept, src: Node, interface: str) -> None:
        self.attached = True
        self.state = "registering"
        self._with_pdp(self._send_rrq)

    def _send_rrq(self) -> None:
        self._send_h323(
            RasRrq(
                seq=self._ras_seq.next(),
                alias=self.msisdn,
                signal_address=self.static_ip,
                signal_port=PORT_H225_CS,
                endpoint_type="3gtr-ms",
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    # ------------------------------------------------------------------
    # PDP context lifecycle (activated per use, 3G TR style)
    # ------------------------------------------------------------------
    def _with_pdp(self, action: Callable[[], None]) -> None:
        """Run *action* once a PDP context is active, activating one if
        needed — the per-call activation step the paper criticises.  A
        deactivation still in flight defers the action until it settles
        (then reactivates), so call attempts never race the teardown."""
        if self.pdp_active and not self._pdp_deactivating:
            action()
            return
        self._pdp_waiters.append(action)
        if not self._pdp_deactivating and len(self._pdp_waiters) == 1:
            self._request_activation()

    def _request_activation(self) -> None:
        self._tx(
            ActivatePdpContextRequest(
                imsi=self.imsi,
                nsapi=NSAPI_SIGNALLING,
                static_pdp_address=self.static_ip,
            )
        )

    @handles(ActivatePdpContextAccept)
    def on_pdp_accept(self, msg: ActivatePdpContextAccept, src: Node, interface: str) -> None:
        self.pdp_active = True
        waiters, self._pdp_waiters = self._pdp_waiters, []
        for action in waiters:
            action()

    @handles(ActivatePdpContextReject)
    def on_pdp_reject(self, msg: ActivatePdpContextReject, src: Node, interface: str) -> None:
        self._pdp_waiters.clear()
        self.sim.metrics.counter(f"{self.name}.pdp_rejects").inc()

    def _deactivate_pdp(self) -> None:
        if not self.pdp_active or self._pdp_deactivating:
            return
        self._pdp_deactivating = True
        self._tx(DeactivatePdpContextRequest(imsi=self.imsi, nsapi=NSAPI_SIGNALLING))

    @handles(DeactivatePdpContextAccept)
    def on_pdp_deactivated(self, msg: DeactivatePdpContextAccept, src: Node, interface: str) -> None:
        self.pdp_active = False
        self._pdp_deactivating = False
        if self._pdp_waiters:
            # Something queued while the teardown was in flight.
            self._request_activation()

    def move_to(self, bts_name: str, routing_area: str) -> None:
        """Camp on a new cell; if it belongs to a different routing
        area, run a routing-area update through the new SGSN (which pulls
        the contexts from the old one when necessary)."""
        old_ra = self.routing_area
        self.serving_bts = bts_name
        self.routing_area = routing_area
        self._tx(
            RoutingAreaUpdateRequest(
                imsi=self.imsi,
                routing_area=routing_area,
                old_routing_area=old_ra,
            )
        )

    @handles(RoutingAreaUpdateAccept)
    def on_rau_accept(self, msg: RoutingAreaUpdateAccept, src: Node, interface: str) -> None:
        self.sim.metrics.counter(f"{self.name}.rau_accepted").inc()

    @handles(GprsPaging)
    def on_gprs_paging(self, msg: GprsPaging, src: Node, interface: str) -> None:
        """Answer GPRS paging so the SGSN can deliver buffered downlink
        traffic (part of the 3G TR MT-call latency)."""
        if msg.imsi == self.imsi:
            self._tx(GprsPagingResponse(imsi=self.imsi))

    @handles(RequestPdpContextActivation)
    def on_network_requested_activation(
        self, msg: RequestPdpContextActivation, src: Node, interface: str
    ) -> None:
        """Network-requested activation: a downlink PDU (the incoming
        call's Setup) is waiting at the GGSN."""
        self.sim.metrics.counter(f"{self.name}.network_requested_pdp").inc()
        self._with_pdp(lambda: None)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def place_call(self, called: Union[E164Number, str]) -> None:
        called = as_e164(called)
        if self.state != "idle" or self.call is not None:
            raise CallSetupError(f"{self.name}: busy ({self.state})")
        call = _H323MsCall(
            call_ref=self.sim.call_refs.next(),
            direction="out",
            remote_alias=called,
            dialled_at=self.sim.now,
        )
        self.call = call
        self.state = "calling"
        # 3G TR MO: PDP activation precedes admission.
        self._with_pdp(lambda: self._send_arq(call))

    def _send_arq(self, call: _H323MsCall) -> None:
        call.state = "admission"
        self._send_h323(
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=self.msisdn,
                called_alias=call.remote_alias,
                answer_call=0,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    def hangup(self) -> None:
        call = self.call
        if call is None:
            raise CallSetupError(f"{self.name}: no active call")
        self.stop_talking()
        if call.remote_signal is not None:
            self._send_h323(
                Q931ReleaseComplete(
                    call_ref=call.call_ref, cause=CAUSE_NORMAL_CLEARING
                ),
                dst=call.remote_signal[0],
                dport=call.remote_signal[1],
                sport=PORT_H225_CS,
                tcp=True,
            )
        self._finish_release(call)

    def _finish_release(self, call: _H323MsCall) -> None:
        self._send_h323(
            RasDrq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=self.msisdn,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        self.call = None
        self.state = "idle"
        # 3G TR: the context is torn down again after the call.  A short
        # grace period lets the release signalling drain through the
        # still-active context first.
        self.sim.schedule(0.5, self._deactivate_if_idle)
        if self.on_released is not None:
            self.on_released()

    def _deactivate_if_idle(self) -> None:
        if self.call is None and self.state == "idle":
            self._deactivate_pdp()

    # ------------------------------------------------------------------
    # H.323 message handling
    # ------------------------------------------------------------------
    def _on_h323(self, message: Packet) -> None:
        call = self.call
        if isinstance(message, RasRcf):
            if not self.registered:
                self.registered = True
                self.state = "idle"
                # 3G TR fig. 7 step 6: deactivate after registration.
                self._deactivate_pdp()
                if self.on_registered is not None:
                    self.on_registered()
        elif isinstance(message, RasAcf):
            if call is None:
                return
            if call.direction == "out" and call.state == "admission":
                if message.dest_signal_address is None:
                    self._finish_release(call)
                    return
                call.remote_signal = (
                    message.dest_signal_address,
                    message.dest_signal_port or PORT_H225_CS,
                )
                call.state = "setup-sent"
                self._send_h323(
                    Q931Setup(
                        call_ref=call.call_ref,
                        called=call.remote_alias,
                        calling=self.msisdn,
                        signal_address=self.static_ip,
                        signal_port=PORT_H225_CS,
                        media_address=self.static_ip,
                        media_port=PORT_RTP,
                    ),
                    dst=call.remote_signal[0],
                    dport=call.remote_signal[1],
                    sport=PORT_H225_CS,
                    tcp=True,
                )
            elif call.direction == "in" and call.state == "admission":
                call.state = "ringing"
                call.alerting_at = self.sim.now
                self._send_q931(call, Q931Alerting(call_ref=call.call_ref))
                self.sim.schedule(self.answer_delay, self._answer, call.call_ref)
        elif isinstance(message, RasArj):
            if call is not None:
                self.sim.metrics.counter(f"{self.name}.call_rejects").inc()
                self._finish_release(call)
        elif isinstance(message, Q931Setup):
            self._on_incoming_setup(message)
        elif isinstance(message, Q931CallProceeding):
            pass
        elif isinstance(message, Q931Alerting):
            if call is not None:
                call.alerting_at = self.sim.now
                call.state = "alerting"
        elif isinstance(message, Q931Connect):
            if call is not None:
                call.remote_media = (message.media_address, message.media_port)
                call.connected_at = self.sim.now
                call.state = "in-call"
                self.state = "in-call"
                if self.on_connected is not None:
                    self.on_connected()
        elif isinstance(message, Q931ReleaseComplete):
            if call is not None:
                self.stop_talking()
                self._finish_release(call)
        elif isinstance(message, RtpPacket):
            self._on_rtp(message)
        elif isinstance(message, (RasDcf,)):
            pass

    def _on_incoming_setup(self, msg: Q931Setup) -> None:
        if self.call is not None:
            self._send_h323(
                Q931ReleaseComplete(call_ref=msg.call_ref, cause=17),
                dst=msg.signal_address,
                dport=msg.signal_port,
                sport=PORT_H225_CS,
                tcp=True,
            )
            return
        call = _H323MsCall(
            call_ref=msg.call_ref,
            direction="in",
            state="admission",
            remote_alias=msg.calling,
            remote_signal=(msg.signal_address, msg.signal_port),
            remote_media=(msg.media_address, msg.media_port),
            dialled_at=self.sim.now,
        )
        self.call = call
        self.state = "ringing"
        self._send_q931(call, Q931CallProceeding(call_ref=call.call_ref))
        self._send_h323(
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=self.msisdn,
                answer_call=1,
            ),
            dst=self.gk_ip,
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    def _answer(self, call_ref: int) -> None:
        call = self.call
        if call is None or call.call_ref != call_ref or call.state != "ringing":
            return
        call.state = "in-call"
        call.connected_at = self.sim.now
        self.state = "in-call"
        self._send_q931(
            call,
            Q931Connect(
                call_ref=call_ref,
                media_address=self.static_ip,
                media_port=PORT_RTP,
            ),
        )
        if self.on_connected is not None:
            self.on_connected()

    def _send_q931(self, call: _H323MsCall, message: Packet) -> None:
        assert call.remote_signal is not None
        self._send_h323(
            message,
            dst=call.remote_signal[0],
            dport=call.remote_signal[1],
            sport=PORT_H225_CS,
            tcp=True,
        )

    # ------------------------------------------------------------------
    # Voice over the packet radio
    # ------------------------------------------------------------------
    def start_talking(self, frame_interval: float = 0.020, duration: Optional[float] = None) -> None:
        if self.call is None or self.call.state != "in-call":
            raise CallSetupError(f"{self.name}: start_talking outside a call")
        self.stop_talking()
        media = self.sim.media
        if media is not None and duration is not None:
            self._fluid_flow = self._start_fluid(
                media, self.call, frame_interval, duration
            )
        else:
            self._voice_proc = spawn(self.sim, self._talk(self.call, frame_interval, duration))

    def _talk(self, call: _H323MsCall, interval: float, duration: Optional[float]):
        started = self.sim.now
        payload = b"\x00" * 33  # one GSM FR frame, reused for the spurt
        while call.state == "in-call" and call.remote_media is not None:
            if duration is not None and self.sim.now - started >= duration:
                break
            call.rtp_seq += 1
            self._send_h323(
                RtpPacket(
                    payload_type=PT_GSM,
                    seq=call.rtp_seq & 0xFFFF,
                    timestamp=int(self.sim.now * 8000) & 0xFFFFFFFF,
                    ssrc=call.call_ref & 0xFFFFFFFF,
                    gen_time_us=int(self.sim.now * 1e6),
                    frame=payload,
                ),
                dst=call.remote_media[0],
                dport=call.remote_media[1],
                sport=PORT_RTP,
            )
            yield interval

    def _start_fluid(self, media, call: _H323MsCall, interval: float, duration: float):
        """Register an analytic flow whose uplink rides the serving BTS's
        shared packet channel, then send only the calibration probe
        (frame 0) through the event path; see :mod:`repro.media.fluid`."""
        now = self.sim.now
        call.rtp_seq += 1
        gen_us = int(now * 1e6)
        probe = self._wrap_h323(
            RtpPacket(
                payload_type=PT_GSM,
                seq=call.rtp_seq & 0xFFFF,
                timestamp=int(now * 8000) & 0xFFFFFFFF,
                ssrc=call.call_ref & 0xFFFFFFFF,
                gen_time_us=gen_us,
                frame=b"\x00" * 33,
            ),
            dst=call.remote_media[0],
            dport=call.remote_media[1],
            sport=PORT_RTP,
        )
        channel = None
        delta = 0.0
        service = 0.0
        residual_busy = 0.0
        link = self.link_to(self.serving_bts)
        bts = link.peer_of(self)
        bps = getattr(bts, "packet_channel_bps", None)
        if bps:
            # Every frame is the same wire size (fixed-width fields), so
            # the probe's serialisation time holds for the whole spurt.
            service = len(probe.build()) * 8 / bps
            channel = media.channel(bts, "up", bps)
            delta = link.latency
            residual_busy = bts._pch_busy_until["up"]
        flow = media.start_flow(
            key=gen_us, start=now, interval=interval, duration=duration,
            on_frames=self._fluid_frames_sent, channel=channel,
            delta=delta, service=service, residual_busy=residual_busy,
        )
        self._tx(probe)
        return flow

    def _fluid_frames_sent(self, n: int) -> None:
        if self.call is not None:
            self.call.rtp_seq += n

    def stop_talking(self) -> None:
        if self._voice_proc is not None:
            self._voice_proc.interrupt()
            self._voice_proc = None
        if self._fluid_flow is not None:
            flow, self._fluid_flow = self._fluid_flow, None
            self.sim.media.end_flow(flow)

    def _on_rtp(self, packet: RtpPacket) -> None:
        self.frames_received += 1
        now = self.sim.now
        m2e = self._m2e_hist
        if m2e is None:
            m2e = self._m2e_hist = self.sim.metrics.histogram(
                f"{self.name}.mouth_to_ear"
            )
        m2e.observe(now - packet.gen_time_us / 1e6)
        if self._last_rx_time is not None:
            jit = self._jitter_hist
            if jit is None:
                jit = self._jitter_hist = self.sim.metrics.histogram(
                    f"{self.name}.jitter"
                )
            jit.observe(abs((now - self._last_rx_time) - 0.020))
        self._last_rx_time = now
        media = self.sim.media
        if media is not None:
            media.on_frame(packet.gen_time_us, self)


@dataclass
class Tgtr3Network:
    """A constructed 3G TR 23.923 network."""

    sim: Simulator
    net: Network
    latencies: LatencyProfile
    cloud: IPCloud
    gk: Gatekeeper
    ggsn: Ggsn
    sgsn: Sgsn
    bsc: Bsc
    btss: List[Bts] = field(default_factory=list)
    mss: Dict[str, H323MobileStation] = field(default_factory=dict)
    terminals: Dict[str, H323Terminal] = field(default_factory=dict)
    #: routing-area name -> its SGSN (the default area is "RA-1").
    areas: Dict[str, Sgsn] = field(default_factory=dict)
    _terminal_count: int = 0
    _static_count: int = 0

    def add_ms(
        self,
        name: str,
        imsi: str,
        msisdn: str,
        bts: Optional[Bts] = None,
        answer_delay: float = 1.0,
    ) -> H323MobileStation:
        """An H.323-capable GPRS handset with a static PDP address
        provisioned at the GGSN (required for MT calls)."""
        bts = bts if bts is not None else self.btss[0]
        self._static_count += 1
        static_ip = IPv4Address(STATIC_IP_BASE.value + self._static_count)
        ms = H323MobileStation(
            self.sim,
            name,
            imsi=IMSI(imsi),
            msisdn=E164Number.parse(msisdn),
            static_ip=static_ip,
            serving_bts=bts.name,
            gk_ip=self.gk.ip,
            answer_delay=answer_delay,
        )
        self.net.add(ms)
        self.net.connect(ms, bts, Interface.UM, self.latencies.um,
                         wire_fidelity=True)
        self.ggsn.provision_static(ms.imsi, static_ip, self.sgsn.name)
        self.mss[name] = ms
        return ms

    def add_routing_area(
        self, name: str, packet_channel_bps: Optional[float] = 4 * 13_400.0
    ) -> Tuple[Sgsn, Bsc, Bts]:
        """Add a routing area: its own SGSN/BSC/BTS, wired to the GGSN
        and cross-wired to every existing SGSN so inter-SGSN routing-area
        updates can pull contexts over Gn."""
        sgsn = self.net.add(Sgsn(self.sim, f"SGSN-{name}", ready_timeout=5.0))
        bsc = self.net.add(Bsc(self.sim, f"BSC-{name}"))
        bts = self.net.add(
            Bts(self.sim, f"BTS-{name}", packet_channel_bps=packet_channel_bps)
        )
        lat = self.latencies
        self.net.connect(bts, bsc, Interface.ABIS, lat.abis, wire_fidelity=True)
        self.net.connect(bsc, sgsn, Interface.GB, lat.gb, wire_fidelity=True)
        self.net.connect(sgsn, self.ggsn, Interface.GN, lat.gn, wire_fidelity=True)
        for other_name, other in self.areas.items():
            self.net.connect(sgsn, other, Interface.GN, lat.gn,
                             wire_fidelity=True)
            other.rai_map[name] = sgsn.name
            sgsn.rai_map[other_name] = other.name
        self.areas[name] = sgsn
        return sgsn, bsc, bts

    def add_terminal(self, name: str, alias: str, answer_delay: float = 1.0) -> H323Terminal:
        self._terminal_count += 1
        ip = IPv4Address(TERMINAL_IP_BASE.value + self._terminal_count)
        terminal = H323Terminal(
            self.sim, name, ip=ip, alias=E164Number.parse(alias),
            gk_ip=self.gk.ip, answer_delay=answer_delay,
        )
        self.net.add(terminal)
        self.net.connect(terminal, self.cloud, Interface.IP, self.latencies.ip,
                         wire_fidelity=True)
        terminal.register()
        self.terminals[name] = terminal
        return terminal


def build_3gtr_network(
    seed: int = 0,
    latencies: Optional[LatencyProfile] = None,
    num_bts: int = 1,
    packet_channel_bps: Optional[float] = 4 * 13_400.0,
) -> Tgtr3Network:
    """Build the 3G TR 23.923 comparison network (no VMSC; the BSC's PCU
    connects straight to the SGSN)."""
    lat = latencies if latencies is not None else LatencyProfile()
    sim = Simulator(seed=seed)
    net = Network(sim)

    cloud = net.add(IPCloud(sim, "IPNET"))
    gk = Gatekeeper(sim, "GK", ip=GK_IP)
    net.add(gk)
    net.connect(gk, cloud, Interface.IP, lat.ip, wire_fidelity=True)
    gk.attach_to_cloud()

    ggsn = net.add(Ggsn(sim, "GGSN"))
    # Radio-served subscribers fall back to STANDBY and must be paged
    # for downlink traffic (GSM 03.60); the vGPRS builder leaves the
    # timeout off because its Gb peer is the always-reachable VMSC.
    sgsn = net.add(Sgsn(sim, "SGSN", ready_timeout=5.0))
    net.connect(ggsn, cloud, Interface.GI, lat.gi, wire_fidelity=True)
    net.connect(sgsn, ggsn, Interface.GN, lat.gn, wire_fidelity=True)

    bsc = net.add(Bsc(sim, "BSC"))
    net.connect(bsc, sgsn, Interface.GB, lat.gb, wire_fidelity=True)

    network = Tgtr3Network(
        sim=sim, net=net, latencies=lat, cloud=cloud, gk=gk,
        ggsn=ggsn, sgsn=sgsn, bsc=bsc,
    )
    network.areas["RA-1"] = sgsn
    for i in range(num_bts):
        bts = Bts(sim, f"BTS{i + 1}", packet_channel_bps=packet_channel_bps)
        net.add(bts)
        net.connect(bts, bsc, Interface.ABIS, lat.abis, wire_fidelity=True)
        network.btss.append(bts)
    return network
