"""Declarative fault plans.

A :class:`FaultPlan` is scenario *data*: an immutable, time-ordered list
of fault events parsed from a small line grammar (or the equivalent JSON
document), applied to a topology by :class:`repro.faults.injector
.FaultInjector`.  Keeping the plan declarative means the same text can
drive a batch run, every worker of a sweep, and a live serve session —
and travel inside a conformance-suite scenario file (ROADMAP item 3).

Grammar, one event per line (``#`` comments; ``;`` also separates
events so a whole plan fits in one shell argument)::

    at 120 link VMSC--GK down for 30
    at 150 link VMSC--GK up
    at 200 node SGSN crash restart_after 15
    from 60 until 90 link BSC--VMSC loss 0.05 jitter 0.002

The JSON form is a list (or ``{"faults": [...]}``) of objects with a
``kind`` of ``link`` / ``node`` / ``impair`` and the same field names::

    [{"kind": "link", "at": 120, "link": "VMSC--GK", "action": "down",
      "for": 30},
     {"kind": "node", "at": 200, "node": "SGSN", "restart_after": 15},
     {"kind": "impair", "from": 60, "until": 90, "link": "BSC--VMSC",
      "loss": 0.05, "jitter": 0.002}]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class LinkStateFault:
    """Take the ``a``--``b`` link down (or bring it back up) at ``at``;
    ``duration`` auto-restores a downed link after that many seconds."""

    at: float
    a: str
    b: str
    action: str  # "down" | "up"
    duration: Optional[float] = None


@dataclass(frozen=True)
class NodeCrashFault:
    """Crash ``node`` at ``at`` — all its links drop and its volatile
    state is lost — and restart it ``restart_after`` seconds later
    (``None`` leaves it dead)."""

    at: float
    node: str
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class LinkImpairmentFault:
    """Seeded random loss/jitter on the ``a``--``b`` link from ``start``
    until ``until`` (``None`` impairs it for the rest of the run)."""

    start: float
    a: str
    b: str
    loss: float = 0.0
    jitter: float = 0.0
    until: Optional[float] = None


FaultEvent = Union[LinkStateFault, NodeCrashFault, LinkImpairmentFault]


def event_to_json(event: FaultEvent) -> Dict[str, Any]:
    """Serialize one event back to the JSON-grammar object form, so an
    armed plan can travel inside trace notes and incident bundles and
    round-trip through :meth:`FaultPlan.parse`."""
    obj: Dict[str, Any]
    if isinstance(event, LinkStateFault):
        obj = {"kind": "link", "at": event.at,
               "link": f"{event.a}--{event.b}", "action": event.action}
        if event.duration is not None:
            obj["for"] = event.duration
    elif isinstance(event, NodeCrashFault):
        obj = {"kind": "node", "at": event.at, "node": event.node}
        if event.restart_after is not None:
            obj["restart_after"] = event.restart_after
    else:
        obj = {"kind": "impair", "from": event.start,
               "link": f"{event.a}--{event.b}",
               "loss": event.loss, "jitter": event.jitter}
        if event.until is not None:
            obj["until"] = event.until
    return obj


def _parse_time(token: str, line: str) -> float:
    try:
        value = float(token)
    except ValueError:
        raise FaultPlanError(f"bad time {token!r} in fault line {line!r}") from None
    if value < 0:
        raise FaultPlanError(f"negative time {token!r} in fault line {line!r}")
    return value


def _split_link(token: str, line: str) -> Tuple[str, str]:
    parts = token.split("--")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise FaultPlanError(
            f"bad link name {token!r} in fault line {line!r} (want A--B)"
        )
    return parts[0], parts[1]


def _parse_at_line(tokens: List[str], line: str) -> FaultEvent:
    # at T link A--B down [for D] | at T link A--B up
    # at T node NAME crash [restart_after D]
    if len(tokens) < 4:
        raise FaultPlanError(f"truncated fault line {line!r}")
    at = _parse_time(tokens[1], line)
    if tokens[2] == "link":
        a, b = _split_link(tokens[3], line)
        rest = tokens[4:]
        if rest[:1] == ["up"] and len(rest) == 1:
            return LinkStateFault(at=at, a=a, b=b, action="up")
        if rest[:1] == ["down"]:
            if len(rest) == 1:
                return LinkStateFault(at=at, a=a, b=b, action="down")
            if len(rest) == 3 and rest[1] == "for":
                duration = _parse_time(rest[2], line)
                if duration <= 0:
                    raise FaultPlanError(f"non-positive duration in {line!r}")
                return LinkStateFault(
                    at=at, a=a, b=b, action="down", duration=duration
                )
        raise FaultPlanError(f"bad link action in fault line {line!r}")
    if tokens[2] == "node":
        node = tokens[3]
        rest = tokens[4:]
        if rest[:1] != ["crash"]:
            raise FaultPlanError(f"bad node action in fault line {line!r}")
        if len(rest) == 1:
            return NodeCrashFault(at=at, node=node)
        if len(rest) == 3 and rest[1] == "restart_after":
            delay = _parse_time(rest[2], line)
            if delay <= 0:
                raise FaultPlanError(f"non-positive restart_after in {line!r}")
            return NodeCrashFault(at=at, node=node, restart_after=delay)
        raise FaultPlanError(f"bad node action in fault line {line!r}")
    raise FaultPlanError(f"unknown fault target {tokens[2]!r} in {line!r}")


def _parse_from_line(tokens: List[str], line: str) -> FaultEvent:
    # from T [until T2] link A--B loss P [jitter J]  (either order; at
    # least one of loss/jitter must be present)
    start = _parse_time(tokens[1], line)
    rest = tokens[2:]
    until: Optional[float] = None
    if rest[:1] == ["until"]:
        if len(rest) < 2:
            raise FaultPlanError(f"truncated fault line {line!r}")
        until = _parse_time(rest[1], line)
        if until <= start:
            raise FaultPlanError(f"until <= from in fault line {line!r}")
        rest = rest[2:]
    if rest[:1] != ["link"] or len(rest) < 4:
        raise FaultPlanError(f"bad impairment line {line!r}")
    a, b = _split_link(rest[1], line)
    params = {"loss": 0.0, "jitter": 0.0}
    pairs = rest[2:]
    if len(pairs) % 2 != 0:
        raise FaultPlanError(f"dangling impairment parameter in {line!r}")
    for key, value in zip(pairs[0::2], pairs[1::2]):
        if key not in params:
            raise FaultPlanError(f"unknown impairment {key!r} in {line!r}")
        params[key] = _parse_time(value, line)
    if params["loss"] > 1.0:
        raise FaultPlanError(f"loss probability > 1 in {line!r}")
    if params["loss"] == 0.0 and params["jitter"] == 0.0:
        raise FaultPlanError(f"impairment with neither loss nor jitter: {line!r}")
    return LinkImpairmentFault(
        start=start, a=a, b=b, loss=params["loss"], jitter=params["jitter"],
        until=until,
    )


def _event_from_json(obj: Dict[str, Any]) -> FaultEvent:
    kind = obj.get("kind")
    try:
        if kind == "link":
            a, b = _split_link(str(obj["link"]), repr(obj))
            return LinkStateFault(
                at=float(obj["at"]), a=a, b=b,
                action=str(obj.get("action", "down")),
                duration=(
                    float(obj["for"]) if obj.get("for") is not None else None
                ),
            )
        if kind == "node":
            return NodeCrashFault(
                at=float(obj["at"]), node=str(obj["node"]),
                restart_after=(
                    float(obj["restart_after"])
                    if obj.get("restart_after") is not None
                    else None
                ),
            )
        if kind == "impair":
            a, b = _split_link(str(obj["link"]), repr(obj))
            return LinkImpairmentFault(
                start=float(obj["from"]), a=a, b=b,
                loss=float(obj.get("loss", 0.0)),
                jitter=float(obj.get("jitter", 0.0)),
                until=(
                    float(obj["until"]) if obj.get("until") is not None else None
                ),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise FaultPlanError(f"bad fault object {obj!r}: {exc}") from None
    raise FaultPlanError(f"unknown fault kind {kind!r} in {obj!r}")


def _validate(event: FaultEvent) -> FaultEvent:
    if isinstance(event, LinkStateFault):
        if event.action not in ("down", "up"):
            raise FaultPlanError(f"bad link action {event.action!r}")
        if event.duration is not None and (
            event.action != "down" or event.duration <= 0
        ):
            raise FaultPlanError(f"bad duration on {event!r}")
    elif isinstance(event, LinkImpairmentFault):
        if not (0.0 <= event.loss <= 1.0):
            raise FaultPlanError(f"loss out of [0, 1] on {event!r}")
        if event.jitter < 0.0:
            raise FaultPlanError(f"negative jitter on {event!r}")
        if event.until is not None and event.until <= event.start:
            raise FaultPlanError(f"until <= from on {event!r}")
    return event


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault schedule."""

    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the line grammar or a JSON document (auto-detected)."""
        stripped = text.strip()
        if not stripped:
            return cls()
        if stripped[0] in "[{":
            try:
                doc = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(f"bad fault-plan JSON: {exc}") from None
            if isinstance(doc, dict):
                doc = doc.get("faults", [])
            if not isinstance(doc, list):
                raise FaultPlanError("fault-plan JSON must be a list of events")
            return cls.of(*[_event_from_json(obj) for obj in doc])
        events: List[FaultEvent] = []
        for raw in stripped.replace(";", "\n").splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if tokens[0] == "at":
                events.append(_parse_at_line(tokens, line))
            elif tokens[0] == "from":
                events.append(_parse_from_line(tokens, line))
            else:
                raise FaultPlanError(
                    f"fault line must start with 'at' or 'from': {line!r}"
                )
        return cls.of(*events)

    def to_json_events(self) -> List[Dict[str, Any]]:
        """The plan as a list of JSON-grammar event objects (parseable
        back with :meth:`parse`)."""
        return [event_to_json(event) for event in self.events]

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        """Build a plan from event objects, validated and time-sorted
        (stable, so same-time events keep authoring order)."""
        ordered = sorted(
            (_validate(e) for e in events),
            key=lambda e: e.start if isinstance(e, LinkImpairmentFault) else e.at,
        )
        return cls(events=tuple(ordered))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)
