"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live topology.

Everything the injector does is scheduled on the simulator at arm time,
so a fault plan is just more seeded events in the same deterministic
event loop: the same seed + plan produce byte-identical traces whether
the run is batch, paced, or a sweep worker.  Random loss/jitter draws
come from a dedicated per-link RNG stream (``fault.link.A--B``), so
arming a plan never perturbs any other consumer's draws.

Events whose time is already in the past when :meth:`FaultInjector.arm`
runs (topologies do some build-time simulation) fire immediately, in
plan order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import FaultPlanError, TopologyError
from repro.faults.plan import (
    FaultPlan,
    LinkImpairmentFault,
    LinkStateFault,
    NodeCrashFault,
)
from repro.net.link import Link, LinkImpairment
from repro.net.node import Network, Node
from repro.sim.kernel import Simulator


#: Counter families every armed injector pre-registers, so scrapes and
#: alert rules see stable names from t=0 instead of counters popping
#: into existence at the first fault.
FAULT_COUNTERS = (
    "fault.link_down",
    "fault.link_up",
    "fault.node_crash",
    "fault.node_restart",
    "fault.impair_on",
    "fault.impair_off",
    "fault.unresolved",
)

#: Recovery-latency histogram families pre-registered at arm time; the
#: MTTR names SLO rules and ``repro analyze`` report on must exist (at
#: count 0) before the first recovery completes.
FAULT_HISTOGRAMS = ("fault.mttr.gk_registration",)


class FaultInjector:
    """Schedules a plan's link flips, crashes and impairments.

    ``name_prefix`` namespaces plan node names onto prefixed topologies
    (e.g. the roaming builders); ``strict=False`` skips events whose
    link/node the topology lacks (counted as ``fault.unresolved``)
    instead of raising — useful when one plan drives several sweep
    topologies.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        plan: FaultPlan,
        name_prefix: str = "",
        strict: bool = True,
    ) -> None:
        self.sim = sim
        self.net = net
        self.plan = plan
        self.name_prefix = name_prefix
        self.strict = strict
        self.armed = False
        # Links a crash took down, so restart restores exactly those and
        # leaves links downed by other plan events alone.
        self._crashed_links: Dict[str, List[Link]] = {}

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _node(self, name: str) -> Node:
        return self.net.node(f"{self.name_prefix}{name}")

    def _link(self, a: str, b: str) -> Link:
        return self._node(a).link_to(self._node(b))

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Resolve every event against the topology and schedule it."""
        if self.armed:
            raise FaultPlanError("fault injector already armed")
        self.armed = True
        for name in FAULT_COUNTERS:
            self.sim.metrics.counter(name)
        for name in FAULT_HISTOGRAMS:
            self.sim.metrics.histogram(name)
        # The armed plan rides the trace so passive observers (the
        # flight recorder) can embed it in incident bundles without a
        # side channel to the injector.
        self.sim.trace.note(
            "FAULTS",
            "FAULT_PLAN_ARMED",
            events=self.plan.to_json_events(),
            n_events=len(self.plan),
        )
        now = self.sim.now
        for event in self.plan.events:
            try:
                if isinstance(event, LinkStateFault):
                    link = self._link(event.a, event.b)
                    label = f"{event.a}--{event.b}"
                    if event.action == "down":
                        self.sim.schedule_at(
                            max(event.at, now), self._link_down, link, label
                        )
                        if event.duration is not None:
                            self.sim.schedule_at(
                                max(event.at + event.duration, now),
                                self._link_up, link, label,
                            )
                    else:
                        self.sim.schedule_at(
                            max(event.at, now), self._link_up, link, label
                        )
                elif isinstance(event, NodeCrashFault):
                    node = self._node(event.node)
                    self.sim.schedule_at(max(event.at, now), self._crash, node)
                    if event.restart_after is not None:
                        self.sim.schedule_at(
                            max(event.at + event.restart_after, now),
                            self._restart, node,
                        )
                else:
                    link = self._link(event.a, event.b)
                    label = f"{event.a}--{event.b}"
                    self.sim.schedule_at(
                        max(event.start, now),
                        self._impair, link, label, event.loss, event.jitter,
                    )
                    if event.until is not None:
                        self.sim.schedule_at(
                            max(event.until, now), self._unimpair, link, label
                        )
            except TopologyError as exc:
                if self.strict:
                    raise FaultPlanError(
                        f"fault plan does not match topology: {exc}"
                    ) from exc
                self.sim.metrics.counter("fault.unresolved").inc()
        return self

    # ------------------------------------------------------------------
    # Fault actions (all run as simulator events)
    # ------------------------------------------------------------------
    def _link_down(self, link: Link, label: str) -> None:
        if not link.up:
            return
        link.up = False
        self.sim.metrics.counter("fault.link_down").inc()
        self.sim.trace.note(
            "FAULTS", "FAULT_LINK_DOWN", link=label, interface=link.interface
        )

    def _link_up(self, link: Link, label: str) -> None:
        if link.up:
            return
        link.up = True
        self.sim.metrics.counter("fault.link_up").inc()
        self.sim.trace.note(
            "FAULTS", "FAULT_LINK_UP", link=label, interface=link.interface
        )

    def _crash(self, node: Node) -> None:
        was_up: List[Link] = []
        for link in node.all_links():
            if link.up:
                link.up = False
                was_up.append(link)
        self._crashed_links[node.name] = was_up
        self.sim.metrics.counter("fault.node_crash").inc()
        self.sim.trace.note("FAULTS", "FAULT_NODE_CRASH", name=node.name)
        node.on_crash()

    def _restart(self, node: Node) -> None:
        for link in self._crashed_links.pop(node.name, []):
            link.up = True
        self.sim.metrics.counter("fault.node_restart").inc()
        self.sim.trace.note("FAULTS", "FAULT_NODE_RESTART", name=node.name)
        node.on_restart()

    def _impair(self, link: Link, label: str, loss: float, jitter: float) -> None:
        link.impairment = LinkImpairment(
            loss=loss,
            jitter=jitter,
            rng=self.sim.rng.stream(f"fault.link.{label}"),
            drops=self.sim.metrics.counter(
                f"link.{link.interface}.dropped_loss"
            ),
        )
        self.sim.metrics.counter("fault.impair_on").inc()
        self.sim.trace.note(
            "FAULTS", "FAULT_IMPAIR_ON", link=label, loss=loss, jitter=jitter
        )

    def _unimpair(self, link: Link, label: str) -> None:
        if link.impairment is None:
            return
        link.impairment = None
        self.sim.metrics.counter("fault.impair_off").inc()
        self.sim.trace.note("FAULTS", "FAULT_IMPAIR_OFF", link=label)


def apply_faults(
    nw: object, faults: object, name_prefix: str = "", strict: bool = True
) -> Tuple[FaultInjector, ...]:
    """Convenience for CLI/sweep wiring: parse *faults* (a plan, plan
    text, or ``None``) and arm it on a built network object exposing
    ``sim`` and ``net``.  Returns the armed injectors (empty for no
    plan)."""
    if not faults:
        return ()
    plan = faults if isinstance(faults, FaultPlan) else FaultPlan.parse(str(faults))
    if not plan:
        return ()
    sim = getattr(nw, "sim")
    net = getattr(nw, "net")
    injector = FaultInjector(
        sim, net, plan, name_prefix=name_prefix, strict=strict
    ).arm()
    return (injector,)
