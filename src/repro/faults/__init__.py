"""Deterministic fault injection (``repro.faults``).

Fault schedules are first-class scenario data: a :class:`FaultPlan`
(text/JSON grammar) applied by a :class:`FaultInjector` flips links,
crashes nodes and impairs channels as ordinary seeded simulator events.
See ``README.md`` ("Fault injection") for the grammar and the recovery
counters the protocol layers emit.
"""

from repro.faults.injector import FaultInjector, apply_faults
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    LinkImpairmentFault,
    LinkStateFault,
    NodeCrashFault,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkImpairmentFault",
    "LinkStateFault",
    "NodeCrashFault",
    "apply_faults",
]
