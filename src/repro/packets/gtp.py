"""GPRS Tunnelling Protocol, GSM 09.60 (GTP v0).

GTP runs on the Gn interface between SGSN and GGSN.  The header carries a
tunnel identifier (TID = IMSI + NSAPI) selecting the PDP context; GTP-C
messages manage contexts, and T-PDUs carry the subscriber's IP traffic.

:class:`GtpHeader` is a transport layer; the GTP-C messages below it are
flow-visible because the paper's step 1.3/2.9/3.4 discussion is about
exactly these exchanges.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    ImsiField,
    IntField,
    IPv4AddressField,
    OptionalField,
    ShortField,
    StrField,
    TunnelIdField,
)

# GTP v0 message types (GSM 09.60 §7.1).
MSG_CREATE_PDP_REQ = 16
MSG_CREATE_PDP_RSP = 17
MSG_UPDATE_PDP_REQ = 18
MSG_UPDATE_PDP_RSP = 19
MSG_DELETE_PDP_REQ = 20
MSG_DELETE_PDP_RSP = 21
MSG_PDU_NOTIFY_REQ = 27
MSG_PDU_NOTIFY_RSP = 28
MSG_T_PDU = 255

# GTP cause values (subset).
CAUSE_ACCEPTED = 128
CAUSE_NO_RESOURCES = 199
CAUSE_UNKNOWN_PDP = 196
CAUSE_SYSTEM_FAILURE = 204


class GtpHeader(Packet):
    """The GTP v0 header: message type, sequence number and TID."""

    name = "GTP"
    show_in_flow = False
    fields = (
        ByteField("msg_type", MSG_T_PDU),
        ShortField("seq", 0),
        TunnelIdField("tid"),
    )

    def info(self) -> Dict[str, str]:
        return {"tid": str(self.tid)}


class GtpCreatePdpContextRequest(Packet):
    """SGSN -> GGSN: create a PDP context for the TID in the header."""

    name = "Create_PDP_Context_Request"
    fields = (
        ByteField("nsapi"),
        ByteField("qos_delay_class", 4),       # 1 = best, 4 = background
        ShortField("qos_peak_kbps", 16),
        OptionalField(IPv4AddressField("static_pdp_address")),
        StrField("apn", "voip.gprs"),
        StrField("sgsn_address"),
    )


class GtpCreatePdpContextResponse(Packet):
    """GGSN -> SGSN: result plus the (possibly dynamic) PDP address."""

    name = "Create_PDP_Context_Response"
    fields = (
        ByteField("cause", CAUSE_ACCEPTED),
        OptionalField(IPv4AddressField("pdp_address")),
        ByteField("qos_delay_class", 4),
    )


class GtpUpdatePdpContextRequest(Packet):
    """SGSN -> GGSN: move a context (inter-SGSN routing-area update)."""

    name = "Update_PDP_Context_Request"
    fields = (
        ByteField("nsapi"),
        StrField("sgsn_address"),
    )


class GtpUpdatePdpContextResponse(Packet):
    name = "Update_PDP_Context_Response"
    fields = (ByteField("cause", CAUSE_ACCEPTED),)


class GtpDeletePdpContextRequest(Packet):
    """SGSN -> GGSN: tear down the context selected by the header TID."""

    name = "Delete_PDP_Context_Request"
    fields = (ByteField("nsapi"),)


class GtpDeletePdpContextResponse(Packet):
    name = "Delete_PDP_Context_Response"
    fields = (ByteField("cause", CAUSE_ACCEPTED),)


class GtpSgsnContextRequest(Packet):
    """New SGSN -> old SGSN (Gn): fetch the subscriber's MM and PDP
    contexts during an inter-SGSN routing-area update (GSM 03.60 §6.9)."""

    name = "SGSN_Context_Request"
    fields = (ImsiField("imsi"), StrField("new_sgsn"))


class GtpSgsnContextResponse(Packet):
    """Old SGSN -> new SGSN: cause plus one PdpContextIe payload per
    transferred context."""

    name = "SGSN_Context_Response"
    fields = (
        ImsiField("imsi"),
        ByteField("cause", CAUSE_ACCEPTED),
        OptionalField(IntField("ptmsi")),
    )


class PdpContextIe(Packet):
    """One transferred PDP context, chained as payload layers under an
    SGSN Context Response."""

    name = "PDP_Context_IE"
    show_in_flow = False
    fields = (
        ByteField("nsapi"),
        ByteField("qos_delay_class", 4),
        ShortField("qos_peak_kbps", 16),
        IPv4AddressField("pdp_address"),
        StrField("apn", "voip.gprs"),
        ByteField("static", 0),
    )


class GtpPduNotificationRequest(Packet):
    """GGSN -> SGSN: a PDU arrived for a subscriber with no active
    context; triggers network-requested PDP context activation.  GSM
    03.60 notes this needs a *static* PDP address — the limitation the
    paper holds against the 3G TR 23.923 approach (§6)."""

    name = "PDU_Notification_Request"
    fields = (
        ImsiField("imsi"),
        IPv4AddressField("pdp_address"),
    )


class GtpPduNotificationResponse(Packet):
    name = "PDU_Notification_Response"
    fields = (ByteField("cause", CAUSE_ACCEPTED),)
