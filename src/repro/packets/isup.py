"""SS7 ISUP trunk signalling.

ISUP sets up circuit-switched trunks between PSTN switches, GMSCs and the
(V)MSC.  The tromboning experiment (Figures 7–8) counts these trunks: the
classic GSM call to a roamer allocates two international circuits, the
vGPRS call none.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    E164Field,
    IntField,
    LongField,
    OptionalField,
)

CAUSE_NORMAL = 16
CAUSE_BUSY = 17
CAUSE_UNALLOCATED_NUMBER = 1
CAUSE_NO_ROUTE = 3


class IsupMessage(Packet):
    """Base: ISUP messages reference a circuit identification code."""

    name = "ISUP"
    fields = (IntField("cic"),)

    def info(self) -> Dict[str, int]:
        return {"cic": self.cic}


class IsupIam(IsupMessage):
    """Initial Address Message: seize a circuit toward the called party."""

    name = "ISUP_IAM"
    fields = IsupMessage.fields + (
        E164Field("called"),
        OptionalField(E164Field("calling")),
    )

    def info(self) -> Dict[str, object]:
        return {"cic": self.cic, "called": str(self.called)}


class IsupAcm(IsupMessage):
    """Address Complete Message: the far end is being alerted."""

    name = "ISUP_ACM"
    fields = IsupMessage.fields


class IsupAnm(IsupMessage):
    """Answer Message: the called party picked up."""

    name = "ISUP_ANM"
    fields = IsupMessage.fields


class IsupRel(IsupMessage):
    """Release: clear the circuit."""

    name = "ISUP_REL"
    fields = IsupMessage.fields + (ByteField("cause", CAUSE_NORMAL),)


class IsupRlc(IsupMessage):
    """Release Complete."""

    name = "ISUP_RLC"
    fields = IsupMessage.fields


class PcmFrame(Packet):
    """A 20 ms PCM voice sample block on an established circuit.

    Switches forward these hop by hop along the circuit chain built by
    the IAM, rewriting the CIC at each hop; ``gen_time_us`` carries the
    talker's generation instant for end-to-end delay measurement.
    """

    name = "PCM_Frame"
    show_in_flow = False
    fields = (
        IntField("cic"),
        IntField("seq"),
        LongField("gen_time_us", 0),
    )
