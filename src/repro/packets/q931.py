"""H.225.0 call signalling (Q.931 messages).

H.323 uses Q.931-derived messages on the call-signalling channel: Setup,
Call Proceeding, Alerting, Connect and Release Complete — the exact
vocabulary of the paper's Figures 5 and 6.  Each message carries the call
reference that correlates one call's signalling.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    E164Field,
    IntField,
    IPv4AddressField,
    OptionalField,
    ShortField,
    StrField,
)

# Q.931 cause values (subset of ITU-T Q.850).
CAUSE_NORMAL_CLEARING = 16
CAUSE_USER_BUSY = 17
CAUSE_NO_ANSWER = 19
CAUSE_CALL_REJECTED = 21
CAUSE_NO_ROUTE = 3
CAUSE_RESOURCE_UNAVAILABLE = 47


class Q931Message(Packet):
    """Base: every Q.931 message carries the call reference."""

    name = "Q931"
    fields = (IntField("call_ref"),)

    def info(self) -> Dict[str, int]:
        return {"call_ref": self.call_ref}


class Q931Setup(Q931Message):
    """Initiates a call toward the called alias; carries the caller's
    signalling and media transport addresses."""

    name = "Q931_Setup"
    fields = Q931Message.fields + (
        E164Field("called"),
        OptionalField(E164Field("calling")),
        IPv4AddressField("signal_address"),
        ShortField("signal_port"),
        IPv4AddressField("media_address"),
        ShortField("media_port"),
        StrField("codec", "G.711u"),
    )

    def info(self) -> Dict[str, object]:
        return {"call_ref": self.call_ref, "called": str(self.called)}


class Q931CallProceeding(Q931Message):
    name = "Q931_Call_Proceeding"
    fields = Q931Message.fields


class Q931Alerting(Q931Message):
    name = "Q931_Alerting"
    fields = Q931Message.fields


class Q931Connect(Q931Message):
    """Call answered; returns the answerer's media transport address."""

    name = "Q931_Connect"
    fields = Q931Message.fields + (
        IPv4AddressField("media_address"),
        ShortField("media_port"),
        StrField("codec", "G.711u"),
    )


class Q931ReleaseComplete(Q931Message):
    name = "Q931_Release_Complete"
    fields = Q931Message.fields + (ByteField("cause", CAUSE_NORMAL_CLEARING),)
