"""GSM Mobile Application Part (MAP) operations, GSM 09.02.

MAP runs over the SS7 B/C/D/E/Gr interfaces between (V)MSC, VLR, HLR,
SGSN and GMSC.  The subset implemented covers every operation the paper's
procedures need:

* location management — Update_Location_Area, Update_Location,
  Insert_Subs_Data, Cancel_Location;
* authentication — Send_Auth_Info;
* call handling — Send_Info_For_Outgoing_Call (step 2.2),
  Send_Routing_Information + Provide_Roaming_Number (classic GSM MT call,
  the Figure 7 tromboning baseline);
* inter-system handoff on the E interface — Prepare_Handover,
  Send_End_Signal (Figure 9).
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    BoolField,
    BytesField,
    E164Field,
    ImsiField,
    IntField,
    OptionalField,
    ShortField,
    StrField,
)

# MAP user errors (subset).
ERR_UNKNOWN_SUBSCRIBER = 1
ERR_CALL_BARRED = 13
ERR_ABSENT_SUBSCRIBER = 27
ERR_SYSTEM_FAILURE = 34


class MapMessage(Packet):
    """Base: a TCAP-like invoke id correlates request/response pairs."""

    name = "MAP"
    fields = (ShortField("invoke_id"),)

    def info(self) -> Dict[str, int]:
        return {"invoke_id": self.invoke_id}


# ----------------------------------------------------------------------
# Location management
# ----------------------------------------------------------------------
class MapUpdateLocationArea(MapMessage):
    """(V)MSC -> VLR, paper step 1.1."""

    name = "MAP_Update_Location_Area"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        OptionalField(IntField("tmsi")),
        StrField("lai"),
    )


class MapUpdateLocationAreaAck(MapMessage):
    """VLR -> (V)MSC, paper step 1.2 (registration successful)."""

    name = "MAP_Update_Location_Area_ack"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        OptionalField(IntField("new_tmsi")),
        OptionalField(E164Field("msisdn")),
        ByteField("error", 0),
    )


class MapUpdateLocation(MapMessage):
    """VLR -> HLR, paper step 1.2."""

    name = "MAP_Update_Location"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        StrField("vlr_number"),
        StrField("msc_number"),
    )


class MapUpdateLocationAck(MapMessage):
    name = "MAP_Update_Location_ack"
    fields = MapMessage.fields + (ByteField("error", 0),)


class MapInsertSubsData(MapMessage):
    """HLR -> VLR: download of the subscription profile (step 1.2)."""

    name = "MAP_Insert_Subs_Data"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        E164Field("msisdn"),
        BoolField("international_allowed", True),
        BoolField("gprs_allowed", True),
    )


class MapInsertSubsDataAck(MapMessage):
    name = "MAP_Insert_Subs_Data_ack"
    fields = MapMessage.fields


class MapCancelLocation(MapMessage):
    """HLR -> old VLR when the subscriber registers elsewhere."""

    name = "MAP_Cancel_Location"
    fields = MapMessage.fields + (ImsiField("imsi"),)


class MapCancelLocationAck(MapMessage):
    name = "MAP_Cancel_Location_ack"
    fields = MapMessage.fields


class MapDetachImsi(MapMessage):
    """(V)MSC -> VLR: the MS announced power-off; mark it detached so
    incoming calls fail fast instead of paging."""

    name = "MAP_Detach_IMSI"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        OptionalField(IntField("tmsi")),
    )


# ----------------------------------------------------------------------
# Authentication
# ----------------------------------------------------------------------
class MapSendAuthInfo(MapMessage):
    """VLR -> HLR/AuC: request authentication triplets."""

    name = "MAP_Send_Auth_Info"
    fields = MapMessage.fields + (ImsiField("imsi"),)


class MapSendAuthInfoAck(MapMessage):
    """One (RAND, SRES, Kc) triplet; real systems batch five."""

    name = "MAP_Send_Auth_Info_ack"
    fields = MapMessage.fields + (
        BytesField("rand"),
        BytesField("sres"),
        BytesField("kc"),
        ByteField("error", 0),
    )


class MapProcessAccessRequest(MapMessage):
    """(V)MSC -> VLR: an MS requests service (CM service request or
    paging response); the VLR authenticates and starts ciphering before
    acknowledging."""

    name = "MAP_Process_Access_Request"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        OptionalField(IntField("tmsi")),
        ByteField("access_type", 1),  # 1 = MO call, 2 = page response
    )


class MapProcessAccessRequestAck(MapMessage):
    name = "MAP_Process_Access_Request_ack"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        ByteField("error", 0),
    )


# ----------------------------------------------------------------------
# Call handling
# ----------------------------------------------------------------------
class MapSendInfoForOutgoingCall(MapMessage):
    """(V)MSC -> VLR: authorise an outgoing call (paper step 2.2)."""

    name = "MAP_Send_Info_For_Outgoing_Call"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        OptionalField(IntField("tmsi")),
        E164Field("called"),
    )


class MapSendInfoForOutgoingCallAck(MapMessage):
    name = "MAP_Send_Info_For_Outgoing_Call_ack"
    fields = MapMessage.fields + (
        BoolField("allowed", True),
        ByteField("error", 0),
    )


class MapSendInfoForIncomingCall(MapMessage):
    """(V)MSC -> VLR: resolve an arriving call to a subscriber.  Classic
    GSM delivery presents the MSRN from the ISUP IAM; the VLR maps it back
    to the IMSI it allocated the roaming number for."""

    name = "MAP_Send_Info_For_Incoming_Call"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        OptionalField(E164Field("msrn")),
    )


class MapSendInfoForIncomingCallAck(MapMessage):
    name = "MAP_Send_Info_For_Incoming_Call_ack"
    fields = MapMessage.fields + (
        OptionalField(ImsiField("imsi")),
        BoolField("reachable", True),
        ByteField("error", 0),
    )


class MapSendRoutingInformation(MapMessage):
    """GMSC -> HLR: where is the called MSISDN?  (Classic GSM call
    delivery; the first leg of Figure 7's tromboning.)"""

    name = "MAP_Send_Routing_Information"
    fields = MapMessage.fields + (E164Field("msisdn"),)


class MapSendRoutingInformationAck(MapMessage):
    """HLR -> GMSC: the MSRN obtained from the serving VLR."""

    name = "MAP_Send_Routing_Information_ack"
    fields = MapMessage.fields + (
        OptionalField(E164Field("msrn")),
        ByteField("error", 0),
    )


class MapProvideRoamingNumber(MapMessage):
    """HLR -> serving VLR: allocate a roaming number for call delivery."""

    name = "MAP_Provide_Roaming_Number"
    fields = MapMessage.fields + (ImsiField("imsi"),)


class MapProvideRoamingNumberAck(MapMessage):
    name = "MAP_Provide_Roaming_Number_ack"
    fields = MapMessage.fields + (
        OptionalField(E164Field("msrn")),
        ByteField("error", 0),
    )


# ----------------------------------------------------------------------
# Inter-system handoff (MAP E interface, Figure 9)
# ----------------------------------------------------------------------
class MapPrepareHandover(MapMessage):
    """Anchor (V)MSC -> target MSC: prepare radio resources."""

    name = "MAP_Prepare_Handover"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        IntField("call_ref"),
        StrField("target_cell"),
    )


class MapPrepareHandoverAck(MapMessage):
    """Target MSC -> anchor: handover number for the E-interface trunk."""

    name = "MAP_Prepare_Handover_ack"
    fields = MapMessage.fields + (
        OptionalField(E164Field("handover_number")),
        ByteField("error", 0),
    )


class MapPrepareSubsequentHandover(MapMessage):
    """Serving MSC -> anchor: the MS must move again (back to the anchor
    or onward to a third system).  GSM routes every subsequent handoff
    through the anchor, which stays in the call path."""

    name = "MAP_Prepare_Subsequent_Handover"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        IntField("call_ref"),
        StrField("target_cell"),
    )


class MapProcessAccessSignalling(MapMessage):
    """Target MSC -> anchor: MS arrived on the target system."""

    name = "MAP_Process_Access_Signalling"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        IntField("call_ref"),
    )


class MapSendEndSignal(MapMessage):
    """Target MSC -> anchor: handoff complete; anchor stays in the path."""

    name = "MAP_Send_End_Signal"
    fields = MapMessage.fields + (
        ImsiField("imsi"),
        IntField("call_ref"),
    )


class MapSendEndSignalAck(MapMessage):
    """Anchor -> target, sent at call clearing to release resources."""

    name = "MAP_Send_End_Signal_ack"
    fields = MapMessage.fields + (IntField("call_ref"),)
