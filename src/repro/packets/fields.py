"""Typed packet fields.

Each field knows how to validate a value, encode it to bytes and decode it
back.  Encodings are self-delimiting so a packet's field section can be
parsed without a length prefix:

* fixed-width integers are big-endian;
* digit strings (IMSI, dialled digits) are packed BCD with a length byte,
  as in GSM 04.08 called-party IEs;
* free-form strings/bytes carry a two-byte length prefix;
* optional fields carry a one-byte presence flag.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.errors import FieldError
from repro.identities import E164Number, IMSI, IPv4Address, TunnelId


class Field:
    """Base field: subclasses implement validate/encode/decode."""

    def __init__(self, name: str, default: Any = None) -> None:
        self.name = name
        self.default = default

    def validate(self, value: Any) -> Any:
        return value

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> Tuple[Any, int]:
        raise NotImplementedError

    def skip(self, data: bytes, offset: int) -> int:
        """Return the offset just past this field without materialising
        its value.  Subclasses with self-delimiting encodings override
        this with a pure boundary scan; the fallback decodes and drops.
        Used by the lazy parse path (:meth:`Packet.parse` with
        ``lazy=True``) — structural errors (truncation, bad lengths)
        still raise here, value-level validation is deferred until the
        field is first read."""
        return self.decode(data, offset)[1]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class UIntField(Field):
    """Unsigned big-endian integer of *size* bytes."""

    size = 0

    def __init__(self, name: str, default: int = 0) -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise FieldError(f"{self.name}: expected int, got {value!r}")
        if not 0 <= value < (1 << (8 * self.size)):
            raise FieldError(
                f"{self.name}: {value} does not fit in {self.size} bytes"
            )
        return value

    def encode(self, value: int) -> bytes:
        return value.to_bytes(self.size, "big")

    def decode(self, data: bytes, offset: int) -> Tuple[int, int]:
        end = offset + self.size
        if end > len(data):
            raise FieldError(f"{self.name}: truncated at offset {offset}")
        return int.from_bytes(data[offset:end], "big"), end

    def skip(self, data: bytes, offset: int) -> int:
        end = offset + self.size
        if end > len(data):
            raise FieldError(f"{self.name}: truncated at offset {offset}")
        return end


class ByteField(UIntField):
    size = 1


class ShortField(UIntField):
    size = 2


class IntField(UIntField):
    size = 4


class LongField(UIntField):
    size = 8


class BoolField(Field):
    """One byte, 0 or 1."""

    def __init__(self, name: str, default: bool = False) -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise FieldError(f"{self.name}: expected bool, got {value!r}")
        return value

    def encode(self, value: bool) -> bytes:
        return b"\x01" if value else b"\x00"

    def decode(self, data: bytes, offset: int) -> Tuple[bool, int]:
        if offset >= len(data):
            raise FieldError(f"{self.name}: truncated")
        byte = data[offset]
        if byte not in (0, 1):
            raise FieldError(f"{self.name}: bad boolean byte {byte:#x}")
        return bool(byte), offset + 1

    def skip(self, data: bytes, offset: int) -> int:
        if offset >= len(data):
            raise FieldError(f"{self.name}: truncated")
        return offset + 1


class EnumField(ByteField):
    """A byte restricted to a named value set."""

    def __init__(self, name: str, values: Tuple[int, ...], default: int = 0) -> None:
        super().__init__(name, default)
        self.values = frozenset(values)

    def validate(self, value: Any) -> int:
        value = super().validate(value)
        if value not in self.values:
            raise FieldError(f"{self.name}: {value} not in {sorted(self.values)}")
        return value


class BytesField(Field):
    """Raw bytes with a two-byte length prefix (max 65535)."""

    def __init__(self, name: str, default: bytes = b"") -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise FieldError(f"{self.name}: expected bytes, got {value!r}")
        if len(value) > 0xFFFF:
            raise FieldError(f"{self.name}: too long ({len(value)} bytes)")
        return bytes(value)

    def encode(self, value: bytes) -> bytes:
        return len(value).to_bytes(2, "big") + value

    def decode(self, data: bytes, offset: int) -> Tuple[bytes, int]:
        if offset + 2 > len(data):
            raise FieldError(f"{self.name}: truncated length prefix")
        length = int.from_bytes(data[offset : offset + 2], "big")
        end = offset + 2 + length
        if end > len(data):
            raise FieldError(f"{self.name}: truncated body")
        return data[offset + 2 : end], end

    def skip(self, data: bytes, offset: int) -> int:
        if offset + 2 > len(data):
            raise FieldError(f"{self.name}: truncated length prefix")
        end = offset + 2 + int.from_bytes(data[offset : offset + 2], "big")
        if end > len(data):
            raise FieldError(f"{self.name}: truncated body")
        return end


class StrField(BytesField):
    """UTF-8 string with a two-byte length prefix."""

    def __init__(self, name: str, default: str = "") -> None:
        Field.__init__(self, name, default)

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise FieldError(f"{self.name}: expected str, got {value!r}")
        if len(value.encode()) > 0xFFFF:
            raise FieldError(f"{self.name}: too long")
        return value

    def encode(self, value: str) -> bytes:
        return BytesField.encode(self, value.encode())

    def decode(self, data: bytes, offset: int) -> Tuple[str, int]:
        raw, end = BytesField.decode(self, data, offset)
        try:
            return raw.decode(), end
        except UnicodeDecodeError as exc:
            raise FieldError(f"{self.name}: invalid UTF-8") from exc


def _pack_bcd(digits: str) -> bytes:
    """Pack a decimal digit string as BCD nibbles, 0xF padded."""
    out = bytearray([len(digits)])
    for i in range(0, len(digits), 2):
        lo = int(digits[i])
        hi = int(digits[i + 1]) if i + 1 < len(digits) else 0xF
        out.append((hi << 4) | lo)
    return bytes(out)


def _unpack_bcd(data: bytes, offset: int, what: str) -> Tuple[str, int]:
    if offset >= len(data):
        raise FieldError(f"{what}: truncated BCD length")
    ndigits = data[offset]
    nbytes = (ndigits + 1) // 2
    end = offset + 1 + nbytes
    if end > len(data):
        raise FieldError(f"{what}: truncated BCD body")
    digits = []
    for byte in data[offset + 1 : end]:
        digits.append(byte & 0xF)
        digits.append(byte >> 4)
    digits = digits[:ndigits]
    if any(d > 9 for d in digits):
        raise FieldError(f"{what}: non-decimal BCD nibble")
    return "".join(str(d) for d in digits), end


def _skip_bcd(data: bytes, offset: int, what: str) -> int:
    """Boundary scan over one BCD group: length byte then packed nibbles."""
    if offset >= len(data):
        raise FieldError(f"{what}: truncated BCD length")
    end = offset + 1 + (data[offset] + 1) // 2
    if end > len(data):
        raise FieldError(f"{what}: truncated BCD body")
    return end


class DigitsField(Field):
    """A decimal digit string, BCD packed (length byte + nibbles)."""

    def __init__(self, name: str, default: str = "") -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise FieldError(f"{self.name}: expected digits, got {value!r}")
        if value and not value.isdigit():
            raise FieldError(f"{self.name}: expected digits, got {value!r}")
        if len(value) > 255:
            raise FieldError(f"{self.name}: too many digits")
        return value

    def encode(self, value: str) -> bytes:
        return _pack_bcd(value)

    def decode(self, data: bytes, offset: int) -> Tuple[str, int]:
        return _unpack_bcd(data, offset, self.name)

    def skip(self, data: bytes, offset: int) -> int:
        return _skip_bcd(data, offset, self.name)


class ImsiField(Field):
    """An :class:`IMSI`, BCD packed."""

    def __init__(self, name: str, default: Optional[IMSI] = None) -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> IMSI:
        if not isinstance(value, IMSI):
            raise FieldError(f"{self.name}: expected IMSI, got {value!r}")
        return value

    def encode(self, value: IMSI) -> bytes:
        return _pack_bcd(value.digits)

    def decode(self, data: bytes, offset: int) -> Tuple[IMSI, int]:
        digits, end = _unpack_bcd(data, offset, self.name)
        return IMSI(digits), end

    def skip(self, data: bytes, offset: int) -> int:
        return _skip_bcd(data, offset, self.name)


class E164Field(Field):
    """An :class:`E164Number`: BCD country code, then BCD national part."""

    def __init__(self, name: str, default: Optional[E164Number] = None) -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> E164Number:
        if not isinstance(value, E164Number):
            raise FieldError(f"{self.name}: expected E164Number, got {value!r}")
        return value

    def encode(self, value: E164Number) -> bytes:
        return _pack_bcd(value.country_code) + _pack_bcd(value.national)

    def decode(self, data: bytes, offset: int) -> Tuple[E164Number, int]:
        cc, offset = _unpack_bcd(data, offset, self.name + ".cc")
        national, offset = _unpack_bcd(data, offset, self.name + ".national")
        return E164Number(cc, national), offset

    def skip(self, data: bytes, offset: int) -> int:
        offset = _skip_bcd(data, offset, self.name + ".cc")
        return _skip_bcd(data, offset, self.name + ".national")


class IPv4AddressField(Field):
    """Four raw bytes holding an :class:`IPv4Address`."""

    def __init__(self, name: str, default: Optional[IPv4Address] = None) -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> IPv4Address:
        if not isinstance(value, IPv4Address):
            raise FieldError(f"{self.name}: expected IPv4Address, got {value!r}")
        return value

    def encode(self, value: IPv4Address) -> bytes:
        return value.value.to_bytes(4, "big")

    def decode(self, data: bytes, offset: int) -> Tuple[IPv4Address, int]:
        end = offset + 4
        if end > len(data):
            raise FieldError(f"{self.name}: truncated")
        return IPv4Address(int.from_bytes(data[offset:end], "big")), end

    def skip(self, data: bytes, offset: int) -> int:
        end = offset + 4
        if end > len(data):
            raise FieldError(f"{self.name}: truncated")
        return end


class TunnelIdField(Field):
    """A GTP v0 TID: BCD IMSI plus one NSAPI byte."""

    def __init__(self, name: str, default: Optional[TunnelId] = None) -> None:
        super().__init__(name, default)

    def validate(self, value: Any) -> TunnelId:
        if not isinstance(value, TunnelId):
            raise FieldError(f"{self.name}: expected TunnelId, got {value!r}")
        return value

    def encode(self, value: TunnelId) -> bytes:
        return _pack_bcd(value.imsi.digits) + bytes([value.nsapi])

    def decode(self, data: bytes, offset: int) -> Tuple[TunnelId, int]:
        digits, offset = _unpack_bcd(data, offset, self.name)
        if offset >= len(data):
            raise FieldError(f"{self.name}: truncated NSAPI")
        return TunnelId(IMSI(digits), data[offset]), offset + 1

    def skip(self, data: bytes, offset: int) -> int:
        offset = _skip_bcd(data, offset, self.name)
        if offset >= len(data):
            raise FieldError(f"{self.name}: truncated NSAPI")
        return offset + 1


class OptionalField(Field):
    """Wraps another field with a one-byte presence flag; value may be
    ``None``."""

    def __init__(self, inner: Field) -> None:
        super().__init__(inner.name, None)
        self.inner = inner

    def validate(self, value: Any) -> Any:
        if value is None:
            return None
        return self.inner.validate(value)

    def encode(self, value: Any) -> bytes:
        if value is None:
            return b"\x00"
        return b"\x01" + self.inner.encode(value)

    def decode(self, data: bytes, offset: int) -> Tuple[Any, int]:
        if offset >= len(data):
            raise FieldError(f"{self.name}: truncated presence flag")
        flag = data[offset]
        if flag == 0:
            return None, offset + 1
        if flag != 1:
            raise FieldError(f"{self.name}: bad presence flag {flag:#x}")
        return self.inner.decode(data, offset + 1)

    def skip(self, data: bytes, offset: int) -> int:
        # The flag is structural (it steers the boundary), so it is
        # validated here even on the lazy path.
        if offset >= len(data):
            raise FieldError(f"{self.name}: truncated presence flag")
        flag = data[offset]
        if flag == 0:
            return offset + 1
        if flag != 1:
            raise FieldError(f"{self.name}: bad presence flag {flag:#x}")
        return self.inner.skip(data, offset + 1)
