"""Scapy-style packet crafting.

Every message that crosses a simulated link is a :class:`Packet` built
from typed fields, layered with the ``/`` operator and serialisable to
bytes::

    pkt = IPv4(src=a, dst=b) / UDP(sport=2152, dport=2152) \\
          / GtpHeader(tid=tid) / Q931Setup(call_ref=7, ...)
    wire = pkt.build()
    assert type(pkt).parse(wire) == pkt

Protocol modules:

* :mod:`repro.packets.ip`    — IPv4, UDP, TCP-lite
* :mod:`repro.packets.gtp`   — GPRS tunnelling protocol (GSM 09.60)
* :mod:`repro.packets.q931`  — H.225/Q.931 call signalling
* :mod:`repro.packets.ras`   — H.225 RAS (gatekeeper) messages
* :mod:`repro.packets.map`   — GSM MAP operations
* :mod:`repro.packets.bssap` — Um/Abis/A-interface messages
* :mod:`repro.packets.isup`  — SS7 ISUP trunk signalling
* :mod:`repro.packets.rtp`   — RTP voice frames
* :mod:`repro.packets.gmm`   — GPRS mobility and session management
"""

from repro.packets.base import Packet, Raw
from repro.packets import fields

__all__ = ["Packet", "Raw", "fields"]
