"""RTP voice framing.

At the VMSC the vocoder translates circuit-switched TCH frames into RTP
packets carried through the GPRS tunnel to the H.323 side (Figure 2(b),
voice path (6)-(4)).  ``gen_time_us`` preserves the talker's generation
instant across the transcoding boundary so experiment E9 can measure
end-to-end mouth-to-ear delay.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import ByteField, BytesField, IntField, LongField, ShortField

# RTP payload types (RFC 3551 static assignments).
PT_PCMU = 0     # G.711 mu-law
PT_GSM = 3      # GSM 06.10 full rate
PT_G729 = 18


class RtpPacket(Packet):
    """One RTP packet: header plus an opaque codec frame."""

    name = "RTP"
    show_in_flow = False
    fields = (
        ByteField("payload_type", PT_PCMU),
        ShortField("seq"),
        IntField("timestamp"),
        IntField("ssrc"),
        LongField("gen_time_us"),
        BytesField("frame", b""),
    )

    def info(self) -> Dict[str, int]:
        return {"rtp_seq": self.seq}
