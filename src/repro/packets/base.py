"""The layered :class:`Packet` base class.

Packets stack with the ``/`` operator (scapy convention)::

    frame = IPv4(src=a, dst=b) / UDP(sport=1719, dport=1719) / RasRrq(...)

On the wire each layer is ``[wire_id:2][encoded fields][payload...]``.
Wire ids are assigned from a central registry at class-definition time, in
definition order, which is deterministic because the protocol modules are
always imported in package order.  ``parse`` reads the id, finds the class
and decodes fields; any remaining bytes are parsed recursively as the
payload.

Tracing: each layer sets ``show_in_flow`` — transport layers (IPv4, UDP,
GTP) set it ``False`` so that :meth:`Packet.flow_name` names the innermost
*signalling* message, which is what the paper's figures display (a Q.931
Setup is still "Q.931 Setup" while tunnelled through GTP).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type, TypeVar

from repro.errors import PacketError
from repro.packets.fields import BytesField, Field, OptionalField

P = TypeVar("P", bound="Packet")

_WIRE_REGISTRY: Dict[int, Type["Packet"]] = {}
_NEXT_WIRE_ID = [1]


class Packet:
    """Base class for every protocol message.

    Subclasses declare::

        class RasRrq(Packet):
            name = "RAS_RRQ"
            fields = (
                E164Field("alias"),
                IPv4AddressField("transport_address"),
            )
    """

    name: str = "Packet"
    fields: Tuple[Field, ...] = ()
    show_in_flow: bool = True
    wire_id: int = 0

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if "wire_id" not in cls.__dict__:
            cls.wire_id = _NEXT_WIRE_ID[0]
            _NEXT_WIRE_ID[0] += 1
        if cls.wire_id in _WIRE_REGISTRY:
            raise PacketError(
                f"wire_id {cls.wire_id} already used by "
                f"{_WIRE_REGISTRY[cls.wire_id].__name__}"
            )
        _WIRE_REGISTRY[cls.wire_id] = cls
        # Intern names once at class definition: every per-message dict
        # lookup (field access, trace merges, metric name formatting)
        # then compares by pointer instead of hashing a fresh string.
        cls.name = sys.intern(cls.name)
        for f in cls.fields:
            f.name = sys.intern(f.name)
        cls._field_map = {f.name: f for f in cls.fields}
        if len(cls._field_map) != len(cls.fields):
            raise PacketError(f"{cls.__name__}: duplicate field names")

    def __init__(self, _payload: Optional["Packet"] = None, **values: Any) -> None:
        # Direct slot writes: __setattr__ dispatch and the unknown-field
        # set difference are measurable per-message costs in soak runs.
        object.__setattr__(self, "payload", _payload)
        field_map = type(self)._field_map
        vals: Dict[str, Any] = {}
        object.__setattr__(self, "_values", vals)
        consumed = 0
        for fname, field in field_map.items():
            if fname in values:
                consumed += 1
                vals[fname] = field.validate(values[fname])
            else:
                default = field.default
                vals[fname] = (
                    field.validate(default) if default is not None else default
                )
        if consumed != len(values):
            unknown = set(values) - set(field_map)
            raise PacketError(
                f"{type(self).__name__}: unknown fields {sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    # Field access
    # ------------------------------------------------------------------
    def __getattr__(self, item: str) -> Any:
        d = self.__dict__
        values = d.get("_values")
        if values is not None and item in values:
            return values[item]
        lazy = d.get("_lazy")
        if lazy is not None:
            offset = lazy[1].get(item)
            if offset is not None:
                value, _ = type(self)._field_map[item].decode(lazy[0], offset)
                values[item] = value
                return value
        raise AttributeError(f"{type(self).__name__} has no field {item!r}")

    def get_field(self, name: str, default: Any = None) -> Any:
        """``self.<name>`` if this layer declares the field, else
        *default* — the lazy-safe replacement for probing ``_values``
        directly (a lazily parsed layer keeps unread values as wire
        bytes, so ``_values`` alone understates what is present)."""
        values = self._values
        if name in values:
            return values[name]
        lazy = self.__dict__.get("_lazy")
        if lazy is not None and name in lazy[1]:
            return getattr(self, name)
        return default

    def _materialize(self) -> None:
        """Decode every field still pending from a lazy parse.

        Values already read (or assigned) win over the wire bytes, which
        matches eager-parse semantics where assignment overwrites the
        decoded value."""
        lazy = self.__dict__.pop("_lazy", None)
        if lazy is None:
            return
        data, offsets = lazy
        values = self._values
        field_map = type(self)._field_map
        for name, offset in offsets.items():
            if name not in values:
                values[name] = field_map[name].decode(data, offset)[0]

    def __setattr__(self, key: str, value: Any) -> None:
        if key in ("payload", "_values"):
            object.__setattr__(self, key, value)
            return
        field = type(self)._field_map.get(key)
        if field is not None:
            self._values[key] = field.validate(value)
            return
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Layering
    # ------------------------------------------------------------------
    def __truediv__(self, other: "Packet") -> "Packet":
        """Stack *other* below the innermost layer of ``self``."""
        inner = self
        while inner.payload is not None:
            inner = inner.payload
        inner.payload = other
        return self

    def layers(self) -> Iterator["Packet"]:
        layer: Optional[Packet] = self
        while layer is not None:
            yield layer
            layer = layer.payload

    def get_layer(self, klass: Type[P]) -> Optional[P]:
        for layer in self.layers():
            if isinstance(layer, klass):
                return layer
        return None

    def haslayer(self, klass: Type["Packet"]) -> bool:
        return self.get_layer(klass) is not None

    def innermost(self) -> "Packet":
        layer = self
        while layer.payload is not None:
            layer = layer.payload
        return layer

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def flow_name(self) -> str:
        """The message name shown in message-sequence charts: the
        innermost layer that opts into flow display."""
        shown = None
        for layer in self.layers():
            if layer.show_in_flow:
                shown = layer
        return (shown or self).name

    #: Field names that correlate a message with a procedure (span);
    #: surfaced by :meth:`trace_info` from any layer that declares them,
    #: even when the layer's ``info()`` does not (e.g. MAP messages only
    #: advertise their invoke id, but most carry the IMSI too).
    CORRELATION_FIELDS = ("imsi", "call_ref", "ti", "alias", "invoke_id")

    def trace_info(self) -> Dict[str, Any]:
        """Merged ``info()`` of all layers (inner layers win), plus any
        correlation fields present in the layers' declared fields —
        the span tracker keys on these, so they must not depend on each
        message class remembering to expose them."""
        merged: Dict[str, Any] = {}
        for layer in self.layers():
            get_field = layer.get_field
            for key in Packet.CORRELATION_FIELDS:
                value = get_field(key)
                if value is not None and key not in merged:
                    merged[key] = str(value) if key in ("imsi", "alias") else value
            merged.update(layer.info())
        return merged

    def info(self) -> Dict[str, Any]:
        """Per-layer trace detail; subclasses override."""
        return {}

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------
    def build(self) -> bytes:
        """Serialise this layer and its payload chain to bytes."""
        if "_lazy" in self.__dict__:
            self._materialize()
        out = bytearray(type(self).wire_id.to_bytes(2, "big"))
        for field in type(self).fields:
            value = self._values[field.name]
            if value is None and not _field_allows_none(field):
                raise PacketError(
                    f"{type(self).__name__}.{field.name} is unset; cannot build"
                )
            out += field.encode(value)
        if self.payload is not None:
            out += self.payload.build()
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes, *, lazy: bool = False) -> "Packet":
        """Parse bytes into a packet chain.

        Called on :class:`Packet` it dispatches purely on the wire id;
        called on a subclass it additionally checks the outer layer type.

        With ``lazy=True`` only field *boundaries* are scanned; values
        materialise on first attribute access.  Structural errors
        (unknown wire ids, truncation, bad lengths, trailing bytes)
        still raise here, but value-level validation is deferred — so
        the lazy path is only for bytes this process built itself (the
        link wire-fidelity round trip), never for untrusted input.
        """
        packet, offset = _parse_layer(data, 0, lazy)
        if offset != len(data):
            raise PacketError(f"{len(data) - offset} trailing bytes after parse")
        if cls is not Packet and not isinstance(packet, cls):
            raise PacketError(
                f"expected outer layer {cls.__name__}, got {type(packet).__name__}"
            )
        return packet

    # ------------------------------------------------------------------
    # Comparison / display
    # ------------------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        if "_lazy" in self.__dict__:
            self._materialize()
        if "_lazy" in other.__dict__:
            other._materialize()
        return self._values == other._values and self.payload == other.payload

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        if "_lazy" in self.__dict__:
            self._materialize()
        return hash((type(self), tuple(sorted(self._values.items(), key=lambda kv: kv[0], ))))

    def copy(self) -> "Packet":
        if "_lazy" in self.__dict__:
            self._materialize()
        clone = type(self)(**dict(self._values))
        if self.payload is not None:
            clone.payload = self.payload.copy()
        return clone

    def show(self) -> str:
        """Multi-line human-readable dump of the layer chain."""
        lines: List[str] = []
        for depth, layer in enumerate(self.layers()):
            if "_lazy" in layer.__dict__:
                layer._materialize()
            pad = "  " * depth
            lines.append(f"{pad}### {layer.name} ###")
            for field in type(layer).fields:
                lines.append(f"{pad}  {field.name} = {layer._values[field.name]!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        if "_lazy" in self.__dict__:
            self._materialize()
        parts = ", ".join(
            f"{f.name}={self._values[f.name]!r}"
            for f in type(self).fields
            if self._values[f.name] is not None
        )
        own = f"{type(self).__name__}({parts})"
        if self.payload is not None:
            return f"{own}/{self.payload!r}"
        return own


def _field_allows_none(field: Field) -> bool:
    # OptionalField encodes None natively.
    return isinstance(field, OptionalField)


def _parse_layer(data: bytes, offset: int, lazy: bool = False) -> Tuple[Packet, int]:
    if offset + 2 > len(data):
        raise PacketError("truncated wire id")
    wire_id = int.from_bytes(data[offset : offset + 2], "big")
    klass = _WIRE_REGISTRY.get(wire_id)
    if klass is None:
        raise PacketError(f"unknown wire id {wire_id}")
    offset += 2
    values: Dict[str, Any] = {}
    packet = klass.__new__(klass)
    packet.payload = None
    packet._values = values
    if lazy:
        starts: Dict[str, int] = {}
        for field in klass.fields:
            starts[field.name] = offset
            offset = field.skip(data, offset)
        object.__setattr__(packet, "_lazy", (data, starts))
    else:
        for field in klass.fields:
            values[field.name], offset = field.decode(data, offset)
    if offset < len(data):
        packet.payload, offset = _parse_layer(data, offset, lazy)
    return packet, offset


class Raw(Packet):
    """Opaque payload bytes (e.g. a vocoder frame inside RTP)."""

    name = "Raw"
    show_in_flow = False
    fields = (BytesField("data", b""),)
