"""GPRS mobility management and session management (GSM 04.08 / 03.60).

These messages run between a GPRS "MS" and the SGSN.  In vGPRS the VMSC
plays the MS role on behalf of every attached handset (paper step 1.3:
"the VMSC activates a new PDP context just like a GPRS MS does"), so the
same message set serves both the vGPRS core and the 3G TR baseline where
the handset itself is the GPRS MS.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    ImsiField,
    IntField,
    IPv4AddressField,
    OptionalField,
    ShortField,
    StrField,
)

# Session-management causes.
SM_CAUSE_OK = 0
SM_CAUSE_INSUFFICIENT_RESOURCES = 26
SM_CAUSE_UNKNOWN_APN = 27
SM_CAUSE_SERVICE_NOT_SUBSCRIBED = 33

# Attach types.
ATTACH_GPRS = 1
ATTACH_COMBINED = 3


class GprsMessage(Packet):
    """Base for GMM/SM messages."""

    name = "GPRS"
    fields = ()


class GprsAttachRequest(GprsMessage):
    """MS (or VMSC acting for it) -> SGSN, paper step 1.3."""

    name = "GPRS_Attach_Request"
    fields = (
        ImsiField("imsi"),
        ByteField("attach_type", ATTACH_GPRS),
    )

    def info(self) -> Dict[str, str]:
        return {"imsi": str(self.imsi)}


class GprsAttachAccept(GprsMessage):
    name = "GPRS_Attach_Accept"
    fields = (
        ImsiField("imsi"),
        OptionalField(IntField("ptmsi")),
    )


class GprsAttachReject(GprsMessage):
    name = "GPRS_Attach_Reject"
    fields = (ImsiField("imsi"), ByteField("cause"))


class GprsDetachRequest(GprsMessage):
    name = "GPRS_Detach_Request"
    fields = (ImsiField("imsi"),)


class GprsDetachAccept(GprsMessage):
    name = "GPRS_Detach_Accept"
    fields = (ImsiField("imsi"),)


class ActivatePdpContextRequest(GprsMessage):
    """MS/VMSC -> SGSN: activate the PDP context for one NSAPI.

    A ``static_pdp_address`` of ``None`` requests dynamic allocation by
    the GGSN (the paper assumes dynamic allocation in step 1.3).
    """

    name = "Activate_PDP_Context_Request"
    fields = (
        ImsiField("imsi"),
        ByteField("nsapi"),
        ByteField("qos_delay_class", 4),
        ShortField("qos_peak_kbps", 16),
        OptionalField(IPv4AddressField("static_pdp_address")),
        StrField("apn", "voip.gprs"),
    )

    def info(self) -> Dict[str, object]:
        return {"imsi": str(self.imsi), "nsapi": self.nsapi}


class ActivatePdpContextAccept(GprsMessage):
    name = "Activate_PDP_Context_Accept"
    fields = (
        ImsiField("imsi"),
        ByteField("nsapi"),
        IPv4AddressField("pdp_address"),
        ByteField("qos_delay_class", 4),
    )


class ActivatePdpContextReject(GprsMessage):
    name = "Activate_PDP_Context_Reject"
    fields = (
        ImsiField("imsi"),
        ByteField("nsapi"),
        ByteField("cause", SM_CAUSE_INSUFFICIENT_RESOURCES),
    )


class DeactivatePdpContextRequest(GprsMessage):
    name = "Deactivate_PDP_Context_Request"
    fields = (ImsiField("imsi"), ByteField("nsapi"))


class DeactivatePdpContextAccept(GprsMessage):
    name = "Deactivate_PDP_Context_Accept"
    fields = (ImsiField("imsi"), ByteField("nsapi"))


class RequestPdpContextActivation(GprsMessage):
    """SGSN -> MS: network-requested PDP context activation, triggered by
    a GGSN PDU notification.  Requires the subscriber to hold a static
    PDP address (GSM 03.60) — the 3G TR baseline's MT-call path."""

    name = "Request_PDP_Context_Activation"
    fields = (
        ImsiField("imsi"),
        ByteField("nsapi"),
        IPv4AddressField("pdp_address"),
    )


class GprsPaging(GprsMessage):
    """SGSN -> MS: GPRS paging for downlink data while the MM context is
    in STANDBY (GSM 03.60 §6.2) — part of the 3G TR baseline's MT-call
    latency that vGPRS avoids (the VMSC's PCU is permanently reachable)."""

    name = "GPRS_Paging"
    fields = (ImsiField("imsi"),)


class GprsPagingResponse(GprsMessage):
    """MS -> SGSN: any uplink PDU serves; this is the explicit form."""

    name = "GPRS_Paging_Response"
    fields = (ImsiField("imsi"),)


class RoutingAreaUpdateRequest(GprsMessage):
    """MS -> (new) SGSN on routing-area change.  ``old_routing_area``
    lets an SGSN that does not know the subscriber locate the old SGSN
    and pull the contexts over (inter-SGSN RAU, GSM 03.60 §6.9)."""

    name = "Routing_Area_Update_Request"
    fields = (
        ImsiField("imsi"),
        StrField("routing_area"),
        StrField("old_routing_area", ""),
    )


class RoutingAreaUpdateAccept(GprsMessage):
    name = "Routing_Area_Update_Accept"
    fields = (ImsiField("imsi"),)
