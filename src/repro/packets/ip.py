"""IPv4, UDP and a TCP-lite transport layer.

These are transport layers (``show_in_flow = False``): the paper's
message-sequence figures display the signalling message they carry, not
the encapsulation.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import ByteField, IntField, IPv4AddressField, ShortField


class IPv4(Packet):
    """Minimal IPv4 header: addressing and TTL, no options/fragments."""

    name = "IPv4"
    show_in_flow = False
    fields = (
        IPv4AddressField("src"),
        IPv4AddressField("dst"),
        ByteField("ttl", 64),
        ByteField("protocol", 17),
    )

    def info(self) -> Dict[str, str]:
        return {"ip_src": str(self.src), "ip_dst": str(self.dst)}


class UDP(Packet):
    """UDP ports; length/checksum omitted (layers are self-delimiting)."""

    name = "UDP"
    show_in_flow = False
    fields = (
        ShortField("sport"),
        ShortField("dport"),
    )


class TCPLite(Packet):
    """A token TCP header — enough to mark H.225 call-signalling channels
    (which run over TCP in H.323) as connection-oriented in traces."""

    name = "TCP"
    show_in_flow = False
    fields = (
        ShortField("sport"),
        ShortField("dport"),
        IntField("seq", 0),
        ByteField("flags", 0),
    )


# Well-known ports used by the simulation.
PORT_H225_RAS = 1719
PORT_H225_CS = 1720
PORT_GTP = 3386  # GTP v0 (GSM 09.60)
PORT_RTP = 5004
