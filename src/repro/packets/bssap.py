"""GSM air-interface, Abis and A-interface messages (GSM 04.08 / 08.08).

The paper names messages by interface — ``Um_Setup``, ``Abis_Setup``,
``A_Setup`` — and its Figures 4–6 show each renamed hop explicitly, so
every interface-prefixed message in a figure gets its own class here with
``name`` matching the figure text exactly.  Messages the paper elides
("the standard GSM authentication procedure ... details are omitted") are
modelled once and relayed transparently across Abis/A, as real DTAP is.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    BytesField,
    E164Field,
    ImsiField,
    IntField,
    LongField,
    OptionalField,
    StrField,
)

# Disconnect / release causes.
CAUSE_NORMAL = 16
CAUSE_BUSY = 17
CAUSE_RADIO_FAILURE = 47


class GsmMessage(Packet):
    """Base for all GSM signalling messages."""

    name = "GSM"
    fields = ()


class _SubscriberIdMixin:
    """Shared field tuple for messages identifying a subscriber."""

    id_fields = (
        OptionalField(ImsiField("imsi")),
        OptionalField(IntField("tmsi")),
    )


# ----------------------------------------------------------------------
# Location update (Figure 4, steps 1.1 / 1.6)
# ----------------------------------------------------------------------
class UmLocationUpdateRequest(GsmMessage):
    name = "Um_Location_Update_Request"
    fields = _SubscriberIdMixin.id_fields + (StrField("lai"),)

    def info(self) -> Dict[str, str]:
        return {"imsi": str(self.imsi)} if self.imsi else {}


class AbisLocationUpdate(GsmMessage):
    name = "Abis_Location_Update"
    fields = UmLocationUpdateRequest.fields


class ALocationUpdate(GsmMessage):
    name = "A_Location_Update"
    fields = UmLocationUpdateRequest.fields


class ALocationUpdateAccept(GsmMessage):
    name = "A_Location_Update_Accept"
    fields = _SubscriberIdMixin.id_fields + (OptionalField(IntField("new_tmsi")),)


class AbisLocationUpdateAccept(GsmMessage):
    name = "Abis_Location_Update_Accept"
    fields = ALocationUpdateAccept.fields


class UmLocationUpdateAccept(GsmMessage):
    name = "Um_Location_Update_Accept"
    fields = ALocationUpdateAccept.fields


class UmLocationUpdateReject(GsmMessage):
    name = "Um_Location_Update_Reject"
    fields = (ByteField("cause"),)


class ImsiDetachIndication(GsmMessage):
    """MS -> network on power-off (GSM 04.08 §4.3.4); relayed
    transparently through BTS/BSC to the (V)MSC.  No response is sent —
    the MS may already be off."""

    name = "IMSI_Detach_Indication"
    fields = (OptionalField(ImsiField("imsi")), OptionalField(IntField("tmsi")))


# ----------------------------------------------------------------------
# Authentication and ciphering (standard GSM; relayed transparently)
# ----------------------------------------------------------------------
class AuthenticationRequest(GsmMessage):
    """Network -> MS: challenge RAND.  Carries the IMSI so relaying nodes
    (MSC, BSC, BTS) can route the downlink message; the air interface
    would use the dedicated channel instead."""

    name = "Authentication_Request"
    fields = (OptionalField(ImsiField("imsi")), BytesField("rand"))


class AuthenticationResponse(GsmMessage):
    """MS -> network: SRES = A3(Ki, RAND)."""

    name = "Authentication_Response"
    fields = (OptionalField(ImsiField("imsi")), BytesField("sres"))


class CipheringModeCommand(GsmMessage):
    """Network -> MS: start ciphering with the agreed algorithm."""

    name = "Ciphering_Mode_Command"
    fields = (OptionalField(ImsiField("imsi")), StrField("algorithm", "A5/1"))


class CipheringModeComplete(GsmMessage):
    name = "Ciphering_Mode_Complete"
    fields = (OptionalField(ImsiField("imsi")),)


# ----------------------------------------------------------------------
# Radio access and traffic-channel assignment (step 2.1 / 4.5)
# ----------------------------------------------------------------------
class UmChannelRequest(GsmMessage):
    """MS -> BTS on RACH: ask for a dedicated channel."""

    name = "Um_Channel_Request"
    fields = (ByteField("establishment_cause"),)


class UmImmediateAssignment(GsmMessage):
    """BTS -> MS on AGCH: SDCCH allocated."""

    name = "Um_Immediate_Assignment"
    fields = (ByteField("channel"),)


class CmServiceRequest(GsmMessage):
    """MS -> network: request MO call service (relayed to the MSC)."""

    name = "CM_Service_Request"
    fields = _SubscriberIdMixin.id_fields + (ByteField("service_type", 1),)


class CmServiceAccept(GsmMessage):
    name = "CM_Service_Accept"
    fields = (OptionalField(ImsiField("imsi")),)


class CmServiceReject(GsmMessage):
    """Network -> MS: the requested service cannot be provided (e.g. no
    traffic channel available)."""

    name = "CM_Service_Reject"
    fields = (OptionalField(ImsiField("imsi")), ByteField("cause", CAUSE_RADIO_FAILURE))


class AAssignmentRequest(GsmMessage):
    """(V)MSC -> BSC: assign a traffic channel."""

    name = "A_Assignment_Request"
    fields = (OptionalField(ImsiField("imsi")), ByteField("channel_type", 1))


class AbisChannelActivation(GsmMessage):
    name = "Abis_Channel_Activation"
    fields = AAssignmentRequest.fields


class UmAssignmentCommand(GsmMessage):
    name = "Um_Assignment_Command"
    fields = (OptionalField(ImsiField("imsi")), ByteField("channel_type", 1))


class UmAssignmentComplete(GsmMessage):
    name = "Um_Assignment_Complete"
    fields = (OptionalField(ImsiField("imsi")),)


class AAssignmentComplete(GsmMessage):
    name = "A_Assignment_Complete"
    fields = (OptionalField(ImsiField("imsi")),)


class AAssignmentFailure(GsmMessage):
    """BSC -> (V)MSC: no traffic channel available (cell fully loaded).
    Drives the blocking behaviour measured in experiment E9."""

    name = "A_Assignment_Failure"
    fields = (OptionalField(ImsiField("imsi")), ByteField("cause", CAUSE_RADIO_FAILURE))


# ----------------------------------------------------------------------
# Call control (Figures 5 and 6)
# ----------------------------------------------------------------------
class _CallControl(GsmMessage):
    """Base: GSM CC messages carry a transaction identifier.

    The real GSM TI is 3 bits per MS; the simulation widens it to a
    globally unique 32-bit value and adds the IMSI so relaying nodes can
    route downlink messages without modelling per-channel SAPIs.
    """

    name = "CC"
    fields = (IntField("ti"), OptionalField(ImsiField("imsi")))

    def info(self) -> Dict[str, int]:
        return {"ti": self.ti}


class UmSetup(_CallControl):
    """MO: the dialled digits from the MS (step 2.1).
    MT: the setup instruction toward the MS (step 4.5)."""

    name = "Um_Setup"
    fields = _CallControl.fields + (
        OptionalField(E164Field("called")),
        OptionalField(E164Field("calling")),
    )

    def info(self) -> Dict[str, object]:
        out: Dict[str, object] = {"ti": self.ti}
        if self.called is not None:
            out["called"] = str(self.called)
        return out


class AbisSetup(_CallControl):
    name = "Abis_Setup"
    fields = UmSetup.fields


class ASetup(_CallControl):
    name = "A_Setup"
    fields = UmSetup.fields


class UmCallConfirmed(_CallControl):
    name = "Um_Call_Confirmed"
    fields = _CallControl.fields


class UmAlerting(_CallControl):
    name = "Um_Alerting"
    fields = _CallControl.fields


class AbisAlerting(_CallControl):
    name = "Abis_Alerting"
    fields = _CallControl.fields


class AAlerting(_CallControl):
    name = "A_Alerting"
    fields = _CallControl.fields


class UmConnect(_CallControl):
    name = "Um_Connect"
    fields = _CallControl.fields


class AbisConnect(_CallControl):
    name = "Abis_Connect"
    fields = _CallControl.fields


class AConnect(_CallControl):
    name = "A_Connect"
    fields = _CallControl.fields


class UmConnectAck(_CallControl):
    name = "Um_Connect_Ack"
    fields = _CallControl.fields


class UmDisconnect(_CallControl):
    name = "Um_Disconnect"
    fields = _CallControl.fields + (ByteField("cause", CAUSE_NORMAL),)


class AbisDisconnect(_CallControl):
    name = "Abis_Disconnect"
    fields = UmDisconnect.fields


class ADisconnect(_CallControl):
    name = "A_Disconnect"
    fields = UmDisconnect.fields


class UmRelease(_CallControl):
    name = "Um_Release"
    fields = _CallControl.fields


class UmReleaseComplete(_CallControl):
    name = "Um_Release_Complete"
    fields = _CallControl.fields


class AClearCommand(GsmMessage):
    """(V)MSC -> BSC: release the radio resources after a call."""

    name = "A_Clear_Command"
    fields = (OptionalField(ImsiField("imsi")), ByteField("cause", CAUSE_NORMAL))


class AClearComplete(GsmMessage):
    name = "A_Clear_Complete"
    fields = ()


# ----------------------------------------------------------------------
# Paging (Figure 6, step 4.4)
# ----------------------------------------------------------------------
class APaging(GsmMessage):
    name = "A_Paging"
    fields = _SubscriberIdMixin.id_fields + (StrField("lai"),)


class AbisPaging(GsmMessage):
    name = "Abis_Paging"
    fields = APaging.fields


class UmPaging(GsmMessage):
    name = "Um_Paging"
    fields = APaging.fields


class UmPagingResponse(GsmMessage):
    name = "Um_Paging_Response"
    fields = _SubscriberIdMixin.id_fields


class AbisPagingResponse(GsmMessage):
    name = "Abis_Paging_Response"
    fields = _SubscriberIdMixin.id_fields


class APagingResponse(GsmMessage):
    name = "A_Paging_Response"
    fields = _SubscriberIdMixin.id_fields


# ----------------------------------------------------------------------
# Handoff (A interface; Figure 9 scenario)
# ----------------------------------------------------------------------
class AHandoverRequired(GsmMessage):
    """Serving BSC -> (V)MSC: radio conditions demand a handover."""

    name = "A_Handover_Required"
    fields = (
        OptionalField(ImsiField("imsi")),
        IntField("ti"),
        StrField("target_cell"),
    )


class AHandoverRequest(GsmMessage):
    """(Target) MSC -> target BSC: reserve a channel."""

    name = "A_Handover_Request"
    fields = (OptionalField(ImsiField("imsi")), IntField("ti"))


class AHandoverRequestAck(GsmMessage):
    name = "A_Handover_Request_Ack"
    fields = (IntField("ti"), ByteField("channel", 1))


class AHandoverCommand(GsmMessage):
    """Anchor (V)MSC -> serving BSC -> MS: retune to the target cell."""

    name = "A_Handover_Command"
    fields = (
        IntField("ti"),
        OptionalField(ImsiField("imsi")),
        StrField("target_cell"),
    )


class UmHandoverCommand(GsmMessage):
    name = "Um_Handover_Command"
    fields = AHandoverCommand.fields


class UmHandoverAccess(GsmMessage):
    """MS -> target BTS: first access on the new cell."""

    name = "Um_Handover_Access"
    fields = (IntField("ti"), OptionalField(ImsiField("imsi")))


class UmHandoverComplete(GsmMessage):
    name = "Um_Handover_Complete"
    fields = (IntField("ti"), OptionalField(ImsiField("imsi")))


class AHandoverComplete(GsmMessage):
    name = "A_Handover_Complete"
    fields = (IntField("ti"), OptionalField(ImsiField("imsi")))


# ----------------------------------------------------------------------
# Circuit-switched voice
# ----------------------------------------------------------------------
class TchFrame(GsmMessage):
    """A 20 ms vocoder frame on a traffic channel.

    ``gen_time_us`` stamps the talker's generation instant so receivers
    can measure mouth-to-ear delay (experiment E9).
    """

    name = "TCH_Frame"
    show_in_flow = False
    fields = (
        IntField("ti"),
        OptionalField(ImsiField("imsi")),
        IntField("seq"),
        LongField("gen_time_us"),
        BytesField("voice", b""),
    )
