"""H.225.0 RAS — Registration, Admission and Status.

RAS runs between H.323 endpoints and the gatekeeper.  The paper uses:

* RRQ/RCF — endpoint registration (step 1.4/1.5), carrying the alias
  (MSISDN) and transport address that populate the gatekeeper's address
  translation table;
* ARQ/ACF/ARJ — per-call admission (steps 2.3, 2.5, 4.1, 4.3);
* DRQ/DCF — disengage at call end (step 3.3), where the gatekeeper
  records call statistics for charging.

URQ/UCF (unregistration) are included for roamer departure scenarios.
"""

from __future__ import annotations

from typing import Dict

from repro.packets.base import Packet
from repro.packets.fields import (
    ByteField,
    E164Field,
    IntField,
    IPv4AddressField,
    OptionalField,
    ShortField,
    StrField,
)

# Rejection reasons (subset of H.225.0).
ARJ_CALLED_PARTY_NOT_REGISTERED = 1
ARJ_RESOURCE_UNAVAILABLE = 2
ARJ_CALLER_NOT_REGISTERED = 3
RRJ_DUPLICATE_ALIAS = 1
RRJ_UNDEFINED = 2


class RasMessage(Packet):
    """Base: RAS messages correlate by sequence number."""

    name = "RAS"
    fields = (ShortField("seq"),)


class RasRrq(RasMessage):
    """Registration Request: alias (MSISDN) + call-signalling address."""

    name = "RAS_RRQ"
    fields = RasMessage.fields + (
        E164Field("alias"),
        IPv4AddressField("signal_address"),
        ShortField("signal_port"),
        StrField("endpoint_type", "terminal"),
        IntField("ttl", 3600),
    )

    def info(self) -> Dict[str, str]:
        return {"alias": str(self.alias)}


class RasRcf(RasMessage):
    """Registration Confirm."""

    name = "RAS_RCF"
    fields = RasMessage.fields + (
        E164Field("alias"),
        IntField("ttl", 3600),
    )


class RasRrj(RasMessage):
    """Registration Reject."""

    name = "RAS_RRJ"
    fields = RasMessage.fields + (ByteField("reason", RRJ_UNDEFINED),)


class RasUrq(RasMessage):
    """Unregistration Request (endpoint or gatekeeper initiated)."""

    name = "RAS_URQ"
    fields = RasMessage.fields + (E164Field("alias"),)


class RasUcf(RasMessage):
    """Unregistration Confirm."""

    name = "RAS_UCF"
    fields = RasMessage.fields


class RasArq(RasMessage):
    """Admission Request.

    ``answer_call`` distinguishes the called side's ARQ (paper step 2.5)
    from the calling side's (step 2.3).  For the calling side the
    gatekeeper resolves ``called_alias`` through its address translation
    table and returns the destination's call-signalling address in the
    ACF — the lookup that, in Figure 8, keeps a call to a registered
    roamer local.
    """

    name = "RAS_ARQ"
    fields = RasMessage.fields + (
        IntField("call_ref"),
        E164Field("endpoint_alias"),
        OptionalField(E164Field("called_alias")),
        ShortField("bandwidth_kbps", 64),
        ByteField("answer_call", 0),
    )

    def info(self) -> Dict[str, object]:
        return {"call_ref": self.call_ref}


class RasAcf(RasMessage):
    """Admission Confirm; carries the destination signalling address."""

    name = "RAS_ACF"
    fields = RasMessage.fields + (
        IntField("call_ref"),
        OptionalField(IPv4AddressField("dest_signal_address")),
        OptionalField(ShortField("dest_signal_port")),
        ShortField("bandwidth_kbps", 64),
    )


class RasArj(RasMessage):
    """Admission Reject."""

    name = "RAS_ARJ"
    fields = RasMessage.fields + (
        IntField("call_ref"),
        ByteField("reason", ARJ_CALLED_PARTY_NOT_REGISTERED),
    )


class RasDrq(RasMessage):
    """Disengage Request, sent by both endpoints at call completion."""

    name = "RAS_DRQ"
    fields = RasMessage.fields + (
        IntField("call_ref"),
        E164Field("endpoint_alias"),
        IntField("duration_ms", 0),
    )


class RasDcf(RasMessage):
    """Disengage Confirm."""

    name = "RAS_DCF"
    fields = RasMessage.fields + (IntField("call_ref"),)
