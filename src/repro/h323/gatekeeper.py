"""The H.323 gatekeeper.

Deliberately a *standard* gatekeeper: "the GK is a standard H.323
gatekeeper, which only communicates ... using the standard H.323
protocol" (§6) — it knows nothing about GSM, MAP or IMSIs, which is the
paper's privacy argument against 3G TR 23.923.  It provides:

* endpoint registration (RRQ/RCF/RRJ) populating the address translation
  table keyed by alias (the MSISDN in vGPRS, step 1.5);
* admission control (ARQ/ACF/ARJ) with alias resolution for the calling
  side and an optional concurrent-call cap;
* disengage (DRQ/DCF) with call-detail records "for charging"
  (step 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.identities import E164Number, IPv4Address
from repro.net.iphost import IpHost
from repro.net.node import Node, handles
from repro.packets.ip import PORT_H225_RAS
from repro.packets.ras import (
    ARJ_CALLED_PARTY_NOT_REGISTERED,
    ARJ_RESOURCE_UNAVAILABLE,
    RasAcf,
    RasArj,
    RasArq,
    RasDcf,
    RasDrq,
    RasRcf,
    RasRrq,
    RasUcf,
    RasUrq,
)


@dataclass
class Registration:
    """One row of the address translation table."""

    alias: E164Number
    signal_address: IPv4Address
    signal_port: int
    endpoint_type: str
    registered_at: float
    ttl: int


@dataclass
class CallRecord:
    """Charging record assembled from admissions and disengages."""

    call_ref: int
    endpoints: List[str] = field(default_factory=list)
    admitted_at: Optional[float] = None
    disengaged_at: Optional[float] = None
    reported_duration_ms: int = 0
    bandwidth_kbps: int = 0

    @property
    def complete(self) -> bool:
        return self.disengaged_at is not None


class Gatekeeper(IpHost):
    """A standard H.323 gatekeeper."""

    def __init__(
        self,
        sim,
        name: str,
        ip: IPv4Address,
        max_concurrent_calls: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name, ip)
        self.registrations: Dict[E164Number, Registration] = {}
        self.max_concurrent_calls = max_concurrent_calls
        self.active_calls: Dict[int, CallRecord] = {}
        self.call_records: List[CallRecord] = []

    # ------------------------------------------------------------------
    # Address translation
    # ------------------------------------------------------------------
    def resolve(self, alias: E164Number) -> Optional[Registration]:
        """Address-translation lookup (Figure 8 step 2: 'the gateway
        checks with the GK to see if the entry for x can be found').
        Registrations past their time-to-live are purged lazily, per the
        H.225.0 lightweight-registration model."""
        registration = self.registrations.get(alias)
        if registration is None:
            return None
        if self.sim.now > registration.registered_at + registration.ttl:
            del self.registrations[alias]
            self.sim.metrics.counter(f"{self.name}.ttl_expiries").inc()
            return None
        return registration

    def resolve_or_gateway(
        self, alias: E164Number, requester: Optional[IPv4Address] = None
    ) -> Optional[Registration]:
        """Resolve *alias*; unknown aliases fall back to a registered
        H.323-PSTN gateway (standard H.323 gateway routing), letting the
        VMSC reach 'a traditional telephone set in the PSTN ... connected
        indirectly through the H.323 network' (paper §4).  The requester's
        own registration is never returned (no gateway hairpins)."""
        direct = self.resolve(alias)
        if direct is not None:
            return direct
        for registration in list(self.registrations.values()):
            if registration.endpoint_type != "gateway":
                continue
            if self.sim.now > registration.registered_at + registration.ttl:
                continue
            if requester is not None and registration.signal_address == requester:
                continue
            return registration
        return None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @handles(RasRrq)
    def on_rrq(self, msg: RasRrq, src: Node, interface: str) -> None:
        reply_ip, reply_port = self.rx_reply_addr()
        # Re-registration from a new address replaces the old entry —
        # exactly what happens when a roamer registers through a new
        # network's VMSC.
        self.registrations[msg.alias] = Registration(
            alias=msg.alias,
            signal_address=msg.signal_address,
            signal_port=msg.signal_port,
            endpoint_type=msg.endpoint_type,
            registered_at=self.sim.now,
            ttl=msg.ttl,
        )
        self.sim.metrics.counter(f"{self.name}.registrations").inc()
        self.send_ip(
            reply_ip,
            RasRcf(seq=msg.seq, alias=msg.alias, ttl=msg.ttl),
            dport=reply_port or PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    @handles(RasUrq)
    def on_urq(self, msg: RasUrq, src: Node, interface: str) -> None:
        reply_ip, reply_port = self.rx_reply_addr()
        self.registrations.pop(msg.alias, None)
        self.send_ip(
            reply_ip,
            RasUcf(seq=msg.seq),
            dport=reply_port or PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @handles(RasArq)
    def on_arq(self, msg: RasArq, src: Node, interface: str) -> None:
        reply_ip, reply_port = self.rx_reply_addr()
        dport = reply_port or PORT_H225_RAS

        def reject(reason: int) -> None:
            self.sim.metrics.counter(f"{self.name}.admission_rejects").inc()
            self.send_ip(
                reply_ip,
                RasArj(seq=msg.seq, call_ref=msg.call_ref, reason=reason),
                dport=dport,
                sport=PORT_H225_RAS,
            )

        if (
            self.max_concurrent_calls is not None
            and msg.call_ref not in self.active_calls
            and len(self.active_calls) >= self.max_concurrent_calls
        ):
            reject(ARJ_RESOURCE_UNAVAILABLE)
            return

        dest: Tuple[Optional[IPv4Address], Optional[int]] = (None, None)
        if not msg.answer_call:
            if msg.called_alias is None:
                reject(ARJ_CALLED_PARTY_NOT_REGISTERED)
                return
            registration = self.resolve_or_gateway(msg.called_alias, reply_ip)
            if registration is None:
                reject(ARJ_CALLED_PARTY_NOT_REGISTERED)
                return
            dest = (registration.signal_address, registration.signal_port)

        record = self.active_calls.get(msg.call_ref)
        if record is None:
            record = CallRecord(call_ref=msg.call_ref, admitted_at=self.sim.now)
            self.active_calls[msg.call_ref] = record
        record.endpoints.append(str(msg.endpoint_alias))
        record.bandwidth_kbps = max(record.bandwidth_kbps, msg.bandwidth_kbps)
        self.sim.metrics.counter(f"{self.name}.admissions").inc()
        self.send_ip(
            reply_ip,
            RasAcf(
                seq=msg.seq,
                call_ref=msg.call_ref,
                dest_signal_address=dest[0],
                dest_signal_port=dest[1],
                bandwidth_kbps=msg.bandwidth_kbps,
            ),
            dport=dport,
            sport=PORT_H225_RAS,
        )

    # ------------------------------------------------------------------
    # Disengage / charging
    # ------------------------------------------------------------------
    @handles(RasDrq)
    def on_drq(self, msg: RasDrq, src: Node, interface: str) -> None:
        reply_ip, reply_port = self.rx_reply_addr()
        record = self.active_calls.get(msg.call_ref)
        if record is not None:
            record.disengaged_at = self.sim.now
            record.reported_duration_ms = max(
                record.reported_duration_ms, msg.duration_ms
            )
            # Both endpoints disengage (step 3.3); archive once both have.
            record.endpoints = [e for e in record.endpoints if e != str(msg.endpoint_alias)]
            if not record.endpoints:
                self.call_records.append(record)
                del self.active_calls[msg.call_ref]
        self.send_ip(
            reply_ip,
            RasDcf(seq=msg.seq, call_ref=msg.call_ref),
            dport=reply_port or PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
