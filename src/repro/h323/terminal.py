"""An H.323 terminal endpoint.

The called party of Figure 5 and the calling party of Figure 6: a plain
IP host speaking RAS to the gatekeeper and Q.931 call signalling + RTP
media to its peers.  The terminal neither knows nor cares that the far
end is a VMSC acting for a GSM handset — which is the point of the
paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import CallSetupError, ProtocolError
from repro.identities import E164Number, IPv4Address, as_e164
from repro.net.iphost import IpHost
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer
from repro.sim.process import Signal, spawn
from repro.packets.ip import PORT_H225_CS, PORT_H225_RAS, PORT_RTP
from repro.packets.q931 import (
    CAUSE_CALL_REJECTED,
    CAUSE_NORMAL_CLEARING,
    Q931Alerting,
    Q931CallProceeding,
    Q931Connect,
    Q931ReleaseComplete,
    Q931Setup,
)
from repro.packets.ras import (
    RasAcf,
    RasArj,
    RasArq,
    RasDcf,
    RasDrq,
    RasRcf,
    RasRrq,
    RasUcf,
)
from repro.packets.rtp import PT_PCMU, RtpPacket


@dataclass
class TerminalCall:
    """Per-call state at the terminal."""

    call_ref: int
    direction: str                       # "out" | "in"
    state: str = "idle"
    remote_alias: Optional[E164Number] = None
    remote_signal: Optional[Tuple[IPv4Address, int]] = None
    remote_media: Optional[Tuple[IPv4Address, int]] = None
    alerting_at: Optional[float] = None
    connected_at: Optional[float] = None
    released_at: Optional[float] = None
    placed_at: Optional[float] = None
    span: Optional[object] = None         # repro.obs.spans.Span
    setup_span: Optional[object] = None


class H323Terminal(IpHost):
    """A standard H.323 terminal."""

    def __init__(
        self,
        sim,
        name: str,
        ip: IPv4Address,
        alias: E164Number,
        gk_ip: IPv4Address,
        answer_delay: float = 1.0,
    ) -> None:
        super().__init__(sim, name, ip)
        self.alias = alias
        self.gk_ip = gk_ip
        self.answer_delay = answer_delay
        self.registered = False
        self.calls: Dict[int, TerminalCall] = {}
        #: Fired after any per-call state change (admission, ringing,
        #: connect, release, removal); workloads block on this instead
        #: of polling ``calls``.
        self.calls_changed = Signal(f"{name}.calls")
        self._ras_seq = Sequencer()
        self._voice_procs: Dict[int, object] = {}
        self._fluid_flows: Dict[int, object] = {}
        self._voice_seq = 0
        self.frames_received = 0
        self._last_rx_time: Optional[float] = None
        # Histogram handles, resolved lazily on first observation so the
        # registry's contents match runs that never receive a frame.
        self._m2e_hist = None
        self._jitter_hist = None
        self.on_registered: Optional[Callable[[], None]] = None
        self.on_incoming: Optional[Callable[[TerminalCall], None]] = None
        self.on_connected: Optional[Callable[[TerminalCall], None]] = None
        self.on_released: Optional[Callable[[TerminalCall], None]] = None
        self.on_rejected: Optional[Callable[[TerminalCall], None]] = None

    # ------------------------------------------------------------------
    # RAS
    # ------------------------------------------------------------------
    def register(self) -> None:
        """Register the alias with the gatekeeper."""
        self.attach_to_cloud()
        self.send_ip(
            self.gk_ip,
            RasRrq(
                seq=self._ras_seq.next(),
                alias=self.alias,
                signal_address=self.ip,
                signal_port=PORT_H225_CS,
                endpoint_type="terminal",
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    @handles(RasRcf)
    def on_rcf(self, msg: RasRcf, src: Node, interface: str) -> None:
        self.registered = True
        if self.on_registered is not None:
            self.on_registered()

    @handles(RasUcf)
    def on_ucf(self, msg: RasUcf, src: Node, interface: str) -> None:
        self.registered = False

    # ------------------------------------------------------------------
    # Outgoing call
    # ------------------------------------------------------------------
    def place_call(self, called: Union[E164Number, str]) -> int:
        """ARQ the gatekeeper, then Q.931 Setup to the resolved address."""
        called = as_e164(called)
        if not self.registered:
            raise CallSetupError(f"{self.name}: not registered with the gatekeeper")
        call_ref = self.sim.call_refs.next()
        call = TerminalCall(
            call_ref=call_ref,
            direction="out",
            state="admission",
            remote_alias=called,
            placed_at=self.sim.now,
        )
        # Keyed by call_ref only (not alias): the terminal's alias is in
        # every RAS exchange it makes, and keying on it would steal
        # entries from concurrent calls.
        call.span = self.sim.spans.open(
            "call",
            keys={"call_ref": call_ref},
            node=self.name,
            direction="out",
            called=str(called),
        )
        call.setup_span = self.sim.spans.open(
            "setup", keys={"call_ref": call_ref}, parent=call.span
        )
        self.calls[call_ref] = call
        self.send_ip(
            self.gk_ip,
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=call_ref,
                endpoint_alias=self.alias,
                called_alias=called,
                answer_call=0,
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        return call_ref

    @handles(RasAcf)
    def on_acf(self, msg: RasAcf, src: Node, interface: str) -> None:
        call = self.calls.get(msg.call_ref)
        if call is None:
            return
        if call.direction == "out" and call.state == "admission":
            if msg.dest_signal_address is None:
                self._fail_call(call, CAUSE_CALL_REJECTED)
                return
            call.remote_signal = (msg.dest_signal_address, msg.dest_signal_port or PORT_H225_CS)
            call.state = "setup-sent"
            self.calls_changed.fire()
            self.send_ip(
                call.remote_signal[0],
                Q931Setup(
                    call_ref=call.call_ref,
                    called=call.remote_alias,
                    calling=self.alias,
                    signal_address=self.ip,
                    signal_port=PORT_H225_CS,
                    media_address=self.ip,
                    media_port=PORT_RTP,
                ),
                dport=call.remote_signal[1],
                sport=PORT_H225_CS,
                tcp=True,
            )
        elif call.direction == "in" and call.state == "admission":
            # Step 2.5 (answer side admitted): alert the user.
            call.state = "ringing"
            call.alerting_at = self.sim.now
            self.calls_changed.fire()
            self._send_q931(call, Q931Alerting(call_ref=call.call_ref))
            self.sim.schedule(self.answer_delay, self._answer, call.call_ref)

    @handles(RasArj)
    def on_arj(self, msg: RasArj, src: Node, interface: str) -> None:
        call = self.calls.get(msg.call_ref)
        if call is None:
            return
        # "It is possible that an RAS ARJ message is received by the
        # terminal and the call is released" (step 2.5).
        if call.direction == "in":
            self._send_q931(
                call, Q931ReleaseComplete(call_ref=call.call_ref, cause=CAUSE_CALL_REJECTED)
            )
        self._fail_call(call, CAUSE_CALL_REJECTED)

    def _fail_call(self, call: TerminalCall, cause: int) -> None:
        call.state = "released"
        call.released_at = self.sim.now
        if call.setup_span is not None:
            call.setup_span.close(status="rejected")
        if call.span is not None:
            call.span.attrs["cause"] = cause
            call.span.close(status="rejected")
        self.calls.pop(call.call_ref, None)
        self.calls_changed.fire()
        self.sim.metrics.counter(f"{self.name}.calls_failed").inc()
        if self.on_rejected is not None:
            self.on_rejected(call)

    # ------------------------------------------------------------------
    # Incoming call
    # ------------------------------------------------------------------
    @handles(Q931Setup)
    def on_setup(self, msg: Q931Setup, src: Node, interface: str) -> None:
        remote_ip, remote_port = self.rx_reply_addr()
        call = TerminalCall(
            call_ref=msg.call_ref,
            direction="in",
            state="admission",
            remote_alias=msg.calling,
            remote_signal=(msg.signal_address, msg.signal_port),
            remote_media=(msg.media_address, msg.media_port),
        )
        # Auto-parents to the caller's span via the shared call_ref, so
        # an MO call renders MS -> VMSC leg -> terminal as one tree.
        call.span = self.sim.spans.open(
            "call",
            keys={"call_ref": msg.call_ref},
            node=self.name,
            direction="in",
            calling=str(msg.calling) if msg.calling is not None else None,
        )
        call.setup_span = self.sim.spans.open(
            "setup", keys={"call_ref": msg.call_ref}, parent=call.span
        )
        self.calls[msg.call_ref] = call
        self.calls_changed.fire()
        # Step 2.4: Call Proceeding back to the caller.
        self._send_q931(call, Q931CallProceeding(call_ref=msg.call_ref))
        # Step 2.5: the called terminal's own admission request.
        self.send_ip(
            self.gk_ip,
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=msg.call_ref,
                endpoint_alias=self.alias,
                answer_call=1,
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        if self.on_incoming is not None:
            self.on_incoming(call)

    def _answer(self, call_ref: int) -> None:
        call = self.calls.get(call_ref)
        if call is None or call.state != "ringing":
            return
        call.state = "in-call"
        call.connected_at = self.sim.now
        if call.setup_span is not None:
            call.setup_span.close(status="ok")
            call.setup_span = None
        self.calls_changed.fire()
        self._send_q931(
            call,
            Q931Connect(
                call_ref=call_ref, media_address=self.ip, media_port=PORT_RTP
            ),
        )
        self.sim.metrics.counter(f"{self.name}.calls_connected").inc()
        if self.on_connected is not None:
            self.on_connected(call)

    # ------------------------------------------------------------------
    # Call progress (caller side)
    # ------------------------------------------------------------------
    @handles(Q931CallProceeding)
    def on_call_proceeding(self, msg: Q931CallProceeding, src: Node, interface: str) -> None:
        call = self.calls.get(msg.call_ref)
        if call is not None and call.state == "setup-sent":
            call.state = "proceeding"
            self.calls_changed.fire()

    @handles(Q931Alerting)
    def on_alerting(self, msg: Q931Alerting, src: Node, interface: str) -> None:
        call = self.calls.get(msg.call_ref)
        if call is not None:
            call.state = "alerting"
            call.alerting_at = self.sim.now
            self.calls_changed.fire()

    @handles(Q931Connect)
    def on_connect(self, msg: Q931Connect, src: Node, interface: str) -> None:
        call = self.calls.get(msg.call_ref)
        if call is None:
            return
        call.state = "in-call"
        call.connected_at = self.sim.now
        call.remote_media = (msg.media_address, msg.media_port)
        if call.setup_span is not None:
            if call.placed_at is not None:
                call.setup_span.attrs["setup_delay"] = self.sim.now - call.placed_at
            call.setup_span.close(status="ok")
            call.setup_span = None
        self.calls_changed.fire()
        self.sim.metrics.counter(f"{self.name}.calls_connected").inc()
        if self.on_connected is not None:
            self.on_connected(call)

    # ------------------------------------------------------------------
    # Release (steps 3.1-3.3, terminal half)
    # ------------------------------------------------------------------
    def hangup(self, call_ref: int) -> None:
        call = self.calls.get(call_ref)
        if call is None:
            raise ProtocolError(f"{self.name}: unknown call {call_ref}")
        self.stop_talking(call_ref)
        self._send_q931(
            call, Q931ReleaseComplete(call_ref=call_ref, cause=CAUSE_NORMAL_CLEARING)
        )
        self._disengage(call)

    @handles(Q931ReleaseComplete)
    def on_release_complete(self, msg: Q931ReleaseComplete, src: Node, interface: str) -> None:
        call = self.calls.get(msg.call_ref)
        if call is None:
            return
        self.stop_talking(msg.call_ref)
        self._disengage(call)
        if self.on_released is not None:
            self.on_released(call)

    def _disengage(self, call: TerminalCall) -> None:
        call.state = "released"
        call.released_at = self.sim.now
        duration_ms = 0
        if call.connected_at is not None:
            duration_ms = int((self.sim.now - call.connected_at) * 1000)
        # Step 3.3: both endpoints inform the GK of call completion.
        self.send_ip(
            self.gk_ip,
            RasDrq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=self.alias,
                duration_ms=duration_ms,
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )
        if call.setup_span is not None:
            call.setup_span.close(status="ok")
            call.setup_span = None
        if call.span is not None:
            call.span.attrs["duration_ms"] = duration_ms
            call.span.close(status="ok")
        self.calls.pop(call.call_ref, None)
        self.calls_changed.fire()

    @handles(RasDcf)
    def on_dcf(self, msg: RasDcf, src: Node, interface: str) -> None:
        pass

    def _send_q931(self, call: TerminalCall, message) -> None:
        if call.remote_signal is None:
            raise ProtocolError(f"{self.name}: no signalling address for call")
        self.send_ip(
            call.remote_signal[0],
            message,
            dport=call.remote_signal[1],
            sport=PORT_H225_CS,
            tcp=True,
        )

    # ------------------------------------------------------------------
    # Media
    # ------------------------------------------------------------------
    def start_talking(
        self,
        call_ref: int,
        frame_interval: float = 0.020,
        duration: Optional[float] = None,
    ) -> None:
        call = self.calls.get(call_ref)
        if call is None or call.state != "in-call":
            raise ProtocolError(f"{self.name}: start_talking outside a call")
        self.stop_talking(call_ref)
        media = self.sim.media
        if media is not None and duration is not None:
            self._fluid_flows[call_ref] = self._start_fluid(
                media, call, frame_interval, duration
            )
        else:
            self._voice_procs[call_ref] = spawn(
                self.sim, self._talk(call, frame_interval, duration)
            )

    def _talk(self, call: TerminalCall, interval: float, duration: Optional[float]):
        started = self.sim.now
        payload = b"\x00" * 160  # one G.711 frame, reused for the spurt
        while call.state == "in-call" and call.remote_media is not None:
            if duration is not None and self.sim.now - started >= duration:
                break
            self._voice_seq += 1
            self.send_ip(
                call.remote_media[0],
                RtpPacket(
                    payload_type=PT_PCMU,
                    seq=self._voice_seq & 0xFFFF,
                    timestamp=int(self.sim.now * 8000) & 0xFFFFFFFF,
                    ssrc=call.call_ref & 0xFFFFFFFF,
                    gen_time_us=int(self.sim.now * 1e6),
                    frame=payload,
                ),
                dport=call.remote_media[1],
                sport=PORT_RTP,
            )
            yield interval

    def _start_fluid(self, media, call: TerminalCall, interval: float, duration: float):
        """Register an analytic flow and send only the calibration probe
        (frame 0) through the event path; see :mod:`repro.media.fluid`."""
        now = self.sim.now
        self._voice_seq += 1
        gen_us = int(now * 1e6)
        flow = media.start_flow(
            key=gen_us, start=now, interval=interval, duration=duration,
            on_frames=self._fluid_frames_sent,
        )
        self.send_ip(
            call.remote_media[0],
            RtpPacket(
                payload_type=PT_PCMU,
                seq=self._voice_seq & 0xFFFF,
                timestamp=int(now * 8000) & 0xFFFFFFFF,
                ssrc=call.call_ref & 0xFFFFFFFF,
                gen_time_us=gen_us,
                frame=b"\x00" * 160,
            ),
            dport=call.remote_media[1],
            sport=PORT_RTP,
        )
        return flow

    def _fluid_frames_sent(self, n: int) -> None:
        self._voice_seq += n

    def stop_talking(self, call_ref: int) -> None:
        proc = self._voice_procs.pop(call_ref, None)
        if proc is not None:
            proc.interrupt()
        flow = self._fluid_flows.pop(call_ref, None)
        if flow is not None:
            self.sim.media.end_flow(flow)

    @handles(RtpPacket)
    def on_rtp(self, packet: RtpPacket, src: Node, interface: str) -> None:
        self.frames_received += 1
        now = self.sim.now
        delay = now - packet.gen_time_us / 1e6
        m2e = self._m2e_hist
        if m2e is None:
            m2e = self._m2e_hist = self.sim.metrics.histogram(
                f"{self.name}.mouth_to_ear"
            )
        m2e.observe(delay)
        if self._last_rx_time is not None:
            jit = self._jitter_hist
            if jit is None:
                jit = self._jitter_hist = self.sim.metrics.histogram(
                    f"{self.name}.jitter"
                )
            jit.observe(abs((now - self._last_rx_time) - 0.020))
        self._last_rx_time = now
        media = self.sim.media
        if media is not None:
            media.on_frame(packet.gen_time_us, self)
