"""The H.323-PSTN gateway.

Figure 8's hinge: "the local telephone company first routes the call to
the H.323 gateway through VoIP service.  The gateway checks with the GK
to see if the entry for x can be found in the address translation
table."  Found -> the call stays local (Q.931 toward the serving VMSC);
not found -> the gateway releases with a routing cause and the exchange
falls back to the normal international PSTN route.

The gateway also carries H.323-originated calls out to the PSTN (the
paper's §4: "the called party can also be a traditional telephone set in
the PSTN, which is connected indirectly ... through the H.323 network").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.identities import E164Number, IPv4Address
from repro.h323.codec import G711_ULAW, Vocoder
from repro.net.iphost import IpHost
from repro.net.node import Node, handles
from repro.net.transactions import Sequencer
from repro.packets.ip import PORT_H225_CS, PORT_H225_RAS, PORT_RTP
from repro.packets.isup import (
    CAUSE_NO_ROUTE,
    CAUSE_NORMAL,
    IsupAcm,
    IsupAnm,
    IsupIam,
    IsupRel,
    IsupRlc,
    PcmFrame,
)
from repro.packets.q931 import (
    CAUSE_NORMAL_CLEARING,
    Q931Alerting,
    Q931CallProceeding,
    Q931Connect,
    Q931ReleaseComplete,
    Q931Setup,
)
from repro.packets.ras import (
    RasAcf,
    RasArj,
    RasArq,
    RasDcf,
    RasDrq,
    RasRcf,
    RasRrq,
)
from repro.packets.rtp import PT_PCMU, RtpPacket


@dataclass
class GatewayCall:
    """One bridged PSTN <-> H.323 call."""

    call_ref: int
    cic: int
    trunk_peer: str
    direction: str                      # "pstn-to-ip" | "ip-to-pstn"
    called: E164Number
    calling: Optional[E164Number] = None
    remote_signal: Optional[Tuple[IPv4Address, int]] = None
    remote_media: Optional[Tuple[IPv4Address, int]] = None
    state: str = "setup"
    rtp_seq: int = 0


class H323PstnGateway(IpHost):
    """A media gateway between the PSTN and the H.323 network."""

    def __init__(
        self,
        sim,
        name: str,
        ip: IPv4Address,
        alias: E164Number,
        gk_ip: IPv4Address,
    ) -> None:
        super().__init__(sim, name, ip)
        self.alias = alias
        self.gk_ip = gk_ip
        self.registered = False
        self._ras_seq = Sequencer()
        self._cic_seq = Sequencer(start=810001)
        self.calls_by_ref: Dict[int, GatewayCall] = {}
        self.calls_by_cic: Dict[int, GatewayCall] = {}
        self.vocoder = Vocoder(G711_ULAW, G711_ULAW)

    def _exchange(self) -> Node:
        return self.peer("isup")

    # ------------------------------------------------------------------
    # RAS registration
    # ------------------------------------------------------------------
    def register(self) -> None:
        self.attach_to_cloud()
        self.send_ip(
            self.gk_ip,
            RasRrq(
                seq=self._ras_seq.next(),
                alias=self.alias,
                signal_address=self.ip,
                signal_port=PORT_H225_CS,
                endpoint_type="gateway",
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    @handles(RasRcf)
    def on_rcf(self, msg: RasRcf, src: Node, interface: str) -> None:
        self.registered = True

    # ------------------------------------------------------------------
    # PSTN -> H.323 (Figure 8)
    # ------------------------------------------------------------------
    @handles(IsupIam)
    def on_iam(self, msg: IsupIam, src: Node, interface: str) -> None:
        call = GatewayCall(
            call_ref=self.sim.call_refs.next(),
            cic=msg.cic,
            trunk_peer=src.name,
            direction="pstn-to-ip",
            called=msg.called,
            calling=msg.calling,
        )
        self.calls_by_ref[call.call_ref] = call
        self.calls_by_cic[call.cic] = call
        # Figure 8 step 2: ask the gatekeeper whether the called party is
        # registered (i.e. roaming here).
        self.send_ip(
            self.gk_ip,
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=self.alias,
                called_alias=msg.called,
                answer_call=0,
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    @handles(RasAcf)
    def on_acf(self, msg: RasAcf, src: Node, interface: str) -> None:
        call = self.calls_by_ref.get(msg.call_ref)
        if call is None:
            return
        if call.direction == "pstn-to-ip" and call.state == "setup":
            call.remote_signal = (
                msg.dest_signal_address,
                msg.dest_signal_port or PORT_H225_CS,
            )
            call.state = "setup-sent"
            self.send_ip(
                call.remote_signal[0],
                Q931Setup(
                    call_ref=call.call_ref,
                    called=call.called,
                    calling=call.calling,
                    signal_address=self.ip,
                    signal_port=PORT_H225_CS,
                    media_address=self.ip,
                    media_port=PORT_RTP,
                ),
                dport=call.remote_signal[1],
                sport=PORT_H225_CS,
                tcp=True,
            )
        elif call.direction == "ip-to-pstn" and call.state == "admission":
            # Admission granted for the answer side: ring the PSTN leg.
            call.state = "pstn-dialling"
            call.cic = self._cic_seq.next()
            self.calls_by_cic[call.cic] = call
            self.send(
                self._exchange(),
                IsupIam(cic=call.cic, called=call.called, calling=call.calling),
            )

    @handles(RasArj)
    def on_arj(self, msg: RasArj, src: Node, interface: str) -> None:
        call = self.calls_by_ref.pop(msg.call_ref, None)
        if call is None:
            return
        self.calls_by_cic.pop(call.cic, None)
        self.sim.metrics.counter(f"{self.name}.gk_misses").inc()
        if call.direction == "pstn-to-ip":
            # Figure 8: "if x is not found in the GK, the GK will instruct
            # y to connect to the international telephone network as a
            # normal PSTN call" — release with a routing cause so the
            # exchange falls back to its next route.
            self.send(
                call.trunk_peer, IsupRel(cic=call.cic, cause=CAUSE_NO_ROUTE)
            )

    # ------------------------------------------------------------------
    # H.323 -> PSTN
    # ------------------------------------------------------------------
    @handles(Q931Setup)
    def on_setup(self, msg: Q931Setup, src: Node, interface: str) -> None:
        call = GatewayCall(
            call_ref=msg.call_ref,
            cic=0,
            trunk_peer=self._exchange().name,
            direction="ip-to-pstn",
            called=msg.called,
            calling=msg.calling,
            remote_signal=(msg.signal_address, msg.signal_port),
            remote_media=(msg.media_address, msg.media_port),
            state="admission",
        )
        self.calls_by_ref[msg.call_ref] = call
        self._send_q931(call, Q931CallProceeding(call_ref=msg.call_ref))
        self.send_ip(
            self.gk_ip,
            RasArq(
                seq=self._ras_seq.next(),
                call_ref=msg.call_ref,
                endpoint_alias=self.alias,
                answer_call=1,
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    # ------------------------------------------------------------------
    # Call progress bridging
    # ------------------------------------------------------------------
    @handles(Q931CallProceeding)
    def on_call_proceeding(self, msg: Q931CallProceeding, src: Node, interface: str) -> None:
        pass

    @handles(Q931Alerting)
    def on_alerting(self, msg: Q931Alerting, src: Node, interface: str) -> None:
        call = self.calls_by_ref.get(msg.call_ref)
        if call is not None and call.direction == "pstn-to-ip":
            self.send(call.trunk_peer, IsupAcm(cic=call.cic))

    @handles(Q931Connect)
    def on_connect(self, msg: Q931Connect, src: Node, interface: str) -> None:
        call = self.calls_by_ref.get(msg.call_ref)
        if call is None:
            return
        call.remote_media = (msg.media_address, msg.media_port)
        call.state = "in-call"
        if call.direction == "pstn-to-ip":
            self.send(call.trunk_peer, IsupAnm(cic=call.cic))

    @handles(IsupAcm)
    def on_acm(self, msg: IsupAcm, src: Node, interface: str) -> None:
        call = self.calls_by_cic.get(msg.cic)
        if call is not None and call.direction == "ip-to-pstn":
            self._send_q931(call, Q931Alerting(call_ref=call.call_ref))

    @handles(IsupAnm)
    def on_anm(self, msg: IsupAnm, src: Node, interface: str) -> None:
        call = self.calls_by_cic.get(msg.cic)
        if call is None or call.direction != "ip-to-pstn":
            return
        call.state = "in-call"
        self._send_q931(
            call,
            Q931Connect(
                call_ref=call.call_ref, media_address=self.ip, media_port=PORT_RTP
            ),
        )

    # ------------------------------------------------------------------
    # Release bridging
    # ------------------------------------------------------------------
    @handles(IsupRel)
    def on_rel(self, msg: IsupRel, src: Node, interface: str) -> None:
        self.send(src, IsupRlc(cic=msg.cic))
        call = self.calls_by_cic.pop(msg.cic, None)
        if call is None:
            return
        self.calls_by_ref.pop(call.call_ref, None)
        if call.remote_signal is not None:
            self._send_q931(
                call,
                Q931ReleaseComplete(
                    call_ref=call.call_ref, cause=CAUSE_NORMAL_CLEARING
                ),
            )
        self._disengage(call)

    @handles(Q931ReleaseComplete)
    def on_release_complete(self, msg: Q931ReleaseComplete, src: Node, interface: str) -> None:
        call = self.calls_by_ref.pop(msg.call_ref, None)
        if call is None:
            return
        self.calls_by_cic.pop(call.cic, None)
        if call.cic:
            self.send(call.trunk_peer, IsupRel(cic=call.cic, cause=CAUSE_NORMAL))
        self._disengage(call)

    def _disengage(self, call: GatewayCall) -> None:
        self.send_ip(
            self.gk_ip,
            RasDrq(
                seq=self._ras_seq.next(),
                call_ref=call.call_ref,
                endpoint_alias=self.alias,
            ),
            dport=PORT_H225_RAS,
            sport=PORT_H225_RAS,
        )

    @handles(RasDcf)
    def on_dcf(self, msg: RasDcf, src: Node, interface: str) -> None:
        pass

    @handles(IsupRlc)
    def on_rlc(self, msg: IsupRlc, src: Node, interface: str) -> None:
        pass

    def _send_q931(self, call: GatewayCall, message) -> None:
        assert call.remote_signal is not None
        self.send_ip(
            call.remote_signal[0],
            message,
            dport=call.remote_signal[1],
            sport=PORT_H225_CS,
            tcp=True,
        )

    # ------------------------------------------------------------------
    # Media bridging (PCM <-> RTP)
    # ------------------------------------------------------------------
    @handles(PcmFrame)
    def on_pcm(self, frame: PcmFrame, src: Node, interface: str) -> None:
        call = self.calls_by_cic.get(frame.cic)
        if call is None or call.remote_media is None or call.state != "in-call":
            return
        call.rtp_seq += 1
        self.sim.schedule(
            self.vocoder.transcode_delay,
            self.send_ip,
            call.remote_media[0],
            RtpPacket(
                payload_type=PT_PCMU,
                seq=call.rtp_seq & 0xFFFF,
                timestamp=int(self.sim.now * 8000) & 0xFFFFFFFF,
                ssrc=call.call_ref & 0xFFFFFFFF,
                gen_time_us=frame.gen_time_us,
                frame=self.vocoder.transcode(b"\x00" * 160),
            ),
            call.remote_media[1],
        )

    @handles(RtpPacket)
    def on_rtp(self, packet: RtpPacket, src: Node, interface: str) -> None:
        # Match by SSRC (the call reference).
        call = self.calls_by_ref.get(packet.ssrc)
        if call is None or call.state != "in-call" or not call.cic:
            return
        self.sim.schedule(
            self.vocoder.transcode_delay,
            self.send,
            call.trunk_peer,
            PcmFrame(cic=call.cic, seq=packet.seq, gen_time_us=packet.gen_time_us),
        )
