"""Vocoder models.

The VMSC contains a vocoder bank: "the voice information is translated
into GPRS packets through vocoder and packet control unit" (paper §2).
The model is frame-accurate where the experiments need it — frame
duration, payload sizes and transcoding latency — without doing audio
DSP, which no measurement in the reproduction depends on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CodecSpec:
    """A voice codec's timing/size parameters."""

    name: str
    frame_ms: float
    frame_bytes: int
    algorithmic_delay_ms: float

    @property
    def bitrate_bps(self) -> float:
        return self.frame_bytes * 8 / (self.frame_ms / 1000.0)


#: GSM 06.10 full rate: 13 kbit/s, 33-byte frames every 20 ms.
GSM_FR = CodecSpec("GSM-FR", frame_ms=20.0, frame_bytes=33, algorithmic_delay_ms=5.0)

#: G.711 mu-law: 64 kbit/s, 160-byte frames every 20 ms, negligible delay.
G711_ULAW = CodecSpec("G.711u", frame_ms=20.0, frame_bytes=160, algorithmic_delay_ms=0.125)

#: G.729: 8 kbit/s, 20-byte frames every 20 ms (two 10 ms subframes).
G729 = CodecSpec("G.729", frame_ms=20.0, frame_bytes=20, algorithmic_delay_ms=15.0)

CODECS = {c.name: c for c in (GSM_FR, G711_ULAW, G729)}


class Vocoder:
    """A transcoding unit between two codecs.

    ``transcode_delay`` is the per-frame latency added by decoding one
    codec and encoding the other (algorithmic delays plus a DSP
    processing allowance).
    """

    def __init__(
        self,
        from_codec: CodecSpec,
        to_codec: CodecSpec,
        processing_ms: float = 2.0,
    ) -> None:
        self.from_codec = from_codec
        self.to_codec = to_codec
        self.processing_ms = processing_ms
        self.frames_transcoded = 0

    @property
    def transcode_delay(self) -> float:
        """Seconds of latency added per frame."""
        return (
            self.from_codec.algorithmic_delay_ms
            + self.to_codec.algorithmic_delay_ms
            + self.processing_ms
        ) / 1000.0

    def transcode(self, payload: bytes) -> bytes:
        """Return a frame of the target codec's size (content synthetic)."""
        self.frames_transcoded += 1
        out_len = self.to_codec.frame_bytes
        if len(payload) >= out_len:
            return payload[:out_len]
        return payload + b"\x00" * (out_len - len(payload))
