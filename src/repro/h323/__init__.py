"""H.323 substrate: gatekeeper, terminals, PSTN gateway, codecs, media.

Figure 2(b)'s "H.323 network": a standard gatekeeper (address
translation, admission, disengage/charging), H.323 terminal endpoints,
and the H.323-PSTN gateway through which Figure 8's local telephone
company reaches registered roamers.
"""

from repro.h323.codec import CodecSpec, G711_ULAW, G729, GSM_FR, Vocoder
from repro.h323.gatekeeper import CallRecord, Gatekeeper, Registration
from repro.h323.terminal import H323Terminal
from repro.h323.gateway import H323PstnGateway

__all__ = [
    "CodecSpec",
    "GSM_FR",
    "G711_ULAW",
    "G729",
    "Vocoder",
    "Gatekeeper",
    "Registration",
    "CallRecord",
    "H323Terminal",
    "H323PstnGateway",
]
