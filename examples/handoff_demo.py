#!/usr/bin/env python
"""Inter-system handoff with the VMSC as anchor (paper Figure 9).

A call runs through the VMSC; the MS then moves into a neighbouring
classic GSM MSC's cell.  The standard MAP-E handoff executes, an
inter-MSC trunk is established, and the VMSC stays in the call path.

Run:  python examples/handoff_demo.py
"""

from repro.core import scenarios
from repro.core.handoff import build_handoff_network


def main() -> None:
    nw = build_handoff_network(seed=0, target="msc")
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.4)
    nw.sim.run(until=0.5)

    scenarios.register_ms(nw.vgprs, ms)
    scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
    print("call established through the VMSC")
    print("voice path (Figure 9a):", " -> ".join(nw.voice_path()))

    # Continuous two-way voice across the handoff.
    ms.start_talking()
    ref = next(iter(term.calls))
    term.start_talking(ref)
    nw.sim.run(until=nw.sim.now + 1.0)
    frames_before = (ms.frames_received, term.frames_received)

    print("\nradio measurements demand the neighbour cell; "
          "starting inter-system handoff...")
    t0 = nw.sim.now
    nw.trigger_handoff()
    nw.sim.run_until_true(nw.handoff_complete, timeout=10)
    print(f"handoff completed in {(nw.sim.now - t0) * 1000:.0f} ms "
          f"(MS now served by {nw.target_msc.name} via {ms.serving_bts})")
    print("voice path (Figure 9b):", " -> ".join(nw.voice_path()))

    nw.sim.run(until=nw.sim.now + 1.0)
    print(f"\nvoice continuity: MS {ms.frames_received - frames_before[0]} "
          f"frames, terminal {term.frames_received - frames_before[1]} frames "
          "received in the second after the handoff")

    ms.stop_talking()
    term.stop_talking(ref)
    ms.hangup()
    nw.sim.run(until=nw.sim.now + 2.0)
    print(f"released cleanly; E-interface trunks released: "
          f"{nw.sim.metrics.counters('VMSC.e_trunk_released')}")

    # The paper notes two-VMSC handoff uses the same procedure.
    nw2 = build_handoff_network(seed=0, target="vmsc")
    ms2 = nw2.add_ms("MS1", "466920000000001", "+886935000001")
    t2 = nw2.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.4)
    nw2.sim.run(until=0.5)
    scenarios.register_ms(nw2.vgprs, ms2)
    scenarios.call_ms_to_terminal(nw2.vgprs, ms2, t2)
    nw2.trigger_handoff()
    nw2.sim.run_until_true(nw2.handoff_complete, timeout=10)
    print("\nVMSC -> VMSC variant:", " -> ".join(nw2.voice_path()))


if __name__ == "__main__":
    main()
