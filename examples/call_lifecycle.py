#!/usr/bin/env python
"""Full call lifecycle with message-sequence charts.

Reproduces the paper's Figures 4, 5 and 6 live: registration, an
MS-originated call with release, and a call terminated at the MS, each
rendered as an ASCII message-sequence chart next to the paper's step
numbers.

Run:  python examples/call_lifecycle.py
"""

from repro.analysis.msc_chart import render_msc
from repro.core import scenarios
from repro.core.flows import (
    NodeNames,
    match_flow,
    origination_flow,
    registration_flow,
    release_flow,
    termination_flow,
)
from repro.core.network import build_vgprs_network

NODES = ["MS1", "BTS1", "BSC", "VMSC", "VLR", "HLR", "SGSN", "GGSN",
         "IPNET", "GK", "TERM1"]


def show(title: str, nw, flow, since: float) -> None:
    matched = match_flow(nw.sim.trace, flow, since=since)
    print(f"\n=== {title} ({len(matched)} steps, as in the paper) ===")
    alphabet = {s.message for s in flow}
    entries = [e for e in nw.sim.trace.entries if e.time >= since]
    print(render_msc(entries, NODES, include=alphabet, col_width=13,
                     max_label=11))


def main() -> None:
    names = NodeNames()
    nw = build_vgprs_network(seed=0)
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001",
                   answer_delay=0.6)
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
    nw.sim.run(until=0.5)

    # Figure 4 — registration.
    t0 = nw.sim.now
    scenarios.register_ms(nw, ms)
    show("Figure 4: vGPRS registration", nw, registration_flow(names), t0)

    # Figure 5 (top) — MS call origination.
    t0 = nw.sim.now
    scenarios.call_ms_to_terminal(nw, ms, term)
    show("Figure 5: MS call origination", nw, origination_flow(names), t0)

    # Figure 5 (bottom) — release.
    nw.sim.run(until=nw.sim.now + 1.0)
    t0 = nw.sim.now
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    show("Figure 5: call release", nw, release_flow(names), t0)

    # Figure 6 — MS call termination.
    t0 = nw.sim.now
    scenarios.call_terminal_to_ms(nw, term, ms)
    show("Figure 6: MS call termination", nw, termination_flow(names), t0)

    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    print(f"\ngatekeeper call records: {len(nw.gk.call_records)}")


if __name__ == "__main__":
    main()
