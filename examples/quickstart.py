#!/usr/bin/env python
"""Quickstart: build a vGPRS network, register a stock GSM handset and
make a VoIP call to an H.323 terminal.

Run:  python examples/quickstart.py
"""

from repro.core import scenarios
from repro.core.network import build_vgprs_network


def main() -> None:
    # 1. Build the Figure 2(b) network: MS/BTS/BSC on the radio side,
    #    VMSC + VLR + HLR, SGSN + GGSN, an IP cloud, a standard H.323
    #    gatekeeper.
    nw = build_vgprs_network(seed=0)
    ms = nw.add_ms("MS1", imsi="466920000000001", msisdn="+886935000001")
    term = nw.add_terminal("TERM1", alias="+886222000001", answer_delay=0.8)
    nw.sim.run(until=0.5)  # let the terminal register with the gatekeeper

    # 2. Power the handset on: GSM location update, GPRS attach, PDP
    #    context activation and gatekeeper registration all happen on the
    #    handset's behalf (paper Figure 4).
    latency = scenarios.register_ms(nw, ms)
    entry = nw.vmsc.ms_table.get(ms.imsi)
    print(f"{ms.name} registered in {latency * 1000:.0f} ms "
          f"(IP address {entry.ip}, alias {entry.msisdn} at the gatekeeper)")

    # 3. Dial the H.323 terminal from the GSM handset (Figure 5).
    outcome = scenarios.call_ms_to_terminal(nw, ms, term)
    print(f"call answered {outcome.answer_delay * 1000:.0f} ms after dialling "
          f"(ringback after {outcome.setup_delay * 1000:.0f} ms)")

    # 4. Talk for a second in both directions; the VMSC transcodes
    #    TCH vocoder frames <-> RTP.
    ms.start_talking(duration=1.0)
    term.start_talking(next(iter(term.calls)), duration=1.0)
    nw.sim.run(until=nw.sim.now + 1.5)
    m2e = nw.sim.metrics.get_histogram("TERM1.mouth_to_ear")
    print(f"voice: {term.frames_received} frames at the terminal, "
          f"{ms.frames_received} at the handset, "
          f"mouth-to-ear {m2e.mean * 1000:.1f} ms")

    # 5. Hang up (Figure 5 bottom): Q.931 release, gatekeeper disengage,
    #    voice PDP context deactivated.
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    cdr = nw.gk.call_records[0]
    print(f"released; gatekeeper charged {cdr.reported_duration_ms} ms "
          f"for call {cdr.call_ref}")

    # 6. Every message crossed real links — show the signalling volume.
    print(f"total signalling messages simulated: "
          f"{sum(scenarios.message_counts(nw).values())}")


if __name__ == "__main__":
    main()
