#!/usr/bin/env python
"""Tromboning and its elimination (paper Figures 7 and 8).

A UK subscriber roams to Hong Kong.  A local Hong Kong phone calls their
UK mobile number:

* classic GSM routes the call to the UK GMSC and back — two
  international trunks;
* vGPRS terminates it locally through the H.323 gateway and the visited
  VMSC — zero international trunks.

Run:  python examples/roaming_tromboning.py
"""

from repro.core.baseline_gsm import build_classic_roaming_network
from repro.core.tromboning import build_vgprs_roaming_network

ROAMER = ("MS-X", "234150000000001", "+447700900123")


def classic() -> None:
    print("=== Figure 7: classic GSM (tromboning) ===")
    nw = build_classic_roaming_network(seed=0)
    x = nw.add_roamer(*ROAMER, answer_delay=0.5)
    y = nw.add_phone("PHONE-Y", "+85221234567")

    x.power_on()
    nw.sim.run_until_true(lambda: x.registered, timeout=30)
    print(f"roamer {x.msisdn} registered at {nw.vlr_hk.name} "
          f"(home HLR: {nw.hlr_uk.name})")

    since = nw.sim.now
    y.place_call(x.msisdn)
    nw.sim.run_until_true(
        lambda: x.state == "in-call" and y.state == "in-call", timeout=30
    )
    print("circuit legs seized:")
    for r in nw.ledger.records:
        kind = "INTERNATIONAL" if r.international else "local"
        print(f"  {r.from_switch:>8} -> {r.to_switch:<8} {kind}  "
              f"(called {r.called})")
    print(f"international trunks: "
          f"{nw.ledger.international_count(since=since)}  <-- the trombone")

    y.start_talking(duration=1.0)
    nw.sim.run(until=nw.sim.now + 2.0)
    m2e = nw.sim.metrics.get_histogram("MS-X.mouth_to_ear")
    print(f"voice mouth-to-ear: {m2e.mean * 1000:.0f} ms "
          "(crosses the HK-UK trunk twice)\n")


def vgprs() -> None:
    print("=== Figure 8: vGPRS (tromboning eliminated) ===")
    nw = build_vgprs_roaming_network(seed=0)
    x = nw.add_roamer(*ROAMER, answer_delay=0.5)
    nw.sim.run(until=1.0)

    x.power_on()
    nw.sim.run_until_true(lambda: x.registered, timeout=30)
    reg = nw.vgprs.gk.resolve(x.msisdn)
    print(f"roamer {x.msisdn} registered at the LOCAL gatekeeper "
          f"(address {reg.signal_address})")

    since = nw.sim.now
    y = nw.phone_y
    y.place_call(x.msisdn)
    nw.sim.run_until_true(
        lambda: x.state == "in-call" and y.state == "in-call", timeout=30
    )
    print("circuit legs seized:")
    for r in nw.ledger.records:
        if r.seized_at < since:
            continue
        kind = "INTERNATIONAL" if r.international else "local"
        print(f"  {r.from_switch:>8} -> {r.to_switch:<8} {kind}")
    print(f"international trunks: "
          f"{nw.ledger.international_count(since=since)}  <-- local call")

    y.start_talking(duration=1.0)
    nw.sim.run(until=nw.sim.now + 2.0)
    m2e = nw.sim.metrics.get_histogram("MS-X.mouth_to_ear")
    print(f"voice mouth-to-ear: {m2e.mean * 1000:.0f} ms (stays in Hong Kong)")


if __name__ == "__main__":
    classic()
    vgprs()
