#!/usr/bin/env python
"""Mixed traffic: a town's worth of subscribers on one vGPRS network.

Eight GSM handsets and eight H.323 terminals exchange random calls in
both directions for two simulated minutes; the script then prints the
network-wide accounting — connected calls, gatekeeper charging records,
per-node signalling volume and PDP-context residency.

Run:  python examples/mixed_traffic.py
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.core.workload import CallWorkload, build_population


def main() -> None:
    nw = build_vgprs_network(seed=7)
    pairs = build_population(nw, size=8)
    nw.sim.run(until=0.5)

    print("registering 8 handsets...")
    for ms, _ in pairs:
        scenarios.register_ms(nw, ms)
    print(f"all registered; SGSN holds {nw.sgsn.context_count()} "
          "signalling PDP contexts\n")

    workload = CallWorkload(
        nw, pairs, call_rate=0.15, hold_range=(1.0, 5.0), mt_fraction=0.4
    )
    workload.start()
    nw.sim.run(until=nw.sim.now + 120.0)
    workload.stop()
    for ms, _ in pairs:
        if ms.state == "in-call":
            ms.hangup()
    nw.sim.run(until=nw.sim.now + 10.0)

    stats = workload.stats
    print(format_table(
        ["metric", "value"],
        [("simulated time", f"{nw.sim.now:.0f} s"),
         ("calls attempted (MO/MT)",
          f"{stats.attempted_mo}/{stats.attempted_mt}"),
         ("calls connected", stats.connected),
         ("completion ratio", f"{stats.completion_ratio * 100:.0f}%"),
         ("gatekeeper charging records", len(nw.gk.call_records)),
         ("voice frames delivered to terminals",
          sum(t.frames_received for _, t in pairs)),
         ("TCHs in use at the end", nw.bscs[0].tch_in_use),
         ("PDP contexts at the SGSN", nw.sgsn.context_count()),
         ("context residency", f"{nw.sgsn.context_residency():.0f} ctx-s"),
         ("events executed", nw.sim.pending_events)],
        title="Two minutes of mixed vGPRS traffic",
    ))

    busiest = sorted(
        scenarios.message_counts(nw).items(), key=lambda kv: -kv[1]
    )[:8]
    print()
    print(format_table(
        ["node", "messages sent"], busiest,
        title="Busiest nodes",
    ))


if __name__ == "__main__":
    main()
