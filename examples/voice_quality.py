#!/usr/bin/env python
"""Voice quality under load: circuit TCH (vGPRS) vs. shared packet
channel (3G TR 23.923) — the paper's Section-6 real-time argument.

Run:  python examples/voice_quality.py
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.baseline_3gtr import build_3gtr_network
from repro.core.network import build_vgprs_network

TALK_S = 2.0


def vgprs_row(num_calls: int):
    nw = build_vgprs_network()
    pairs = []
    for i in range(num_calls):
        ms = nw.add_ms(f"MS{i}", f"46692000000100{i}", f"+88693500010{i}")
        term = nw.add_terminal(f"TERM{i}", f"+88622200010{i}",
                               answer_delay=0.2)
        pairs.append((ms, term))
    nw.sim.run(until=0.5)
    for ms, term in pairs:
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        ms.start_talking(duration=TALK_S)
    nw.sim.run(until=nw.sim.now + TALK_S + 1.0)
    delays = [
        nw.sim.metrics.get_histogram(f"TERM{i}.mouth_to_ear").mean
        for i in range(num_calls)
    ]
    jitter = max(
        nw.sim.metrics.get_histogram(f"TERM{i}.jitter").maximum
        for i in range(num_calls)
    )
    return 1000 * sum(delays) / len(delays), 1000 * jitter


def tgtr_row(num_calls: int):
    nw = build_3gtr_network(packet_channel_bps=40_000.0)
    pairs = []
    for i in range(num_calls):
        ms = nw.add_ms(f"MS{i}", f"46692000000100{i}", f"+88693500010{i}",
                       answer_delay=0.2)
        term = nw.add_terminal(f"TERM{i}", f"+88622200010{i}",
                               answer_delay=0.2)
        pairs.append((ms, term))
    nw.sim.run(until=0.5)
    for ms, _ in pairs:
        ms.power_on()
        nw.sim.run_until_true(lambda m=ms: m.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 1.0)
    for ms, term in pairs:
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda m=ms: m.state == "in-call", timeout=20)
    for ms, _ in pairs:
        ms.start_talking(duration=TALK_S)
    nw.sim.run(until=nw.sim.now + TALK_S + 3.0)
    delays, jitters = [], []
    for i in range(num_calls):
        h = nw.sim.metrics.get_histogram(f"TERM{i}.mouth_to_ear")
        j = nw.sim.metrics.get_histogram(f"TERM{i}.jitter")
        if h and h.count:
            delays.append(h.mean)
        if j and j.count:
            jitters.append(j.maximum)
    return (
        1000 * sum(delays) / len(delays) if delays else float("nan"),
        1000 * max(jitters) if jitters else float("nan"),
    )


def main() -> None:
    rows = []
    for n in (1, 2, 4):
        v_delay, v_jitter = vgprs_row(n)
        t_delay, t_jitter = tgtr_row(n)
        rows.append((n, f"{v_delay:.1f}", f"{v_jitter:.2f}",
                     f"{t_delay:.1f}", f"{t_jitter:.2f}"))
    print(format_table(
        ["concurrent calls", "vGPRS m2e ms", "vGPRS jitter ms",
         "3G TR m2e ms", "3G TR jitter ms"],
        rows,
        title="Voice quality vs. cell load "
              "(circuit air interface vs shared packet channel)",
    ))
    print("\nThe circuit path is flat and jitter-free at every load; the "
          "packet channel saturates — the paper's 'VoIP with required "
          "quality can not be satisfied' claim, measured.")


if __name__ == "__main__":
    main()
