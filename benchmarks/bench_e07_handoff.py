"""Experiment E7 — Figure 9: routing path before/after inter-system
handoff.

Runs a mid-call handoff from the VMSC's cell into a neighbouring classic
MSC's cell (and the two-VMSC variant, §7), printing the voice path in
both states and measuring the voice interruption gap.
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.handoff import build_handoff_network


def run_handoff(target: str):
    nw = build_handoff_network(target=target)
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw.vgprs, ms)
    scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
    path_before = nw.voice_path()

    # Continuous downlink voice to measure the interruption gap.
    ref = next(iter(term.calls))
    term.start_talking(ref)
    nw.sim.run(until=nw.sim.now + 0.5)

    last_rx = {"t": None, "gap": 0.0}

    original = ms.on_voice

    def watching(frame, src, interface):
        now = nw.sim.now
        if last_rx["t"] is not None:
            last_rx["gap"] = max(last_rx["gap"], now - last_rx["t"])
        last_rx["t"] = now
        original(frame, src, interface)

    ms.on_voice = watching  # type: ignore[assignment]

    t0 = nw.sim.now
    nw.trigger_handoff()
    assert nw.sim.run_until_true(nw.handoff_complete, timeout=10)
    handoff_time = nw.sim.now - t0
    nw.sim.run(until=nw.sim.now + 1.0)
    term.stop_talking(ref)
    path_after = nw.voice_path()
    return {
        "nw": nw,
        "path_before": path_before,
        "path_after": path_after,
        "handoff_s": handoff_time,
        "voice_gap_ms": last_rx["gap"] * 1000,
    }


def test_e07_handoff_paths(benchmark, report):
    result = benchmark.pedantic(lambda: run_handoff("msc"), rounds=3, iterations=1)
    vmsc_variant = run_handoff("vmsc")

    nw = result["nw"]
    # Figure 9(b): the anchor VMSC stays in the path; the target MSC is
    # inserted on the radio side.
    assert "VMSC" in result["path_before"] and "VMSC" in result["path_after"]
    assert "MSC2" in result["path_after"] and "MSC2" not in result["path_before"]
    assert "VMSC2" in vmsc_variant["path_after"]

    report(format_table(
        ["state", "voice path"],
        [("before (Figure 9a)", " -> ".join(result["path_before"])),
         ("after  (Figure 9b)", " -> ".join(result["path_after"])),
         ("after, VMSC->VMSC variant",
          " -> ".join(vmsc_variant["path_after"]))],
        title="E7 / Figure 9: voice path across inter-system handoff",
    ))
    report(format_table(
        ["metric", "value"],
        [("handoff signalling time (ms)", result["handoff_s"] * 1000),
         ("worst voice interruption (ms)", result["voice_gap_ms"]),
         ("E-interface trunk answered",
          nw.sim.metrics.counters("VMSC.e_trunk_answered").get(
              "VMSC.e_trunk_answered", 0))],
        title="E7: handoff quality",
    ))
    # Voice must survive the switch with a sub-second hiccup.
    assert result["voice_gap_ms"] < 500

    # Subsequent handoff back: the MS returns to the anchor's cell and
    # the E trunk is released ("inter-system handoff between two VMSCs
    # follows the same procedure", and GSM routes every subsequent
    # handoff via the anchor).
    nw.trigger_handback()
    ms = nw.ms
    assert nw.sim.run_until_true(
        lambda: nw.vgprs.vmsc.conn(ms.imsi).via_msc is None, timeout=10
    )
    nw.sim.run(until=nw.sim.now + 1)
    path_back = nw.voice_path()
    assert nw.target_msc.name not in path_back
    report(format_table(
        ["state", "voice path"],
        [("after handback", " -> ".join(path_back))],
        title="E7: subsequent handoff back to the anchor",
    ))
    report("VERDICT: Figure 9 reproduced — anchor VMSC remains in the call "
           "path over the E-interface trunk; same procedure works "
           "VMSC->MSC and VMSC->VMSC, and handback releases the trunk.")
