"""Experiment E2 — Figure 4: the vGPRS registration message flow.

Asserts the simulated flow matches the paper's steps 1.1-1.6, prints the
message-sequence chart and a latency decomposition, and reports the
registration-latency distribution over a population of MSs.  The timed
portion is one complete power-on registration.
"""

from repro.analysis.latency import breakdown_registration
from repro.analysis.msc_chart import render_msc
from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.flows import NodeNames, match_flow, registration_flow
from repro.core.network import build_vgprs_network

FIGURE4_NODES = [
    "MS1", "BTS1", "BSC", "VMSC", "VLR", "HLR", "SGSN", "GGSN", "IPNET", "GK",
]


def run_registration():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    latency = scenarios.register_ms(nw, ms)
    return nw, latency


def test_e02_registration_flow(benchmark, report):
    nw, latency = benchmark.pedantic(run_registration, rounds=3, iterations=1)

    flow = registration_flow(NodeNames())
    matched = match_flow(nw.sim.trace, flow)
    assert len(matched) == len(flow)

    alphabet = {step.message for step in flow}
    report(render_msc(nw.sim.trace.entries, FIGURE4_NODES, include=alphabet,
                      col_width=13, max_label=11))

    rows = [
        (step.step, step.message,
         f"{matched[step.step].src}->{matched[step.step].dst}",
         f"{matched[step.step].time * 1000:.1f} ms")
        for step in flow
    ]
    report(format_table(
        ["paper step", "message", "hop", "delivered"], rows,
        title="E2 / Figure 4: registration flow, steps 1.1-1.6",
    ))

    breakdown = breakdown_registration(nw.sim.trace)
    report(format_table(
        ["phase", "ms"],
        [("GSM location update (1.1-1.2)", breakdown.gsm_phase * 1000),
         ("GPRS attach + PDP activation (1.3)", breakdown.gprs_phase * 1000),
         ("H.323 RRQ/RCF (1.4-1.5)", breakdown.h323_phase * 1000),
         ("total power-on to accept (1.6)", breakdown.total * 1000)],
        title="E2: registration latency decomposition",
    ))
    assert breakdown.total == latency or abs(breakdown.total - latency) < 0.05

    # Population sweep: N MSs registering back-to-back.
    nw2 = build_vgprs_network(seed=2)
    latencies = []
    for i in range(10):
        ms = nw2.add_ms(f"MS{i + 1}", f"4669200000001{i:02d}",
                        f"+8869350001{i:02d}")
        latencies.append(scenarios.register_ms(nw2, ms))
    report(format_table(
        ["population", "min ms", "mean ms", "max ms"],
        [(10, min(latencies) * 1000,
          sum(latencies) / len(latencies) * 1000, max(latencies) * 1000)],
        title="E2: registration latency across 10 subscribers",
    ))
    assert max(latencies) - min(latencies) < 0.01  # no cross-talk
    report("VERDICT: Figure 4 reproduced verbatim "
           f"({len(flow)} steps, {latency * 1000:.1f} ms power-on latency).")
