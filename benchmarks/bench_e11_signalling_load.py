"""Experiment E11 — §6's implied trade-off: signalling load and PDP
context residency.

Two sides of the paper's "PDP context activation" discussion:

* per-call signalling: vGPRS spends two extra SM/GTP exchanges per call
  (voice context in, voice context out) but none for call *arrival*;
  3G TR pays activation + deactivation per call on its only context and
  a notification/paging exchange for MT calls;
* context residency: vGPRS holds one context per idle attached MS at the
  SGSN/GGSN ("the SGSN and the GGSN do not need to maintain the PDP
  contexts of MSs when they are idle" is 3G TR's advantage).

Swept over call rate (through :func:`repro.sim.sweep.run_sweep`, so
``REPRO_SWEEP_JOBS`` parallelises the rate points) to show where each
side pays.
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.baseline_3gtr import build_3gtr_network
from repro.core.network import build_vgprs_network
from repro.core.sweeps import IMSI1, MSISDN1, TERM1, residency_point
from repro.sim.sweep import run_sweep, sweep_grid

CALL_RATES = (0.0, 60.0, 240.0)


def vgprs_per_call_counts():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.settle(nw, 1.0)
    before = scenarios.message_counts(nw)
    scenarios.call_ms_to_terminal(nw, ms, term)
    scenarios.settle(nw, 1.0)
    scenarios.hangup_from_ms(nw, ms)
    scenarios.settle(nw, 1.0)
    after = scenarios.message_counts(nw)
    return nw, scenarios.delta_counts(before, after)


def tgtr_per_call_counts():
    nw = build_3gtr_network()
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    ms.power_on()
    nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 6.0)
    before = {
        name[len("msgs.tx."):]: c
        for name, c in nw.sim.metrics.counters("msgs.tx.").items()
    }
    ms.place_call(term.alias)
    nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
    nw.sim.run(until=nw.sim.now + 1.0)
    ms.hangup()
    nw.sim.run(until=nw.sim.now + 2.0)
    after = {
        name[len("msgs.tx."):]: c
        for name, c in nw.sim.metrics.counters("msgs.tx.").items()
    }
    return nw, scenarios.delta_counts(before, after)


def test_e11_signalling_load(benchmark, report):
    (nw_v, v_delta) = benchmark.pedantic(
        vgprs_per_call_counts, rounds=3, iterations=1
    )
    nw_t, t_delta = tgtr_per_call_counts()

    nodes = sorted(set(v_delta) | set(t_delta))
    rows = [
        (node, v_delta.get(node, "-"), t_delta.get(node, "-")) for node in nodes
    ]
    report(format_table(
        ["node", "vGPRS msgs/call", "3G TR msgs/call"], rows,
        title="E11: messages transmitted per node for one complete call "
              "(setup + 1s talk + release)",
    ))

    # vGPRS loads the GSM side (BSC/VLR carry call-control + security);
    # 3G TR has no MSC/VLR at all but pays on the radio/SGSN side.
    assert v_delta.get("VLR", 0) > 0 and "VLR" not in t_delta
    assert v_delta.get("VMSC", 0) > 0
    assert t_delta.get("SGSN", 0) > 0

    sweep_rows = []
    for result in run_sweep(residency_point, sweep_grid(calls_per_hour=CALL_RATES)):
        cph = result.point.params["calls_per_hour"]
        p = result.value
        v_res, v_act = p["vgprs_residency"], p["vgprs_activations"]
        t_res, t_act = p["tgtr_residency"], p["tgtr_activations"]
        sweep_rows.append((
            f"{cph:.0f}", f"{v_res:.0f}", f"{t_res:.0f}", v_act, t_act,
        ))
    report(format_table(
        ["calls/hour", "vGPRS ctx-s @SGSN", "3GTR ctx-s @SGSN",
         "vGPRS PDP activations", "3GTR PDP activations"],
        sweep_rows,
        title="E11: the idle-deactivation trade-off over a 60 s horizon",
    ))
    # Idle subscriber: vGPRS holds the context, 3G TR holds none.
    assert float(sweep_rows[0][1]) > 50.0
    assert float(sweep_rows[0][2]) < 1.0
    # Busy subscriber: 3G TR pays activations per call instead.
    assert sweep_rows[2][4] >= sweep_rows[2][3]
    report("VERDICT: vGPRS trades always-on context residency at SGSN/GGSN "
           "for zero per-arrival activation signalling; 3G TR the reverse — "
           "the exact trade-off the paper's Section 6 describes.")
